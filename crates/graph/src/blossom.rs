//! Maximum-cardinality matching in general graphs (Edmonds' blossom
//! algorithm).
//!
//! The HYDE encoding procedure finds a *maximum-cardinality matching* of the
//! row graph `Gr` (Step 7 of the encoding procedure, Fig. 3 of the paper) and
//! the XC3000 CLB packer pairs 4-input LUTs with a maximum matching of the
//! compatibility graph. Both graphs are general (non-bipartite), so an
//! augmenting-path search with blossom contraction is required for exactness.
//!
//! The implementation follows Gabow's `O(V^3)` formulation: repeated BFS for
//! augmenting paths with on-the-fly blossom contraction tracked through a
//! `base` array.

/// Computes a maximum-cardinality matching of an undirected graph.
///
/// `n` is the number of vertices (numbered `0..n`); `edges` lists undirected
/// edges as vertex pairs. Self-loops and duplicate edges are tolerated
/// (self-loops are ignored, duplicates are harmless).
///
/// Returns the matched pairs, each reported once with the smaller endpoint
/// first, sorted.
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
///
/// # Example
///
/// ```
/// use hyde_graph::blossom::maximum_matching;
///
/// // Odd cycle (triangle) plus a pendant: maximum matching has 2 edges.
/// let m = maximum_matching(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(m.len(), 2);
/// ```
pub fn maximum_matching(n: usize, edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mate = maximum_matching_mates(n, edges);
    let mut out = Vec::new();
    for (v, m) in mate.iter().enumerate() {
        if let Some(u) = *m {
            if v < u {
                out.push((v, u));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Like [`maximum_matching`], but returns the raw mate array:
/// `mate[v] == Some(u)` iff `v` is matched to `u`.
pub fn maximum_matching_mates(n: usize, edges: &[(usize, usize)]) -> Vec<Option<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        if u == v {
            continue;
        }
        adj[u].push(v);
        adj[v].push(u);
    }
    Matcher::new(adj).run()
}

struct Matcher {
    adj: Vec<Vec<usize>>,
    mate: Vec<Option<usize>>,
    /// parent pointer in the alternating forest ("label" edge back)
    parent: Vec<Option<usize>>,
    /// base vertex of the blossom currently containing each vertex
    base: Vec<usize>,
    queue: Vec<usize>,
    in_queue: Vec<bool>,
    in_blossom: Vec<bool>,
    in_path: Vec<bool>,
}

impl Matcher {
    fn new(adj: Vec<Vec<usize>>) -> Self {
        let n = adj.len();
        Matcher {
            adj,
            mate: vec![None; n],
            parent: vec![None; n],
            base: (0..n).collect(),
            queue: Vec::new(),
            in_queue: vec![false; n],
            in_blossom: vec![false; n],
            in_path: vec![false; n],
        }
    }

    fn run(mut self) -> Vec<Option<usize>> {
        let n = self.adj.len();
        // Greedy initialization speeds up the augmenting phase considerably.
        for v in 0..n {
            if self.mate[v].is_none() {
                for i in 0..self.adj[v].len() {
                    let u = self.adj[v][i];
                    if self.mate[u].is_none() {
                        self.mate[v] = Some(u);
                        self.mate[u] = Some(v);
                        break;
                    }
                }
            }
        }
        for root in 0..n {
            if self.mate[root].is_none() {
                if let Some(leaf) = self.find_augmenting_path(root) {
                    self.augment(leaf);
                }
            }
        }
        self.mate
    }

    /// Walks matched/parent pointers from the exposed leaf back to the root,
    /// flipping matched edges along the way.
    fn augment(&mut self, mut v: usize) {
        while let Some(pv) = self.parent[v] {
            let ppv = self.mate[pv];
            self.mate[v] = Some(pv);
            self.mate[pv] = Some(v);
            match ppv {
                Some(next) => v = next,
                None => break,
            }
        }
    }

    /// Finds the lowest common ancestor of `u` and `v` in the alternating
    /// forest, walking via blossom bases.
    fn lca(&mut self, mut u: usize, mut v: usize) -> usize {
        for f in self.in_path.iter_mut() {
            *f = false;
        }
        loop {
            u = self.base[u];
            self.in_path[u] = true;
            match self.mate[u] {
                Some(m) => match self.parent[m] {
                    Some(p) => u = p,
                    None => break,
                },
                None => break,
            }
        }
        loop {
            v = self.base[v];
            if self.in_path[v] {
                return v;
            }
            let m = self.mate[v].expect("forest vertex below root must be matched");
            v = self.parent[m].expect("matched forest vertex must have a parent");
        }
    }

    /// Marks the path from `v` up to the blossom base `b`, re-parenting odd
    /// vertices through `child` so they become usable even vertices.
    fn mark_path(&mut self, mut v: usize, b: usize, mut child: usize) {
        while self.base[v] != b {
            let mv = self.mate[v].expect("blossom vertex must be matched");
            self.in_blossom[self.base[v]] = true;
            self.in_blossom[self.base[mv]] = true;
            self.parent[v] = Some(child);
            child = mv;
            v = self.parent[mv].expect("blossom path must continue to base");
        }
    }

    fn contract_blossom(&mut self, u: usize, v: usize) {
        let b = self.lca(u, v);
        for f in self.in_blossom.iter_mut() {
            *f = false;
        }
        self.mark_path(u, b, v);
        self.mark_path(v, b, u);
        for w in 0..self.adj.len() {
            if self.in_blossom[self.base[w]] {
                self.base[w] = b;
                if !self.in_queue[w] {
                    self.in_queue[w] = true;
                    self.queue.push(w);
                }
            }
        }
    }

    /// BFS from an exposed `root`; returns the exposed vertex ending an
    /// augmenting path, if one exists.
    fn find_augmenting_path(&mut self, root: usize) -> Option<usize> {
        let n = self.adj.len();
        for v in 0..n {
            self.parent[v] = None;
            self.base[v] = v;
            self.in_queue[v] = false;
        }
        self.queue.clear();
        self.queue.push(root);
        self.in_queue[root] = true;

        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for i in 0..self.adj[v].len() {
                let u = self.adj[v][i];
                if self.base[v] == self.base[u] || self.mate[v] == Some(u) {
                    continue;
                }
                if u == root || self.mate[u].map(|mu| self.parent[mu].is_some()) == Some(true) {
                    // `u` is an even vertex in the forest: odd cycle found.
                    self.contract_blossom(v, u);
                    head = head.min(self.queue.len());
                } else if self.parent[u].is_none() {
                    self.parent[u] = Some(v);
                    match self.mate[u] {
                        None => return Some(u), // augmenting path found
                        Some(mu) => {
                            if !self.in_queue[mu] {
                                self.in_queue[mu] = true;
                                self.queue.push(mu);
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_max_matching(n: usize, edges: &[(usize, usize)]) -> usize {
        // Exponential search over edge subsets; fine for tiny graphs.
        fn rec(edges: &[(usize, usize)], used: &mut Vec<bool>, i: usize) -> usize {
            if i == edges.len() {
                return 0;
            }
            let mut best = rec(edges, used, i + 1);
            let (u, v) = edges[i];
            if !used[u] && !used[v] && u != v {
                used[u] = true;
                used[v] = true;
                best = best.max(1 + rec(edges, used, i + 1));
                used[u] = false;
                used[v] = false;
            }
            best
        }
        rec(edges, &mut vec![false; n], 0)
    }

    fn check_valid(n: usize, edges: &[(usize, usize)], m: &[(usize, usize)]) {
        let mut used = vec![false; n];
        for &(u, v) in m {
            assert!(
                edges
                    .iter()
                    .any(|&(a, b)| (a, b) == (u, v) || (b, a) == (u, v)),
                "matched pair ({u},{v}) is not an edge"
            );
            assert!(!used[u] && !used[v], "vertex matched twice");
            used[u] = true;
            used[v] = true;
        }
    }

    #[test]
    fn empty_graph() {
        assert!(maximum_matching(0, &[]).is_empty());
        assert!(maximum_matching(5, &[]).is_empty());
    }

    #[test]
    fn single_edge() {
        assert_eq!(maximum_matching(2, &[(0, 1)]), vec![(0, 1)]);
    }

    #[test]
    fn self_loop_ignored() {
        assert!(maximum_matching(1, &[(0, 0)]).is_empty());
    }

    #[test]
    fn path_graph() {
        // 0-1-2-3-4: maximum matching 2.
        let m = maximum_matching(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn triangle_needs_blossom_awareness() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        let m = maximum_matching(3, &edges);
        assert_eq!(m.len(), 1);
        check_valid(3, &edges, &m);
    }

    #[test]
    fn petersen_graph_has_perfect_matching() {
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0), // outer cycle
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5), // inner star
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9), // spokes
        ];
        let m = maximum_matching(10, &edges);
        assert_eq!(m.len(), 5);
        check_valid(10, &edges, &m);
    }

    #[test]
    fn two_triangles_bridged() {
        // Classic blossom test: two triangles joined by an edge.
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
        let m = maximum_matching(6, &edges);
        assert_eq!(m.len(), 3);
        check_valid(6, &edges, &m);
    }

    #[test]
    fn odd_cycle_with_tail() {
        // 5-cycle 0..4 plus tail 4-5-6.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (4, 5), (5, 6)];
        let m = maximum_matching(7, &edges);
        assert_eq!(m.len(), 3);
        check_valid(7, &edges, &m);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xB105_50E3);
        for trial in 0..200 {
            let n = 2 + (trial % 8);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.45) {
                        edges.push((u, v));
                    }
                }
            }
            let m = maximum_matching(n, &edges);
            check_valid(n, &edges, &m);
            let best = brute_force_max_matching(n, &edges);
            assert_eq!(m.len(), best, "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn large_random_graph_is_consistent() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.03) {
                    edges.push((u, v));
                }
            }
        }
        let m = maximum_matching(n, &edges);
        check_valid(n, &edges, &m);
        // A maximum matching is at least as large as any greedy maximal one.
        let mut used = vec![false; n];
        let mut greedy = 0;
        for &(u, v) in &edges {
            if !used[u] && !used[v] {
                used[u] = true;
                used[v] = true;
                greedy += 1;
            }
        }
        assert!(m.len() >= greedy);
    }
}
