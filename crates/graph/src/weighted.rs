//! Greedy maximal weighted matching on general graphs.
//!
//! Step 7 of the HYDE encoding procedure computes a matching of the
//! benefit-weighted row graph and then consumes its edges "with benefits
//! from high to low". A greedy maximal matching over edges sorted by
//! descending weight is the natural realization of that consumption order
//! and is a 1/2-approximation of the maximum-weight matching; the exact
//! cardinality engine lives in [`crate::blossom`].

/// Computes a maximal matching greedily by descending edge weight.
///
/// Ties are broken by `(u, v)` lexicographic order so the result is
/// deterministic. Edges with endpoints already matched are skipped; edges
/// are returned in the order they were selected (i.e. descending weight).
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
///
/// # Example
///
/// ```
/// use hyde_graph::greedy_weighted_matching;
///
/// let m = greedy_weighted_matching(4, &[(0, 1, 10), (1, 2, 100), (2, 3, 10)]);
/// // The heavy middle edge is taken first and blocks the two light ones.
/// assert_eq!(m, vec![(1, 2, 100)]);
/// ```
pub fn greedy_weighted_matching(
    n: usize,
    edges: &[(usize, usize, i64)],
) -> Vec<(usize, usize, i64)> {
    let mut sorted: Vec<(usize, usize, i64)> = edges
        .iter()
        .filter(|&&(u, v, _)| u != v)
        .map(|&(u, v, w)| if u < v { (u, v, w) } else { (v, u, w) })
        .collect();
    sorted.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut used = vec![false; n];
    let mut out = Vec::new();
    for (u, v, w) in sorted {
        assert!(u < n && v < n, "edge endpoint out of range");
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            out.push((u, v, w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert!(greedy_weighted_matching(0, &[]).is_empty());
    }

    #[test]
    fn picks_heaviest_first() {
        let m = greedy_weighted_matching(3, &[(0, 1, 1), (1, 2, 5)]);
        assert_eq!(m, vec![(1, 2, 5)]);
    }

    #[test]
    fn result_is_maximal() {
        let edges = [(0, 1, 1), (2, 3, 1), (1, 2, 1)];
        let m = greedy_weighted_matching(4, &edges);
        // Every unmatched edge must share an endpoint with a matched one.
        let mut used = [false; 4];
        for &(u, v, _) in &m {
            used[u] = true;
            used[v] = true;
        }
        for &(u, v, _) in &edges {
            assert!(used[u] || used[v]);
        }
    }

    #[test]
    fn self_loops_skipped() {
        let m = greedy_weighted_matching(2, &[(0, 0, 100), (0, 1, 1)]);
        assert_eq!(m, vec![(0, 1, 1)]);
    }

    #[test]
    fn deterministic_tie_break() {
        let a = greedy_weighted_matching(4, &[(2, 3, 5), (0, 1, 5)]);
        let b = greedy_weighted_matching(4, &[(0, 1, 5), (2, 3, 5)]);
        assert_eq!(a, b);
        assert_eq!(a[0], (0, 1, 5));
    }

    #[test]
    fn negative_weights_still_matched() {
        // Greedy matching is maximal, so negative edges are taken when
        // nothing blocks them; callers filter beforehand if undesired.
        let m = greedy_weighted_matching(2, &[(0, 1, -4)]);
        assert_eq!(m, vec![(0, 1, -4)]);
    }

    #[test]
    fn half_approximation_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let n = rng.gen_range(2..9usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.5) {
                        edges.push((u, v, rng.gen_range(1..20i64)));
                    }
                }
            }
            let greedy: i64 = greedy_weighted_matching(n, &edges)
                .iter()
                .map(|e| e.2)
                .sum();
            // Brute-force maximum weight matching.
            fn rec(edges: &[(usize, usize, i64)], used: &mut Vec<bool>, i: usize) -> i64 {
                if i == edges.len() {
                    return 0;
                }
                let mut best = rec(edges, used, i + 1);
                let (u, v, w) = edges[i];
                if !used[u] && !used[v] {
                    used[u] = true;
                    used[v] = true;
                    best = best.max(w + rec(edges, used, i + 1));
                    used[u] = false;
                    used[v] = false;
                }
                best
            }
            let opt = rec(&edges, &mut vec![false; n], 0);
            assert!(2 * greedy >= opt, "greedy {greedy} < opt/2 {opt}");
        }
    }
}
