//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used where HYDE needs plain (uncapacitated, unweighted) bipartite
//! matchings — e.g. assigning leftover compatible classes to free encoding
//! chart cells — and as a cross-check oracle for the heavier engines.

/// Computes a maximum matching of a bipartite graph.
///
/// `adj[l]` lists the right-side neighbours of left vertex `l`; right
/// vertices are `0..n_right`. Returns `mate_left` where `mate_left[l]` is
/// the matched right vertex, if any.
///
/// Runs in `O(E sqrt(V))`.
///
/// # Panics
///
/// Panics if a neighbour index is `>= n_right`.
///
/// # Example
///
/// ```
/// use hyde_graph::max_bipartite_matching;
///
/// let adj = vec![vec![0, 1], vec![0]];
/// let mates = max_bipartite_matching(&adj, 2);
/// assert_eq!(mates.iter().filter(|m| m.is_some()).count(), 2);
/// ```
pub fn max_bipartite_matching(adj: &[Vec<usize>], n_right: usize) -> Vec<Option<usize>> {
    let nl = adj.len();
    for nbrs in adj {
        for &r in nbrs {
            assert!(r < n_right, "right vertex out of range");
        }
    }
    const INF: u32 = u32::MAX;
    let mut mate_l: Vec<Option<usize>> = vec![None; nl];
    let mut mate_r: Vec<Option<usize>> = vec![None; n_right];
    let mut dist = vec![INF; nl];

    loop {
        // BFS layering from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for l in 0..nl {
            if mate_l[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_free = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                match mate_r[r] {
                    None => found_free = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_free {
            break;
        }
        // DFS along layered graph.
        fn dfs(
            l: usize,
            adj: &[Vec<usize>],
            dist: &mut [u32],
            mate_l: &mut [Option<usize>],
            mate_r: &mut [Option<usize>],
        ) -> bool {
            for &r in &adj[l] {
                let next = mate_r[r];
                let ok = match next {
                    None => true,
                    Some(l2) => {
                        dist[l2] == dist[l].saturating_add(1) && dfs(l2, adj, dist, mate_l, mate_r)
                    }
                };
                if ok {
                    mate_l[l] = Some(r);
                    mate_r[r] = Some(l);
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..nl {
            if mate_l[l].is_none() {
                dfs(l, adj, &mut dist, &mut mate_l, &mut mate_r);
            }
        }
    }
    mate_l
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size(m: &[Option<usize>]) -> usize {
        m.iter().filter(|x| x.is_some()).count()
    }

    #[test]
    fn empty() {
        assert!(max_bipartite_matching(&[], 0).is_empty());
    }

    #[test]
    fn perfect_matching_identity() {
        let adj: Vec<Vec<usize>> = (0..4).map(|i| vec![i]).collect();
        let m = max_bipartite_matching(&adj, 4);
        assert_eq!(size(&m), 4);
    }

    #[test]
    fn requires_augmentation() {
        // l0 -> {r0, r1}, l1 -> {r0}: greedy may need to reroute l0.
        let adj = vec![vec![0, 1], vec![0]];
        let m = max_bipartite_matching(&adj, 2);
        assert_eq!(size(&m), 2);
        assert_eq!(m[1], Some(0));
        assert_eq!(m[0], Some(1));
    }

    #[test]
    fn hall_violation_limits_size() {
        // Three left vertices all pointing to one right vertex.
        let adj = vec![vec![0], vec![0], vec![0]];
        let m = max_bipartite_matching(&adj, 1);
        assert_eq!(size(&m), 1);
    }

    #[test]
    fn distinct_mates() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let nl = rng.gen_range(1..10);
            let nr = rng.gen_range(1..10);
            let adj: Vec<Vec<usize>> = (0..nl)
                .map(|_| (0..nr).filter(|_| rng.gen_bool(0.4)).collect())
                .collect();
            let m = max_bipartite_matching(&adj, nr);
            let mut used = vec![false; nr];
            for (l, mr) in m.iter().enumerate() {
                if let Some(r) = mr {
                    assert!(adj[l].contains(r));
                    assert!(!used[*r]);
                    used[*r] = true;
                }
            }
        }
    }
}
