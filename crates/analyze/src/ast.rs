//! Item-level AST produced by the recursive-descent parser
//! ([`crate::parse`]).
//!
//! The shape is deliberately shallow: passes need *who calls what*, not
//! full expression semantics. Items carry exact token spans — the
//! parser guarantees the top-level item spans tile the token stream
//! with no gaps and no overlaps (verified by a property test over the
//! real workspace), so every token is attributable to exactly one item.
//! Function bodies are flattened into expression trees that keep only
//! the four constructs the interprocedural passes consume: calls,
//! method calls, macro invocations and closures.

/// A parsed file: top-level items in source order.
#[derive(Clone, Debug, Default)]
pub struct Ast {
    /// Items in source order; spans tile the token stream exactly.
    pub items: Vec<Item>,
}

/// One item with its inclusive token span `(first, last)`.
#[derive(Clone, Debug)]
pub struct Item {
    /// Inclusive token-index range covered by the item (attributes and
    /// visibility included).
    pub span: (usize, usize),
    /// What the item is.
    pub kind: ItemKind,
}

/// Item discriminant.
#[derive(Clone, Debug)]
pub enum ItemKind {
    /// A free function (or, nested under [`ItemKind::Impl`], a method).
    Fn(FnDecl),
    /// An `impl` block or `trait` definition with its methods.
    Impl(ImplBlock),
    /// An inline `mod name { ... }` with its nested items.
    Mod {
        /// Module name.
        name: String,
        /// Items inside the braces.
        items: Vec<Item>,
    },
    /// A `use` declaration, flattened: one `(binding, full path)` pair
    /// per imported name (the binding is the alias after `as`, else the
    /// last path segment).
    Use {
        /// Flattened imports.
        imports: Vec<(String, Vec<String>)>,
    },
    /// Anything else (structs, enums, consts, statics, type aliases,
    /// `macro_rules!` definitions, stray tokens): span-only filler that
    /// keeps the tiling invariant.
    Other,
}

/// An `impl` block or `trait` definition.
#[derive(Clone, Debug)]
pub struct ImplBlock {
    /// The implementing type's (or trait's) last path segment — the
    /// receiver name methods resolve against.
    pub owner: String,
    /// For `impl Trait for Type`, the trait's last path segment.
    pub of_trait: Option<String>,
    /// True for `trait` definitions (methods may be bodiless).
    pub is_trait: bool,
    /// Methods and nested items.
    pub items: Vec<Item>,
}

/// One function declaration.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Any `pub` qualifier (including `pub(crate)`).
    pub is_pub: bool,
    /// Inclusive token span of the signature (`fn` keyword through the
    /// token before the body `{` or the terminating `;`).
    pub sig: (usize, usize),
    /// Identifiers appearing in the signature — parameter names and
    /// type-path segments alike; the budget-flow pass looks for
    /// `Budget` here.
    pub sig_idents: Vec<String>,
    /// The body, `None` for bodiless trait-method declarations.
    pub body: Option<Block>,
}

/// A brace-delimited function body.
#[derive(Clone, Debug)]
pub struct Block {
    /// Inclusive token span including both braces.
    pub span: (usize, usize),
    /// Flattened expression tree.
    pub exprs: Vec<Expr>,
}

/// The expression constructs the passes consume.
#[derive(Clone, Debug)]
pub enum Expr {
    /// `path::to::f(args)` — also matches enum-variant constructors and
    /// struct tuple constructors, which the resolver simply fails to
    /// resolve to a workspace fn.
    Call {
        /// Path segments (`["Bdd", "new"]` for `Bdd::new`).
        path: Vec<String>,
        /// One expression list per argument.
        args: Vec<Vec<Expr>>,
        /// 1-based line of the call.
        line: u32,
    },
    /// `.name(args)` — the receiver is not tracked; method resolution
    /// over-approximates by name.
    Method {
        /// Method name.
        name: String,
        /// One expression list per argument.
        args: Vec<Vec<Expr>>,
        /// 1-based line of the call.
        line: u32,
    },
    /// `name!(...)` — inner tokens are parsed as expressions so calls
    /// inside `format!`/`vec!` arguments still show up.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Expressions found among the macro's tokens.
        inner: Vec<Expr>,
        /// 1-based line of the invocation.
        line: u32,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter-pattern identifiers (destructured names included).
        params: Vec<String>,
        /// Body expressions.
        body: Vec<Expr>,
        /// Inclusive token span from the opening `|` through the last
        /// body token.
        span: (usize, usize),
        /// 1-based line of the opening `|`.
        line: u32,
    },
}

impl Expr {
    /// The 1-based line the expression starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Closure { line, .. } => *line,
        }
    }
}

/// Depth-first pre-order walk over an expression forest.
pub fn visit<'a>(exprs: &'a [Expr], f: &mut impl FnMut(&'a Expr)) {
    for e in exprs {
        f(e);
        match e {
            Expr::Call { args, .. } | Expr::Method { args, .. } => {
                for a in args {
                    visit(a, f);
                }
            }
            Expr::Macro { inner, .. } => visit(inner, f),
            Expr::Closure { body, .. } => visit(body, f),
        }
    }
}

/// Depth-first walk over an item forest, yielding every function with
/// the owner name of its enclosing `impl`/`trait` block (if any).
pub fn visit_fns<'a>(items: &'a [Item], f: &mut impl FnMut(Option<&'a str>, &'a FnDecl)) {
    visit_fns_in(items, None, f);
}

fn visit_fns_in<'a>(
    items: &'a [Item],
    owner: Option<&'a str>,
    f: &mut impl FnMut(Option<&'a str>, &'a FnDecl),
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(decl) => f(owner, decl),
            ItemKind::Impl(block) => visit_fns_in(&block.items, Some(&block.owner), f),
            ItemKind::Mod { items, .. } => visit_fns_in(items, owner, f),
            ItemKind::Use { .. } | ItemKind::Other => {}
        }
    }
}
