//! The analyzed workspace: every `.rs` file, every `Cargo.toml`,
//! `DESIGN.md`, and the committed ratchet files.
//!
//! Built either from a directory tree ([`Workspace::from_root`]) or
//! from in-memory sources ([`Workspace::from_sources`]) so fixture and
//! mutation tests can assemble synthetic workspaces without touching
//! the filesystem.

use crate::error::SaError;
use crate::manifest::{self, Manifest};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root) holding per-pass ratchet
/// files.
pub const RATCHET_DIR: &str = "crates/analyze/ratchets";

/// Everything the passes look at.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Analyzed source files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Parsed manifests, sorted by path.
    pub manifests: Vec<Manifest>,
    /// `DESIGN.md` content, when present.
    pub design: Option<String>,
    /// Committed ratchet files: `(file name, content)`.
    pub ratchets: Vec<(String, String)>,
}

impl Workspace {
    /// Assembles a workspace from in-memory `(path, text)` sources.
    /// Paths ending in `Cargo.toml` become manifests, a `DESIGN.md`
    /// entry becomes the design doc, entries under the ratchet
    /// directory become ratchet files, and `.rs` paths become source
    /// files.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, text) in sources {
            if path.ends_with("Cargo.toml") {
                ws.manifests.push(manifest::parse(path, text));
            } else if *path == "DESIGN.md" {
                ws.design = Some((*text).to_owned());
            } else if let Some(name) = path
                .strip_prefix(RATCHET_DIR)
                .and_then(|p| p.strip_prefix('/'))
            {
                ws.ratchets.push((name.to_owned(), (*text).to_owned()));
            } else if path.ends_with(".rs") {
                ws.files.push(SourceFile::new(path, text));
            }
        }
        ws.files.sort_by(|a, b| a.path.cmp(&b.path));
        ws.manifests.sort_by(|a, b| a.path.cmp(&b.path));
        ws.ratchets.sort();
        ws
    }

    /// Reads the workspace rooted at `root` from disk, lexing/parsing
    /// with the environment's `HYDE_THREADS` worker count.
    ///
    /// # Errors
    ///
    /// Fails with [`SaError::Io`] when the root layout cannot be read;
    /// individual unreadable files fail rather than being skipped, so a
    /// permissions problem cannot silently shrink the analysis surface.
    pub fn from_root(root: &Path) -> Result<Workspace, SaError> {
        Workspace::from_root_with_threads(root, hyde_core::parallel::thread_count())
    }

    /// [`Workspace::from_root`] with an explicit worker count — the
    /// 1-vs-N determinism test drives this directly. IO is sequential
    /// (path-sorted); lexing and parsing fan out through
    /// `hyde_core::parallel::map_chunked`, whose input-order merge
    /// keeps `ws.files` path-sorted for any thread count.
    pub fn from_root_with_threads(root: &Path, threads: usize) -> Result<Workspace, SaError> {
        let mut ws = Workspace::default();
        let mut rs_files: Vec<PathBuf> = Vec::new();
        let mut manifest_paths: Vec<PathBuf> = vec![root.join("Cargo.toml")];

        for top in ["src", "tests", "examples"] {
            collect_rs(&root.join(top), &mut rs_files)?;
        }
        let crates_dir = root.join("crates");
        for crate_dir in read_dir_sorted(&crates_dir)? {
            if !crate_dir.is_dir() {
                continue;
            }
            let manifest = crate_dir.join("Cargo.toml");
            if manifest.is_file() {
                manifest_paths.push(manifest);
            }
            for sub in ["src", "tests", "benches", "examples"] {
                collect_rs(&crate_dir.join(sub), &mut rs_files)?;
            }
        }

        rs_files.sort();
        let mut pairs: Vec<(String, String)> = Vec::with_capacity(rs_files.len());
        for path in rs_files {
            let rel = rel_path(root, &path);
            pairs.push((rel, read(&path)?));
        }
        ws.files = hyde_core::parallel::map_chunked("sa.lex", &pairs, threads, |(rel, text)| {
            SourceFile::new(rel, text)
        });
        hyde_obs::counter("sa.files", ws.files.len() as u64);
        manifest_paths.sort();
        for path in manifest_paths {
            let rel = rel_path(root, &path);
            let text = read(&path)?;
            ws.manifests.push(manifest::parse(&rel, &text));
        }
        let design = root.join("DESIGN.md");
        if design.is_file() {
            ws.design = Some(read(&design)?);
        }
        let ratchet_dir = root.join(RATCHET_DIR);
        if ratchet_dir.is_dir() {
            for path in read_dir_sorted(&ratchet_dir)? {
                if path.extension().is_some_and(|e| e == "txt") {
                    let name = path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    ws.ratchets.push((name, read(&path)?));
                }
            }
        }
        Ok(ws)
    }

    /// The named ratchet file's content, if committed.
    pub fn ratchet(&self, name: &str) -> Option<&str> {
        self.ratchets
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }

    /// The manifest whose `[package] name` is `name`.
    pub fn manifest_for(&self, name: &str) -> Option<&Manifest> {
        self.manifests.iter().find(|m| m.package == name)
    }
}

fn read(path: &Path) -> Result<String, SaError> {
    std::fs::read_to_string(path).map_err(|e| SaError::Io(format!("{}: {e}", path.display())))
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, SaError> {
    let rd = std::fs::read_dir(dir).map_err(|e| SaError::Io(format!("{}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| SaError::Io(format!("{}: {e}", dir.display())))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` (silently absent dirs
/// are fine — not every crate has `tests/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), SaError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sources_routes_entries() {
        let ws = Workspace::from_sources(&[
            ("crates/core/src/a.rs", "fn f() {}"),
            (
                "crates/core/Cargo.toml",
                "[package]\nname = \"hyde-core\"\n",
            ),
            ("DESIGN.md", "# doc"),
            (
                "crates/analyze/ratchets/SA003-panic-surface.txt",
                "0 x.rs\n",
            ),
        ]);
        assert_eq!(ws.files.len(), 1);
        assert_eq!(ws.manifests.len(), 1);
        assert_eq!(ws.design.as_deref(), Some("# doc"));
        assert_eq!(ws.ratchet("SA003-panic-surface.txt"), Some("0 x.rs\n"));
        assert!(ws.manifest_for("hyde-core").is_some());
    }
}
