//! Minimal `Cargo.toml` model for the feature-hygiene pass.
//!
//! This is not a TOML parser — it understands exactly the subset the
//! workspace manifests use (section headers, `key = value` lines,
//! inline tables, single- and multi-line string arrays), mirroring the
//! hand-rolled philosophy of `hyde-obs`'s JSON emitter.

/// One dependency entry.
#[derive(Clone, Debug, Default)]
pub struct Dep {
    /// Dependency package name.
    pub name: String,
    /// `default-features = false` written at this use site, when given.
    pub default_features: Option<bool>,
    /// `workspace = true` inheritance.
    pub workspace: bool,
    /// `path = "..."` for internal crates.
    pub path: Option<String>,
    /// True when the entry came from `[dev-dependencies]`.
    pub dev: bool,
}

/// One parsed manifest.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// Workspace-relative path of the `Cargo.toml`.
    pub path: String,
    /// `[package] name`, empty for a virtual manifest.
    pub package: String,
    /// `[features]` table: `(feature, forwarded entries)`.
    pub features: Vec<(String, Vec<String>)>,
    /// `[dependencies]` + `[dev-dependencies]` entries.
    pub deps: Vec<Dep>,
    /// `[workspace.dependencies]` entries (workspace root only).
    pub workspace_deps: Vec<Dep>,
}

impl Manifest {
    /// Looks up a feature's forwarding list.
    pub fn feature(&self, name: &str) -> Option<&[String]> {
        self.features
            .iter()
            .find(|(f, _)| f == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Non-dev dependency lookup.
    pub fn dep(&self, name: &str) -> Option<&Dep> {
        self.deps.iter().find(|d| !d.dev && d.name == name)
    }
}

/// Strips a trailing `# comment` (outside strings) and whitespace.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line).trim(),
            _ => {}
        }
    }
    line.trim()
}

/// Extracts the string elements of `[ "a", "b/c" ]`.
fn parse_string_array(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('"') {
        let Some(tail) = rest.get(start + 1..) else {
            break;
        };
        let Some(end) = tail.find('"') else { break };
        if let Some(s) = tail.get(..end) {
            out.push(s.to_owned());
        }
        rest = tail.get(end + 1..).unwrap_or("");
    }
    out
}

/// Parses one inline-table dependency value like
/// `{ path = "../bdd", default-features = false }`.
fn parse_dep_value(name: &str, value: &str, dev: bool) -> Dep {
    let mut dep = Dep {
        name: name.to_owned(),
        dev,
        ..Dep::default()
    };
    if value.contains("workspace") && value.contains("true") {
        dep.workspace = true;
    }
    if let Some(pos) = value.find("path") {
        if let Some(tail) = value.get(pos..) {
            if let Some(p) = parse_string_array(tail).into_iter().next() {
                dep.path = Some(p);
            }
        }
    }
    if let Some(pos) = value.find("default-features") {
        let tail = value.get(pos..).unwrap_or("");
        if tail.contains("false") {
            dep.default_features = Some(false);
        } else if tail.contains("true") {
            dep.default_features = Some(true);
        }
    }
    dep
}

/// Parses `text` as the manifest at workspace-relative `path`.
pub fn parse(path: &str, text: &str) -> Manifest {
    let mut m = Manifest {
        path: path.to_owned(),
        ..Manifest::default()
    };
    let mut section = String::new();
    let mut pending: Option<(String, String, String)> = None; // (section, key, accumulated)
    for raw in text.lines() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        if let Some((sec, key, mut acc)) = pending.take() {
            acc.push(' ');
            acc.push_str(line);
            if line.contains(']') {
                finish_entry(&mut m, &sec, &key, &acc);
            } else {
                pending = Some((sec, key, acc));
            }
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().to_owned();
        let value = value.trim().to_owned();
        if value.starts_with('[') && !value.contains(']') {
            pending = Some((section.clone(), key, value));
            continue;
        }
        finish_entry(&mut m, &section, &key, &value);
    }
    m
}

fn finish_entry(m: &mut Manifest, section: &str, key: &str, value: &str) {
    match section {
        "package" if key == "name" => {
            if let Some(name) = parse_string_array(value).into_iter().next() {
                m.package = name;
            }
        }
        "features" => {
            m.features.push((key.to_owned(), parse_string_array(value)));
        }
        "dependencies" | "dev-dependencies" | "build-dependencies" => {
            let dev = section != "dependencies";
            // `foo.workspace = true` spelling.
            if let Some(base) = key.strip_suffix(".workspace") {
                let mut dep = Dep {
                    name: base.trim().to_owned(),
                    dev,
                    ..Dep::default()
                };
                dep.workspace = value.contains("true");
                m.deps.push(dep);
            } else {
                m.deps.push(parse_dep_value(key, value, dev));
            }
        }
        "workspace.dependencies" => {
            m.workspace_deps.push(parse_dep_value(key, value, false));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "hyde-bdd"

[features]
default = ["obs-rt"]
obs-rt = [
    "hyde-obs/rt",
    "hyde-guard/obs-rt",
]

[dependencies]
hyde-obs = { workspace = true, default-features = false }
hyde-guard = { path = "../guard", default-features = false }
plain = "1.0"

[dev-dependencies]
rand.workspace = true
"#;

    #[test]
    fn parses_workspace_style_manifest() {
        let m = parse("crates/bdd/Cargo.toml", SAMPLE);
        assert_eq!(m.package, "hyde-bdd");
        assert_eq!(
            m.feature("obs-rt"),
            Some(&["hyde-obs/rt".to_owned(), "hyde-guard/obs-rt".to_owned()][..])
        );
        let obs = m.dep("hyde-obs").map(|d| (d.workspace, d.default_features));
        assert_eq!(obs, Some((true, Some(false))));
        let guard = m.dep("hyde-guard").map(|d| d.path.clone());
        assert_eq!(guard, Some(Some("../guard".to_owned())));
        assert!(m
            .deps
            .iter()
            .any(|d| d.dev && d.name == "rand" && d.workspace));
    }
}
