//! The pass registry: the [`Pass`] trait and the [`Registry`] that fans
//! the workspace out to every pass — the same shape as hyde-verify's
//! `Lint`/`Registry` pair, over source files instead of pipeline
//! artifacts.

use crate::report::{Finding, PassSummary, Report};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Collects findings for one pass, applying `sa:allow` directives.
pub struct Emitter {
    pass: &'static str,
    findings: Vec<Finding>,
    allowed: usize,
    notes: Vec<String>,
}

impl Emitter {
    fn new(pass: &'static str) -> Emitter {
        Emitter {
            pass,
            findings: Vec::new(),
            allowed: 0,
            notes: Vec::new(),
        }
    }

    /// Emits a finding anchored in `file`, honoring its allow
    /// directives.
    pub fn emit(&mut self, file: &SourceFile, code: &'static str, line: u32, message: String) {
        if file.allowed(code, line) {
            self.allowed += 1;
        } else {
            self.findings.push(Finding {
                code,
                pass: self.pass,
                file: file.path.clone(),
                line,
                message,
            });
        }
    }

    /// Emits a finding against a path with no allow-directive support
    /// (manifests, `DESIGN.md`, ratchet files, workspace-level checks).
    pub fn emit_path(&mut self, path: &str, code: &'static str, line: u32, message: String) {
        self.findings.push(Finding {
            code,
            pass: self.pass,
            file: path.to_owned(),
            line,
            message,
        });
    }

    /// Records a non-failing improvement note (e.g. a ratchet count
    /// below its committed cap).
    pub fn note(&mut self, message: String) {
        self.notes.push(message);
    }
}

/// One static-analysis pass.
pub trait Pass {
    /// Short kebab-case name, e.g. `"determinism"`.
    fn name(&self) -> &'static str;
    /// The stable `SAxxx` codes this pass can emit.
    fn codes(&self) -> &'static [&'static str];
    /// Appends findings on `ws` to `out`.
    fn check(&self, ws: &Workspace, out: &mut Emitter);
}

/// An ordered collection of passes run as one analysis.
pub struct Registry {
    passes: Vec<Box<dyn Pass>>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry { passes: Vec::new() }
    }

    /// A registry with every pass shipped by this crate.
    pub fn with_defaults() -> Registry {
        let mut r = Registry::empty();
        r.register(Box::new(crate::passes::determinism::DeterminismPass));
        r.register(Box::new(crate::passes::panic_surface::PanicSurfacePass));
        r.register(Box::new(crate::passes::budget::BudgetPass));
        r.register(Box::new(crate::passes::obs::ObsPass));
        r.register(Box::new(crate::passes::diag::DiagRegistryPass));
        r.register(Box::new(crate::passes::features::FeatureHygienePass));
        r
    }

    /// Adds a pass to the end of the run order.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// `(name, codes)` of the registered passes, in run order.
    pub fn pass_list(&self) -> Vec<(&'static str, &'static [&'static str])> {
        self.passes.iter().map(|p| (p.name(), p.codes())).collect()
    }

    /// Every code any registered pass can emit, in run order.
    pub fn all_codes(&self) -> Vec<&'static str> {
        self.passes
            .iter()
            .flat_map(|p| p.codes().iter().copied())
            .collect()
    }

    /// Runs every pass over `ws` and collects the report.
    pub fn run(&self, ws: &Workspace) -> Report {
        let mut report = Report {
            files_scanned: ws.files.len(),
            ..Report::default()
        };
        for pass in &self.passes {
            let mut em = Emitter::new(pass.name());
            pass.check(ws, &mut em);
            report.passes.push(PassSummary {
                pass: pass.name(),
                codes: pass.codes().to_vec(),
                findings: em.findings.len(),
                allowed: em.allowed,
            });
            report.findings.extend(em.findings);
            report.notes.extend(em.notes);
        }
        report
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}
