//! The pass registry: the [`Pass`] trait and the [`Registry`] that fans
//! the workspace out to every pass — the same shape as hyde-verify's
//! `Lint`/`Registry` pair, over source files instead of pipeline
//! artifacts.
//!
//! v2 additions: passes receive a [`Cx`] carrying the workspace *and*
//! the call graph (built once per run), findings carry a severity, and
//! every suppression an emitter applies is recorded as a
//! `(file, directive line)` pair so the post-phase SA013 pass can flag
//! stale `sa:allow` directives.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::report::{Finding, PassSummary, Report, Severity};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Everything a pass can see: the workspace and the call graph.
pub struct Cx<'a> {
    /// The analyzed workspace.
    pub ws: &'a Workspace,
    /// The cross-crate call graph (symbol table inside).
    pub graph: &'a CallGraph,
}

/// A suppression that fired: `(file path, directive line)`.
pub type UsedAllow = (String, u32);

/// Collects findings for one pass, applying `sa:allow` directives.
pub struct Emitter {
    pass: &'static str,
    findings: Vec<Finding>,
    allowed: usize,
    notes: Vec<String>,
    used_allows: BTreeSet<UsedAllow>,
}

impl Emitter {
    fn new(pass: &'static str) -> Emitter {
        Emitter {
            pass,
            findings: Vec::new(),
            allowed: 0,
            notes: Vec::new(),
            used_allows: BTreeSet::new(),
        }
    }

    /// Emits a deny finding anchored in `file`, honoring its allow
    /// directives.
    pub fn emit(&mut self, file: &SourceFile, code: &'static str, line: u32, message: String) {
        self.emit_with_path(file, code, line, message, Vec::new());
    }

    /// Emits a deny finding with call-path evidence, honoring allow
    /// directives at `line`.
    pub fn emit_with_path(
        &mut self,
        file: &SourceFile,
        code: &'static str,
        line: u32,
        message: String,
        path: Vec<String>,
    ) {
        if let Some(directive) = file.allow_match(code, line) {
            self.allowed += 1;
            self.used_allows.insert((file.path.clone(), directive));
        } else {
            self.findings.push(Finding {
                code,
                pass: self.pass,
                file: file.path.clone(),
                line,
                message,
                severity: Severity::Deny,
                path,
            });
        }
    }

    /// Emits a warn finding anchored in `file`, honoring its allow
    /// directives.
    pub fn warn(&mut self, file: &SourceFile, code: &'static str, line: u32, message: String) {
        if let Some(directive) = file.allow_match(code, line) {
            self.allowed += 1;
            self.used_allows.insert((file.path.clone(), directive));
        } else {
            self.findings.push(Finding {
                code,
                pass: self.pass,
                file: file.path.clone(),
                line,
                message,
                severity: Severity::Warn,
                path: Vec::new(),
            });
        }
    }

    /// Emits a deny finding against a path with no allow-directive
    /// support (manifests, `DESIGN.md`, ratchet files, workspace-level
    /// checks).
    pub fn emit_path(&mut self, path: &str, code: &'static str, line: u32, message: String) {
        self.findings.push(Finding {
            code,
            pass: self.pass,
            file: path.to_owned(),
            line,
            message,
            severity: Severity::Deny,
            path: Vec::new(),
        });
    }

    /// Records that the allow directive at `(file, line)` suppressed a
    /// finding — used by passes that apply directives through a side
    /// channel (e.g. SA003's ratchet counting, SA009's site filter).
    pub fn mark_allow_used(&mut self, file: &SourceFile, directive_line: u32) {
        self.used_allows.insert((file.path.clone(), directive_line));
    }

    /// True when this emitter itself recorded the directive at
    /// `(file, line)` as used — lets SA013 avoid warning about an
    /// SA013-allow that just suppressed another SA013 warning.
    pub fn was_allow_used(&self, file: &SourceFile, directive_line: u32) -> bool {
        self.used_allows
            .contains(&(file.path.clone(), directive_line))
    }

    /// Records a non-failing improvement note (e.g. a ratchet count
    /// below its committed cap).
    pub fn note(&mut self, message: String) {
        self.notes.push(message);
    }
}

/// One static-analysis pass.
pub trait Pass {
    /// Short kebab-case name, e.g. `"determinism"`.
    fn name(&self) -> &'static str;
    /// The stable `SAxxx` codes this pass can emit.
    fn codes(&self) -> &'static [&'static str];
    /// Appends findings on `cx` to `out`.
    fn check(&self, cx: &Cx, out: &mut Emitter);
    /// Post-phase hook, run after every pass's `check` with the union
    /// of suppressions that fired. Only SA013 implements this.
    fn post(&self, cx: &Cx, used: &BTreeSet<UsedAllow>, out: &mut Emitter) {
        let _ = (cx, used, out);
    }
}

/// An ordered collection of passes run as one analysis.
pub struct Registry {
    passes: Vec<Box<dyn Pass>>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Registry {
        Registry { passes: Vec::new() }
    }

    /// A registry with every pass shipped by this crate.
    pub fn with_defaults() -> Registry {
        let mut r = Registry::empty();
        r.register(Box::new(crate::passes::determinism::DeterminismPass));
        r.register(Box::new(crate::passes::panic_surface::PanicSurfacePass));
        r.register(Box::new(crate::passes::budget::BudgetPass));
        r.register(Box::new(crate::passes::obs::ObsPass));
        r.register(Box::new(crate::passes::diag::DiagRegistryPass));
        r.register(Box::new(crate::passes::features::FeatureHygienePass));
        r.register(Box::new(crate::passes::panic_reach::PanicReachPass));
        r.register(Box::new(crate::passes::budget_flow::BudgetFlowPass));
        r.register(Box::new(crate::passes::par_merge::ParMergePass));
        r.register(Box::new(crate::passes::swallow::SwallowPass));
        let known = r.all_codes_with("SA013");
        r.register(Box::new(crate::passes::suppressions::SuppressionsPass {
            known_codes: known,
        }));
        r
    }

    /// Adds a pass to the end of the run order.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// `(name, codes)` of the registered passes, in run order.
    pub fn pass_list(&self) -> Vec<(&'static str, &'static [&'static str])> {
        self.passes.iter().map(|p| (p.name(), p.codes())).collect()
    }

    /// Every code any registered pass can emit, in run order.
    pub fn all_codes(&self) -> Vec<&'static str> {
        self.passes
            .iter()
            .flat_map(|p| p.codes().iter().copied())
            .collect()
    }

    fn all_codes_with(&self, extra: &'static str) -> Vec<&'static str> {
        let mut v = self.all_codes();
        v.push(extra);
        v
    }

    /// Runs every pass over `ws` and collects the report. The call
    /// graph is built once and shared; the post phase (SA013) runs
    /// after every check with the union of used suppressions.
    pub fn run(&self, ws: &Workspace) -> Report {
        let graph = CallGraph::build(ws);
        let cx = Cx { ws, graph: &graph };
        let mut report = Report {
            files_scanned: ws.files.len(),
            ..Report::default()
        };
        let mut used: BTreeSet<UsedAllow> = BTreeSet::new();
        let mut emitters: Vec<Emitter> = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let _obs = hyde_obs::span!("sa.pass");
            let mut em = Emitter::new(pass.name());
            pass.check(&cx, &mut em);
            used.extend(em.used_allows.iter().cloned());
            emitters.push(em);
        }
        for (pass, em) in self.passes.iter().zip(emitters.iter_mut()) {
            pass.post(&cx, &used, em);
        }
        for em in emitters {
            let denies = em
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Deny)
                .count();
            report.passes.push(PassSummary {
                pass: em.pass,
                codes: self
                    .passes
                    .iter()
                    .find(|p| p.name() == em.pass)
                    .map(|p| p.codes().to_vec())
                    .unwrap_or_default(),
                findings: denies,
                warnings: em.findings.len() - denies,
                allowed: em.allowed,
            });
            report.findings.extend(em.findings);
            report.notes.extend(em.notes);
        }
        hyde_obs::counter("sa.findings", report.findings.len() as u64);
        hyde_obs::counter("sa.allowed", report.allowed() as u64);
        report
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}
