//! Source-file model: a lexed `.rs` file with item structure
//! (functions, `#[cfg(test)]` regions) and `sa:allow` directives.

use crate::ast::Ast;
use crate::lexer::{self, Lexed, Tok, TokKind};
use crate::parse;

/// What role a file plays in its crate, derived from its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library source under `src/` (excluding `src/bin`).
    Lib,
    /// Binary source under `src/bin/`.
    Bin,
    /// Test or bench source (`tests/`, `benches/`).
    Test,
    /// Example source (`examples/`).
    Example,
}

/// One `sa:allow(CODE): reason` directive parsed from a comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The `SAxxx` code being allowed.
    pub code: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// True for `//!` directives, which cover the whole file.
    pub file_scope: bool,
}

/// A function item found by the token scanner.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function has any `pub` qualifier.
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body, `None` for bodiless declarations.
    pub body: Option<(usize, usize)>,
}

/// One analyzed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name (`core`, `bdd`, ...; `hyde` for the root
    /// package).
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Lexed token stream and comments.
    pub lexed: Lexed,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
    /// 1-based line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Item-level AST parsed from the token stream.
    pub ast: Ast,
}

/// Derives `(crate_name, kind)` from a workspace-relative path.
pub fn classify_path(path: &str) -> (String, FileKind) {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_name, rest) = match parts.split_first() {
        Some((&"crates", rest)) => match rest.split_first() {
            Some((name, tail)) => ((*name).to_owned(), tail.to_vec()),
            None => ("hyde".to_owned(), Vec::new()),
        },
        _ => ("hyde".to_owned(), parts),
    };
    let kind = match rest.first().copied() {
        Some("tests") | Some("benches") => FileKind::Test,
        Some("examples") => FileKind::Example,
        Some("src") if rest.get(1).copied() == Some("bin") => FileKind::Bin,
        _ => FileKind::Lib,
    };
    (crate_name, kind)
}

/// Finds the token index of the `}` matching the `{` at `open`, or the
/// end of the stream when unbalanced.
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds the token index of the `]` matching the `[` at `open`.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// True for a well-formed directive code: `SA` + three digits.
fn is_sa_code(code: &str) -> bool {
    code.len() == 5 && code.starts_with("SA") && code.bytes().skip(2).all(|b| b.is_ascii_digit())
}

fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("sa:allow(") else {
            continue;
        };
        // A backtick-quoted occurrence is prose *about* a directive
        // (doc comments, finding messages), not a directive.
        if pos > 0 && c.text.as_bytes().get(pos - 1) == Some(&b'`') {
            continue;
        }
        let Some(tail) = c.text.get(pos + "sa:allow(".len()..) else {
            continue;
        };
        let Some(close) = tail.find(')') else {
            continue;
        };
        let Some(code) = tail.get(..close).map(str::trim) else {
            continue;
        };
        if !is_sa_code(code) {
            continue;
        }
        // Require a non-empty justification after "): ".
        let justified = tail
            .get(close + 1..)
            .map(|r| r.trim_start_matches(':').trim())
            .is_some_and(|r| !r.is_empty());
        if !justified {
            continue;
        }
        out.push(Allow {
            code: code.to_owned(),
            line: c.line,
            file_scope: c.inner,
        });
    }
    out
}

/// Scans for `#[cfg(test)]`-gated items (and `#[test]` functions) and
/// returns their inclusive line ranges.
fn parse_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(t) = toks.get(i) {
        if !t.is_punct('#') {
            i += 1;
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| t.is_punct('[')) else {
            i += 1;
            continue;
        };
        let _ = open;
        let close = match_bracket(toks, i + 1);
        let attr = toks.get(i + 1..=close).unwrap_or_default();
        let is_cfg_test = attr.iter().any(|t| t.is_ident("cfg"))
            && attr
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("tests"));
        let is_test_attr = attr.len() == 3 && attr.iter().any(|t| t.is_ident("test"));
        if !is_cfg_test && !is_test_attr {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then find the item's body braces.
        let mut j = close + 1;
        while toks.get(j).is_some_and(|t| t.is_punct('#'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = match_bracket(toks, j + 1) + 1;
        }
        let mut k = j;
        let mut found = None;
        while let Some(t) = toks.get(k) {
            if t.is_punct('{') {
                found = Some(k);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            k += 1;
        }
        if let Some(body_open) = found {
            let body_close = match_brace(toks, body_open);
            let start = toks.get(i).map_or(1, |t| t.line);
            let end = toks.get(body_close).map_or(start, |t| t.line);
            out.push((start, end));
            i = body_close + 1;
        } else {
            i = k + 1;
        }
    }
    out
}

impl SourceFile {
    /// Lexes and scans `text` as the file at workspace-relative `path`.
    pub fn new(path: &str, text: &str) -> SourceFile {
        let (crate_name, kind) = classify_path(path);
        let lexed = lexer::lex(text);
        let allows = parse_allows(&lexed);
        let test_ranges = parse_test_ranges(&lexed.toks);
        let ast = {
            let _obs = hyde_obs::span!("sa.parse");
            parse::parse_file(&lexed.toks)
        };
        SourceFile {
            path: path.to_owned(),
            crate_name,
            kind,
            lexed,
            allows,
            test_ranges,
            ast,
        }
    }

    /// Token stream shorthand.
    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    /// True when `line` falls inside test code (a test file, or a
    /// `#[cfg(test)]` / `#[test]` region of a production file).
    pub fn in_test_code(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self
                .test_ranges
                .iter()
                .any(|&(s, e)| line >= s && line <= e)
    }

    /// True when a finding for `code` at `line` is covered by an
    /// `sa:allow` directive: a file-scope `//! sa:allow`, a trailing
    /// comment on the same line, or a comment (block) directly above —
    /// the directive covers the next line of code after it, however many
    /// comment lines the justification takes.
    pub fn allowed(&self, code: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.code == code
                && (a.file_scope || a.line == line || self.next_code_line(a.line) == Some(line))
        })
    }

    /// Like [`SourceFile::allowed`], but returns the directive's own
    /// line so suppression usage can be tracked (SA013).
    pub fn allow_match(&self, code: &str, line: u32) -> Option<u32> {
        self.allows
            .iter()
            .find(|a| {
                a.code == code
                    && (a.file_scope || a.line == line || self.next_code_line(a.line) == Some(line))
            })
            .map(|a| a.line)
    }

    /// The line of the first token after `line` (comments are not
    /// tokens, so this skips over the rest of a comment block).
    fn next_code_line(&self, line: u32) -> Option<u32> {
        self.toks().iter().find(|t| t.line > line).map(|t| t.line)
    }

    /// Scans the token stream for function items.
    pub fn fns(&self) -> Vec<FnItem> {
        let toks = self.toks();
        let mut out = Vec::new();
        let mut i = 0usize;
        while let Some(t) = toks.get(i) {
            if !t.is_ident("fn") {
                i += 1;
                continue;
            }
            // `fn(args) -> ret` is a function-pointer type, not an item.
            let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let is_pub = Self::pub_before(toks, i);
            // Find the body `{` at paren depth 0, stopping at `;`.
            let mut j = i + 2;
            let mut paren = 0usize;
            let mut body = None;
            while let Some(tj) = toks.get(j) {
                if tj.is_punct('(') {
                    paren += 1;
                } else if tj.is_punct(')') {
                    paren = paren.saturating_sub(1);
                } else if paren == 0 && tj.is_punct('{') {
                    body = Some((j, match_brace(toks, j)));
                    break;
                } else if paren == 0 && tj.is_punct(';') {
                    break;
                }
                j += 1;
            }
            out.push(FnItem {
                name: name_tok.text.clone(),
                line: t.line,
                is_pub,
                fn_tok: i,
                body,
            });
            // Continue scanning *inside* the body too (nested fns are
            // rare but cheap to support); just advance past the name.
            i += 2;
        }
        out
    }

    /// Looks backwards from the `fn` keyword for a `pub` qualifier,
    /// skipping `const`/`unsafe`/`async`/`extern "C"` and a
    /// `pub(crate)`-style restriction.
    fn pub_before(toks: &[Tok], fn_idx: usize) -> bool {
        let mut i = fn_idx;
        let mut steps = 0;
        while i > 0 && steps < 8 {
            i -= 1;
            steps += 1;
            let Some(t) = toks.get(i) else { break };
            match t.kind {
                TokKind::Ident
                    if matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern") =>
                {
                    continue;
                }
                TokKind::Ident if matches!(t.text.as_str(), "crate" | "super" | "self" | "in") => {
                    continue;
                }
                TokKind::Str => continue,
                TokKind::Punct if t.is_punct(')') || t.is_punct('(') => continue,
                TokKind::Ident if t.text == "pub" => return true,
                _ => break,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_paths() {
        assert_eq!(
            classify_path("crates/core/src/varpart.rs"),
            ("core".to_owned(), FileKind::Lib)
        );
        assert_eq!(
            classify_path("crates/verify/src/bin/hyde-lint.rs"),
            ("verify".to_owned(), FileKind::Bin)
        );
        assert_eq!(
            classify_path("crates/logic/tests/malformed.rs"),
            ("logic".to_owned(), FileKind::Test)
        );
        assert_eq!(
            classify_path("tests/end_to_end.rs"),
            ("hyde".to_owned(), FileKind::Test)
        );
        assert_eq!(
            classify_path("src/lib.rs"),
            ("hyde".to_owned(), FileKind::Lib)
        );
    }

    #[test]
    fn finds_fns_and_visibility() {
        let f = SourceFile::new(
            "crates/core/src/x.rs",
            "pub fn a() {}\nfn b() { fn inner() {} }\npub(crate) fn c() -> u8 { 0 }\n\
             pub const fn d() {}\ntrait T { fn e(&self); }",
        );
        let fns = f.fns();
        let names: Vec<(&str, bool)> = fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            [
                ("a", true),
                ("b", false),
                ("inner", false),
                ("c", true),
                ("d", true),
                ("e", false)
            ]
        );
        assert!(fns
            .iter()
            .find(|f| f.name == "e")
            .is_some_and(|f| f.body.is_none()));
    }

    #[test]
    fn cfg_test_ranges_cover_mod() {
        let f = SourceFile::new(
            "crates/core/src/x.rs",
            "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n",
        );
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(5));
    }

    #[test]
    fn allow_directives_cover_lines() {
        let f = SourceFile::new(
            "crates/core/src/x.rs",
            "// sa:allow(SA001): iteration feeds an order-insensitive sum\nlet x = 1;\n\
             let y = 2; // sa:allow(SA003): bounded by construction\n",
        );
        assert!(f.allowed("SA001", 2));
        assert!(!f.allowed("SA001", 3));
        assert!(f.allowed("SA003", 3));
        assert!(!f.allowed("SA002", 2));
    }

    #[test]
    fn file_scope_allow() {
        let f = SourceFile::new(
            "crates/core/src/x.rs",
            "//! sa:allow(SA002): deadline checks are the sanctioned budget path\nfn f() {}\n",
        );
        assert!(f.allowed("SA002", 40));
    }

    #[test]
    fn allow_requires_justification() {
        let f = SourceFile::new("crates/core/src/x.rs", "// sa:allow(SA001)\nlet x = 1;\n");
        assert!(!f.allowed("SA001", 2));
    }
}
