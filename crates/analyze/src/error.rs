//! Typed analyzer errors — hyde-sa itself keeps a zero panic surface.

/// Anything that can stop an analysis run before findings are produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaError {
    /// Filesystem problem reading the workspace.
    Io(String),
    /// Bad command line or configuration input.
    Usage(String),
}

impl std::fmt::Display for SaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaError::Io(m) => write!(f, "io error: {m}"),
            SaError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for SaError {}
