//! Hand-rolled recursive-descent parser from the token stream
//! ([`crate::lexer`]) to the item-level AST ([`crate::ast`]).
//!
//! Design rules, in priority order:
//!
//! 1. **Total**: parsing never fails. Anything that does not parse as a
//!    recognized item becomes an [`ItemKind::Other`] span, so malformed
//!    or exotic code degrades to "opaque tokens", never to a panic or an
//!    error.
//! 2. **Tiling**: the top-level item spans of [`parse_file`] cover the
//!    token stream exactly — no gaps, no overlaps. Every helper clamps
//!    to its region, so unbalanced brackets cannot leak past it. A
//!    property test in `tests/parser.rs` checks the invariant over every
//!    real workspace file.
//! 3. **Shallow**: expression parsing keeps only calls, method calls,
//!    macros and closures (what the interprocedural passes consume);
//!    all other expression structure is walked through transparently,
//!    so a call nested five levels deep in `if let` scrutinees still
//!    shows up.
//!
//! Known approximations (documented in DESIGN.md): `const`-generic
//! defaults with brace expressions can end a `struct` item early (the
//! remainder tiles into `Other`), and a closure the positional
//! heuristic misses is flattened into its surrounding expression list —
//! its calls are still collected, only the `Closure` wrapper is lost.

use crate::ast::{Ast, Block, Expr, FnDecl, ImplBlock, Item, ItemKind};
use crate::lexer::{self, Tok, TokKind};

/// Parses a full token stream into an [`Ast`] whose top-level item
/// spans tile `toks` exactly.
pub fn parse_file(toks: &[Tok]) -> Ast {
    let p = Parser { toks };
    Ast {
        items: p.items_range(0, toks.len()),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
}

/// Path-leading keywords that start a resolvable call path.
const PATH_KEYWORDS: &[&str] = &["self", "Self", "crate", "super"];

/// Keywords after which a `|` starts a closure.
const CLOSURE_PREV_KEYWORDS: &[&str] = &["return", "else", "in", "match"];

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Tok> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident(&self, i: usize) -> Option<&'a str> {
        self.tok(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// Index just past the matching close of the `(`/`[`/`{` at `open`
    /// (same-type nesting), clamped to `end`. For any other token,
    /// `open + 1`.
    fn skip_group(&self, open: usize, end: usize) -> usize {
        let Some(t) = self.tok(open) else {
            return end;
        };
        let close = match t.text.chars().next() {
            Some('(') if t.kind == TokKind::Punct => ')',
            Some('[') if t.kind == TokKind::Punct => ']',
            Some('{') if t.kind == TokKind::Punct => '}',
            _ => return (open + 1).min(end),
        };
        let open_c = t.text.chars().next().unwrap_or('(');
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_punct(i, open_c) {
                depth += 1;
            } else if self.is_punct(i, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// The matching `>` for the `<` at `open` (skipping `->` arrows and
    /// bracket groups), or `None` when the region ends or a `;`
    /// intervenes first.
    fn match_angle(&self, open: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                i = self.skip_group(i, end);
                continue;
            }
            if self.is_punct(i, '<') {
                depth += 1;
            } else if self.is_punct(i, '>') && !(i > 0 && self.is_punct(i - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            } else if self.is_punct(i, ';') {
                return None;
            }
            i += 1;
        }
        None
    }

    // -----------------------------------------------------------------
    // Items
    // -----------------------------------------------------------------

    /// Parses `[start, end)` into items whose spans tile it exactly.
    fn items_range(&self, start: usize, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut other_start: Option<usize> = None;
        let mut i = start;
        while i < end {
            if let Some((item, next)) = self.try_item(i, end) {
                debug_assert!(next > i && item.span == (i, next - 1));
                if let Some(os) = other_start.take() {
                    out.push(Item {
                        span: (os, i - 1),
                        kind: ItemKind::Other,
                    });
                }
                out.push(item);
                i = next;
            } else {
                if other_start.is_none() {
                    other_start = Some(i);
                }
                i = self.skip_group(i, end);
            }
        }
        if let Some(os) = other_start {
            out.push(Item {
                span: (os, end - 1),
                kind: ItemKind::Other,
            });
        }
        out
    }

    /// Tries to parse one item at `start`; returns the item and the
    /// index just past it, or `None` (cursor conceptually unmoved).
    fn try_item(&self, start: usize, end: usize) -> Option<(Item, usize)> {
        let mut i = start;
        // Attributes: `#[...]` and `#![...]`.
        loop {
            if self.is_punct(i, '#') {
                let mut j = i + 1;
                if self.is_punct(j, '!') {
                    j += 1;
                }
                if self.is_punct(j, '[') {
                    i = self.skip_group(j, end);
                    continue;
                }
            }
            break;
        }
        // Visibility.
        let mut is_pub = false;
        if self.ident(i) == Some("pub") {
            is_pub = true;
            i += 1;
            if self.is_punct(i, '(') {
                i = self.skip_group(i, end);
            }
        }
        // Modifiers before the item keyword.
        loop {
            match self.ident(i) {
                Some("unsafe") | Some("async") | Some("default") => i += 1,
                Some("const")
                    if matches!(
                        self.ident(i + 1),
                        Some("fn") | Some("unsafe") | Some("async") | Some("extern")
                    ) =>
                {
                    i += 1;
                }
                Some("extern")
                    if self.ident(i + 1) == Some("fn") || {
                        self.tok(i + 1).is_some_and(|t| t.kind == TokKind::Str)
                            && self.ident(i + 2) == Some("fn")
                    } =>
                {
                    i += 1;
                    if self.tok(i).is_some_and(|t| t.kind == TokKind::Str) {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        match self.ident(i)? {
            "fn" => self.parse_fn(start, i, is_pub, end),
            "impl" => self.parse_impl(start, i, end),
            "trait" => self.parse_trait(start, i, end),
            "mod" => self.parse_mod(start, i, end),
            "use" => self.parse_use(start, i, end),
            "struct" | "enum" | "union" | "macro_rules" | "macro" => {
                let next = self.consume_braced_or_semi(i, end)?;
                Some((
                    Item {
                        span: (start, next - 1),
                        kind: ItemKind::Other,
                    },
                    next,
                ))
            }
            "static" | "type" | "const" => {
                let next = self.consume_to_semi(i, end)?;
                Some((
                    Item {
                        span: (start, next - 1),
                        kind: ItemKind::Other,
                    },
                    next,
                ))
            }
            _ => None,
        }
    }

    /// Consumes an item ending at the first top-level `{...}` block or
    /// `;` (structs, enums, `macro_rules!`).
    fn consume_braced_or_semi(&self, from: usize, end: usize) -> Option<usize> {
        let mut i = from;
        while i < end {
            if self.is_punct(i, '{') {
                return Some(self.skip_group(i, end));
            }
            if self.is_punct(i, ';') {
                return Some(i + 1);
            }
            if self.is_punct(i, '(') || self.is_punct(i, '[') {
                i = self.skip_group(i, end);
                continue;
            }
            i += 1;
        }
        None
    }

    /// Consumes an item ending at the first top-level `;`, skipping all
    /// bracket groups (statics/consts with struct-literal initializers).
    fn consume_to_semi(&self, from: usize, end: usize) -> Option<usize> {
        let mut i = from;
        while i < end {
            if self.is_punct(i, ';') {
                return Some(i + 1);
            }
            if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                i = self.skip_group(i, end);
                continue;
            }
            i += 1;
        }
        None
    }

    fn parse_fn(
        &self,
        start: usize,
        fn_idx: usize,
        is_pub: bool,
        end: usize,
    ) -> Option<(Item, usize)> {
        let name_tok = self.tok(fn_idx + 1).filter(|t| t.kind == TokKind::Ident)?;
        let mut i = fn_idx + 2;
        if self.is_punct(i, '<') {
            i = self.match_angle(i, end)? + 1;
        }
        if !self.is_punct(i, '(') {
            return None;
        }
        let after_params = self.skip_group(i, end);
        // Scan the signature tail (return type, where clause) for the
        // body `{` or a terminating `;` at angle depth 0.
        let mut j = after_params;
        let mut angle = 0i32;
        let (body_open, sig_close) = loop {
            let t = self.tok(j)?;
            if t.is_punct('(') || t.is_punct('[') {
                j = self.skip_group(j, end);
                continue;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(j > 0 && self.is_punct(j - 1, '-')) {
                angle -= 1;
            } else if t.is_punct('{') && angle <= 0 {
                break (Some(j), j);
            } else if t.is_punct(';') && angle <= 0 {
                break (None, j + 1);
            }
            j += 1;
            if j >= end {
                return None;
            }
        };
        let sig = (fn_idx, sig_close.saturating_sub(1).max(fn_idx));
        let sig_idents: Vec<String> = self
            .toks
            .get(sig.0..=sig.1)
            .unwrap_or_default()
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        let (body, next) = match body_open {
            Some(open) => {
                let after = self.skip_group(open, end);
                let close = after - 1;
                (
                    Some(Block {
                        span: (open, close),
                        exprs: self.exprs(open + 1, close),
                    }),
                    after,
                )
            }
            None => (None, sig_close),
        };
        Some((
            Item {
                span: (start, next - 1),
                kind: ItemKind::Fn(FnDecl {
                    name: name_tok.text.clone(),
                    line: self.tok(fn_idx).map_or(0, |t| t.line),
                    is_pub,
                    sig,
                    sig_idents,
                    body,
                }),
            },
            next,
        ))
    }

    fn parse_impl(&self, start: usize, impl_idx: usize, end: usize) -> Option<(Item, usize)> {
        let mut i = impl_idx + 1;
        if self.is_punct(i, '<') {
            i = self.match_angle(i, end)? + 1;
        }
        let mut pre_for: Vec<String> = Vec::new();
        let mut post_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        let mut in_where = false;
        let open = loop {
            let t = self.tok(i)?;
            if t.is_punct('{') {
                break i;
            }
            if t.is_punct('(') || t.is_punct('[') {
                i = self.skip_group(i, end);
                continue;
            }
            if t.is_punct('<') {
                i = self.match_angle(i, end)? + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "for" => seen_for = true,
                    "where" => in_where = true,
                    "dyn" | "mut" | "as" => {}
                    name if !in_where => {
                        if seen_for {
                            post_for.push(name.to_owned());
                        } else {
                            pre_for.push(name.to_owned());
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
            if i >= end {
                return None;
            }
        };
        let (owner, of_trait) = if seen_for {
            (post_for.last()?.clone(), pre_for.last().cloned())
        } else {
            (pre_for.last()?.clone(), None)
        };
        let next = self.skip_group(open, end);
        let items = self.items_range(open + 1, next - 1);
        Some((
            Item {
                span: (start, next - 1),
                kind: ItemKind::Impl(ImplBlock {
                    owner,
                    of_trait,
                    is_trait: false,
                    items,
                }),
            },
            next,
        ))
    }

    fn parse_trait(&self, start: usize, trait_idx: usize, end: usize) -> Option<(Item, usize)> {
        let name = self.ident(trait_idx + 1)?.to_owned();
        let mut i = trait_idx + 2;
        let open = loop {
            let t = self.tok(i)?;
            if t.is_punct('{') {
                break i;
            }
            if t.is_punct(';') {
                // `trait Alias = ...;` — opaque.
                return Some((
                    Item {
                        span: (start, i),
                        kind: ItemKind::Other,
                    },
                    i + 1,
                ));
            }
            if t.is_punct('<') {
                i = self.match_angle(i, end)? + 1;
                continue;
            }
            i = self.skip_group(i, end);
            if i >= end {
                return None;
            }
        };
        let next = self.skip_group(open, end);
        let items = self.items_range(open + 1, next - 1);
        Some((
            Item {
                span: (start, next - 1),
                kind: ItemKind::Impl(ImplBlock {
                    owner: name,
                    of_trait: None,
                    is_trait: true,
                    items,
                }),
            },
            next,
        ))
    }

    fn parse_mod(&self, start: usize, mod_idx: usize, end: usize) -> Option<(Item, usize)> {
        let name = self.ident(mod_idx + 1)?.to_owned();
        if self.is_punct(mod_idx + 2, ';') {
            return Some((
                Item {
                    span: (start, mod_idx + 2),
                    kind: ItemKind::Other,
                },
                mod_idx + 3,
            ));
        }
        if !self.is_punct(mod_idx + 2, '{') {
            return None;
        }
        let next = self.skip_group(mod_idx + 2, end);
        let items = self.items_range(mod_idx + 3, next - 1);
        Some((
            Item {
                span: (start, next - 1),
                kind: ItemKind::Mod { name, items },
            },
            next,
        ))
    }

    fn parse_use(&self, start: usize, use_idx: usize, end: usize) -> Option<(Item, usize)> {
        let semi = self.consume_to_semi(use_idx, end)?;
        let mut imports = Vec::new();
        self.use_tree(use_idx + 1, semi - 1, Vec::new(), &mut imports);
        Some((
            Item {
                span: (start, semi - 1),
                kind: ItemKind::Use { imports },
            },
            semi,
        ))
    }

    /// Flattens one use-tree in `[i, end)` (exclusive of the `;`),
    /// appending `(binding, path)` pairs.
    fn use_tree(
        &self,
        mut i: usize,
        end: usize,
        mut path: Vec<String>,
        out: &mut Vec<(String, Vec<String>)>,
    ) {
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.kind == TokKind::Ident {
                if t.text == "as" {
                    if let Some(alias) = self.ident(i + 1) {
                        out.push((alias.to_owned(), path));
                    }
                    return;
                }
                path.push(t.text.clone());
                i += 1;
                continue;
            }
            if t.is_punct(':') && self.is_punct(i + 1, ':') {
                i += 2;
                continue;
            }
            if t.is_punct('*') {
                path.push("*".to_owned());
                out.push(("*".to_owned(), path));
                return;
            }
            if t.is_punct('{') {
                let close = self.skip_group(i, end + 1).saturating_sub(1);
                let mut seg_start = i + 1;
                let mut j = i + 1;
                while j < close {
                    if self.is_punct(j, '{') || self.is_punct(j, '(') {
                        j = self.skip_group(j, close);
                        continue;
                    }
                    if self.is_punct(j, ',') {
                        self.use_tree(seg_start, j, path.clone(), out);
                        seg_start = j + 1;
                    }
                    j += 1;
                }
                if seg_start < close {
                    self.use_tree(seg_start, close, path, out);
                }
                return;
            }
            i += 1;
        }
        if let Some(last) = path.last().cloned() {
            out.push((last, path));
        }
    }

    // -----------------------------------------------------------------
    // Expressions
    // -----------------------------------------------------------------

    /// True when a `|` preceded (at the same nesting level) by `prev`
    /// starts a closure rather than a bitwise-or / pattern alternative.
    fn closure_position(prev: Option<&Tok>) -> bool {
        match prev {
            None => true,
            Some(t) if t.kind == TokKind::Punct => {
                matches!(
                    t.text.chars().next(),
                    Some('(')
                        | Some(',')
                        | Some('=')
                        | Some('{')
                        | Some(';')
                        | Some('[')
                        | Some('>')
                        | Some('&')
                )
            }
            Some(t) if t.kind == TokKind::Ident => CLOSURE_PREV_KEYWORDS.contains(&t.text.as_str()),
            _ => false,
        }
    }

    /// Flattens `[start, end)` into the expression constructs the
    /// passes consume. Always total; never panics on malformed input.
    fn exprs(&self, start: usize, end: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut prev: Option<&Tok> = None;
        let mut i = start;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            // `move |...|` / `|...|` closures.
            if t.is_ident("move") && self.is_punct(i + 1, '|') {
                if let Some((c, next)) = self.parse_closure(i, i + 1, end) {
                    out.push(c);
                    prev = None;
                    i = next;
                    continue;
                }
            }
            if t.is_punct('|') && Self::closure_position(prev) {
                if let Some((c, next)) = self.parse_closure(i, i, end) {
                    out.push(c);
                    prev = None;
                    i = next;
                    continue;
                }
            }
            // Macro invocations: `name!(..)` / `name![..]` / `name!{..}`.
            if t.kind == TokKind::Ident
                && self.is_punct(i + 1, '!')
                && (self.is_punct(i + 2, '(')
                    || self.is_punct(i + 2, '[')
                    || self.is_punct(i + 2, '{'))
            {
                let next = self.skip_group(i + 2, end);
                out.push(Expr::Macro {
                    name: t.text.clone(),
                    inner: self.exprs(i + 3, next.saturating_sub(1)),
                    line: t.line,
                });
                prev = self.tok(next - 1);
                i = next;
                continue;
            }
            // Paths and calls.
            if t.kind == TokKind::Ident
                && (!lexer::is_keyword(&t.text) || PATH_KEYWORDS.contains(&t.text.as_str()))
            {
                let (path, after) = self.parse_path(i, end);
                if self.is_punct(after, '!')
                    && (self.is_punct(after + 1, '(')
                        || self.is_punct(after + 1, '[')
                        || self.is_punct(after + 1, '{'))
                {
                    let next = self.skip_group(after + 1, end);
                    out.push(Expr::Macro {
                        name: path.last().cloned().unwrap_or_default(),
                        inner: self.exprs(after + 2, next.saturating_sub(1)),
                        line: t.line,
                    });
                    prev = self.tok(next - 1);
                    i = next;
                    continue;
                }
                if self.is_punct(after, '(') {
                    let next = self.skip_group(after, end);
                    out.push(Expr::Call {
                        path,
                        args: self.parse_args(after + 1, next.saturating_sub(1)),
                        line: t.line,
                    });
                    prev = self.tok(next - 1);
                    i = next;
                    continue;
                }
                prev = self.tok(after - 1);
                i = after;
                continue;
            }
            // Method calls: `.name(..)` with optional turbofish.
            if t.is_punct('.') {
                if let Some(m) = self.tok(i + 1).filter(|m| m.kind == TokKind::Ident) {
                    let mut j = i + 2;
                    if self.is_punct(j, ':')
                        && self.is_punct(j + 1, ':')
                        && self.is_punct(j + 2, '<')
                    {
                        if let Some(close) = self.match_angle(j + 2, end) {
                            j = close + 1;
                        }
                    }
                    if self.is_punct(j, '(') {
                        let next = self.skip_group(j, end);
                        out.push(Expr::Method {
                            name: m.text.clone(),
                            args: self.parse_args(j + 1, next.saturating_sub(1)),
                            line: m.line,
                        });
                        prev = self.tok(next - 1);
                        i = next;
                        continue;
                    }
                    prev = Some(m);
                    i += 2;
                    continue;
                }
            }
            // Transparent bracket groups.
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                let next = self.skip_group(i, end);
                out.extend(self.exprs(i + 1, next.saturating_sub(1)));
                prev = self.tok(next - 1);
                i = next;
                continue;
            }
            prev = Some(t);
            i += 1;
        }
        out
    }

    /// Parses a path `seg(::seg)*` with embedded turbofish; returns the
    /// segments and the index just past the path.
    fn parse_path(&self, start: usize, end: usize) -> (Vec<String>, usize) {
        let mut path = vec![self.tok(start).map(|t| t.text.clone()).unwrap_or_default()];
        let mut i = start + 1;
        while i + 1 < end && self.is_punct(i, ':') && self.is_punct(i + 1, ':') {
            if self.is_punct(i + 2, '<') {
                match self.match_angle(i + 2, end) {
                    Some(close) => {
                        i = close + 1;
                        continue;
                    }
                    None => break,
                }
            }
            match self.tok(i + 2).filter(|t| t.kind == TokKind::Ident) {
                Some(seg) => {
                    path.push(seg.text.clone());
                    i += 3;
                }
                None => break,
            }
        }
        (path, i)
    }

    /// Splits `[start, end)` at top-level commas (closure-parameter
    /// commas excluded) and parses each slice.
    fn parse_args(&self, start: usize, end: usize) -> Vec<Vec<Expr>> {
        let mut parts = Vec::new();
        let mut part_start = start;
        let mut prev: Option<&Tok> = None;
        let mut i = start;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                i = self.skip_group(i, end);
                prev = self.tok(i - 1);
                continue;
            }
            if t.is_punct('|') && Self::closure_position(prev) {
                i = self.closure_params_end(i, end);
                prev = self.tok(i - 1);
                continue;
            }
            if t.is_punct(',') {
                parts.push((part_start, i));
                part_start = i + 1;
            }
            prev = Some(t);
            i += 1;
        }
        if part_start < end {
            parts.push((part_start, end));
        }
        parts.into_iter().map(|(s, e)| self.exprs(s, e)).collect()
    }

    /// Index just past the closing `|` of the closure-parameter list
    /// opening at `bar`.
    fn closure_params_end(&self, bar: usize, end: usize) -> usize {
        if self.is_punct(bar + 1, '|') {
            return (bar + 2).min(end);
        }
        let mut i = bar + 1;
        while i < end {
            if self.is_punct(i, '(') || self.is_punct(i, '[') {
                i = self.skip_group(i, end);
                continue;
            }
            if self.is_punct(i, '|') {
                return i + 1;
            }
            i += 1;
        }
        end
    }

    /// Parses a closure whose span starts at `span_start` (`move` or the
    /// opening `|`) with the `|` at `bar`.
    fn parse_closure(&self, span_start: usize, bar: usize, end: usize) -> Option<(Expr, usize)> {
        let after_params = self.closure_params_end(bar, end);
        if after_params > end || (after_params == end && !self.is_punct(after_params - 1, '|')) {
            return None;
        }
        let params: Vec<String> = self
            .toks
            .get(bar + 1..after_params.saturating_sub(1))
            .unwrap_or_default()
            .iter()
            .filter(|t| t.kind == TokKind::Ident && !lexer::is_keyword(&t.text))
            .map(|t| t.text.clone())
            .collect();
        let line = self.tok(bar).map_or(0, |t| t.line);
        if self.is_punct(after_params, '{') {
            let next = self.skip_group(after_params, end);
            return Some((
                Expr::Closure {
                    params,
                    body: self.exprs(after_params + 1, next.saturating_sub(1)),
                    span: (span_start, next - 1),
                    line,
                },
                next,
            ));
        }
        // Expression body: up to the next top-level `,` or `;`.
        let mut i = after_params;
        while i < end {
            if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                i = self.skip_group(i, end);
                continue;
            }
            if self.is_punct(i, ',') || self.is_punct(i, ';') {
                break;
            }
            i += 1;
        }
        Some((
            Expr::Closure {
                params,
                body: self.exprs(after_params, i),
                span: (span_start, i.saturating_sub(1).max(span_start)),
                line,
            },
            i,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;

    fn parse(src: &str) -> Ast {
        parse_file(&lexer::lex(src).toks)
    }

    fn fn_names(a: &Ast) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        ast::visit_fns(&a.items, &mut |owner, f| {
            out.push((owner.map(str::to_owned), f.name.clone()));
        });
        out
    }

    #[test]
    fn tiling_has_no_gaps() {
        let src = "use a::b;\npub struct S { x: u8 }\nimpl S { pub fn f(&self) {} }\nfn g() {}";
        let toks = lexer::lex(src).toks;
        let a = parse_file(&toks);
        let mut next = 0usize;
        for item in &a.items {
            assert_eq!(item.span.0, next, "gap before item {item:?}");
            assert!(item.span.1 >= item.span.0);
            next = item.span.1 + 1;
        }
        assert_eq!(next, toks.len());
    }

    #[test]
    fn fns_in_impls_and_traits() {
        let a = parse(
            "impl fmt::Display for Err { fn fmt(&self) -> R { self.go() } }\n\
             trait T { fn required(&self); fn default_body(&self) { helper() } }\n\
             pub fn free<T: Into<String>>(x: T) -> Result<(), E> { x.into() }",
        );
        assert_eq!(
            fn_names(&a),
            [
                (Some("Err".into()), "fmt".into()),
                (Some("T".into()), "required".into()),
                (Some("T".into()), "default_body".into()),
                (None, "free".into()),
            ]
        );
    }

    #[test]
    fn calls_methods_macros_closures() {
        let a = parse(
            "fn f(b: &Budget) { let v = helper(x); v.push(g::h(1)); \
             format!(\"{}\", v.len()); items.iter().map(|&(lo, hi)| score(lo, hi)); }",
        );
        let mut calls = Vec::new();
        let mut closures = 0;
        ast::visit_fns(&a.items, &mut |_, f| {
            if let Some(b) = &f.body {
                ast::visit(&b.exprs, &mut |e| match e {
                    Expr::Call { path, .. } => calls.push(path.join("::")),
                    Expr::Method { name, .. } => calls.push(format!(".{name}")),
                    Expr::Closure { params, .. } => {
                        closures += 1;
                        assert_eq!(params, &["lo", "hi"]);
                    }
                    Expr::Macro { name, .. } => calls.push(format!("{name}!")),
                });
            }
        });
        assert!(calls.contains(&"helper".to_owned()));
        assert!(calls.contains(&".push".to_owned()));
        assert!(calls.contains(&"g::h".to_owned()));
        assert!(calls.contains(&"format!".to_owned()));
        assert!(calls.contains(&".len".to_owned()));
        assert!(calls.contains(&"score".to_owned()));
        assert_eq!(closures, 1);
    }

    #[test]
    fn use_trees_flatten() {
        let a =
            parse("use crate::ast::{Ast, Expr as E, nested::{x, y}};\nuse hyde_core::parallel::*;");
        let mut imports = Vec::new();
        for item in &a.items {
            if let ItemKind::Use { imports: im } = &item.kind {
                imports.extend(im.clone());
            }
        }
        assert!(imports.contains(&(
            "Ast".into(),
            vec!["crate".into(), "ast".into(), "Ast".into()]
        )));
        assert!(imports.contains(&(
            "E".into(),
            vec!["crate".into(), "ast".into(), "Expr".into()]
        )));
        assert!(imports.contains(&(
            "y".into(),
            vec!["crate".into(), "ast".into(), "nested".into(), "y".into()]
        )));
        assert!(imports
            .iter()
            .any(|(b, p)| b == "*" && p.first().is_some_and(|s| s == "hyde_core")));
    }

    #[test]
    fn budget_shows_in_sig_idents() {
        let a = parse("pub fn entry(b: &hyde_guard::Budget, n: usize) -> R { go(b, n) }");
        let mut found = false;
        ast::visit_fns(&a.items, &mut |_, f| {
            found |= f.sig_idents.iter().any(|s| s == "Budget");
        });
        assert!(found);
    }
}
