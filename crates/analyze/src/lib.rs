//! hyde-sa: workspace static analysis for the HYDE codebase.
//!
//! A dependency-light analyzer built the same way the rest of the
//! workspace is built: a small hand-rolled lexer ([`lexer`]), a
//! recursive-descent parser ([`parse`]) producing an item-level AST
//! ([`ast`]), a workspace symbol table with over-approximating call
//! resolution ([`resolve`]), a cross-crate call graph with
//! reachability queries ([`callgraph`]), and a [`registry::Pass`]
//! registry mirroring hyde-verify's `Lint`/`Registry` design — over
//! source files instead of pipeline artifacts. It enforces the
//! invariants the test suite cannot see from outputs alone:
//!
//! | pass | codes | invariant |
//! |------|-------|-----------|
//! | determinism | SA001, SA002 | no order-sensitive `HashMap`/`HashSet` iteration, no wall-clock/thread/env reads in result-affecting crates |
//! | panic-surface | SA003 | per-file ratcheted panic surface across the whole workspace |
//! | budget-propagation | SA004 | shim — superseded by SA010's interprocedural budget flow |
//! | obs-coverage | SA005, SA006 | span/counter literals match the documented taxonomy |
//! | diag-registry | SA007 | `HY`/`SA` codes declared once, documented, and exercised |
//! | feature-hygiene | SA008 | `obs-rt`/`strict-checks` forwarding chains stay correct |
//! | panic-reach | SA009 | public fns that can transitively panic are ratcheted, with call-path evidence |
//! | budget-flow | SA010 | budgets flow from `Budget`-accepting entry points into every reachable BDD/SAT constructor |
//! | par-merge | SA011 | `map_chunked` worker closures stay pure: no shared mutable state, unordered merge collections, or float accumulation |
//! | swallow | SA012 | no `let _ =` / statement-`.ok()` discarding a `Result` in result-affecting crates |
//! | suppressions | SA013 | `sa:allow` directives that suppress nothing are warned stale |
//!
//! Violations are suppressed site-by-site with
//! `// sa:allow(SAxxx): reason` directives (a non-empty justification is
//! mandatory; `//!` makes the directive file-scoped), or — for the
//! ratcheted passes — capped by committed ratchet files under
//! `crates/analyze/ratchets/` (per-file counts for SA003, a fn-id set
//! for SA009). Run it as `cargo xtask analyze` or via the `hyde-sa`
//! binary; both exit nonzero when deny findings survive (SA013 is
//! warn-level). `--baseline ANALYZE.json` reports only findings new
//! relative to a committed report ([`baseline`]).
//!
//! hyde-sa is self-hosting: the analyzer's own sources are part of the
//! analyzed workspace and must come out clean. Token-level matching is
//! what makes that possible — the pattern strings this crate is full of
//! never lex as code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod error;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod ratchet;
pub mod registry;
pub mod report;
pub mod resolve;
pub mod source;
pub mod workspace;

pub mod passes;

use std::path::Path;

use error::SaError;
use registry::Registry;
use report::Report;
use workspace::Workspace;

/// Reads the workspace at `root` and runs the default pass registry.
///
/// # Errors
///
/// Fails with [`SaError::Io`] when the workspace cannot be read.
pub fn analyze_root(root: &Path) -> Result<Report, SaError> {
    let ws = Workspace::from_root(root)?;
    Ok(Registry::with_defaults().run(&ws))
}

/// Regenerates the committed ratchet files from the current workspace
/// state and returns the workspace-relative paths written.
///
/// # Errors
///
/// Fails with [`SaError::Io`] when the workspace cannot be read or a
/// ratchet file cannot be written.
pub fn update_ratchets(root: &Path) -> Result<Vec<String>, SaError> {
    let ws = Workspace::from_root(root)?;
    let dir = root.join(workspace::RATCHET_DIR);
    std::fs::create_dir_all(&dir).map_err(|e| SaError::Io(format!("{}: {e}", dir.display())))?;
    let mut written = Vec::new();
    let targets = [
        (
            passes::panic_surface::RATCHET_FILE,
            passes::panic_surface::render_ratchet(&ws),
        ),
        (
            passes::panic_reach::RATCHET_FILE,
            passes::panic_reach::render_ratchet(&ws),
        ),
    ];
    for (name, content) in targets {
        let path = dir.join(name);
        std::fs::write(&path, content)
            .map_err(|e| SaError::Io(format!("{}: {e}", path.display())))?;
        written.push(format!("{}/{name}", workspace::RATCHET_DIR));
    }
    Ok(written)
}
