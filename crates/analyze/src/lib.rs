//! hyde-sa: workspace static analysis for the HYDE codebase.
//!
//! A dependency-free analyzer built the same way the rest of the
//! workspace is built: a small hand-rolled lexer ([`lexer`]), an
//! item-aware source model ([`source`]), a manifest model
//! ([`manifest`]), and a [`registry::Pass`] registry mirroring
//! hyde-verify's `Lint`/`Registry` design — over source files instead
//! of pipeline artifacts. It enforces the invariants the test suite
//! cannot see from outputs alone:
//!
//! | pass | codes | invariant |
//! |------|-------|-----------|
//! | determinism | SA001, SA002 | no order-sensitive `HashMap`/`HashSet` iteration, no wall-clock/thread/env reads in result-affecting crates |
//! | panic-surface | SA003 | per-file ratcheted panic surface across the whole workspace |
//! | budget-propagation | SA004 | pub fns constructing BDD/SAT work thread a `guard::Budget` |
//! | obs-coverage | SA005, SA006 | span/counter literals match the documented taxonomy |
//! | diag-registry | SA007 | `HY`/`SA` codes declared once, documented, and exercised |
//! | feature-hygiene | SA008 | `obs-rt`/`strict-checks` forwarding chains stay correct |
//!
//! Violations are suppressed site-by-site with
//! `// sa:allow(SAxxx): reason` directives (a non-empty justification is
//! mandatory; `//!` makes the directive file-scoped), or — for the
//! counting passes — capped by committed ratchet files under
//! `crates/analyze/ratchets/`. Run it as `cargo xtask analyze` or via
//! the `hyde-sa` binary; both exit nonzero when findings survive.
//!
//! hyde-sa is self-hosting: the analyzer's own sources are part of the
//! analyzed workspace and must come out clean. Token-level matching is
//! what makes that possible — the pattern strings this crate is full of
//! never lex as code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod lexer;
pub mod manifest;
pub mod ratchet;
pub mod registry;
pub mod report;
pub mod source;
pub mod workspace;

pub mod passes;

use std::path::Path;

use error::SaError;
use registry::Registry;
use report::Report;
use workspace::Workspace;

/// Reads the workspace at `root` and runs the default pass registry.
///
/// # Errors
///
/// Fails with [`SaError::Io`] when the workspace cannot be read.
pub fn analyze_root(root: &Path) -> Result<Report, SaError> {
    let ws = Workspace::from_root(root)?;
    Ok(Registry::with_defaults().run(&ws))
}

/// Regenerates the committed ratchet files from the current workspace
/// state and returns the workspace-relative paths written.
///
/// # Errors
///
/// Fails with [`SaError::Io`] when the workspace cannot be read or a
/// ratchet file cannot be written.
pub fn update_ratchets(root: &Path) -> Result<Vec<String>, SaError> {
    let ws = Workspace::from_root(root)?;
    let dir = root.join(workspace::RATCHET_DIR);
    std::fs::create_dir_all(&dir).map_err(|e| SaError::Io(format!("{}: {e}", dir.display())))?;
    let mut written = Vec::new();
    let targets = [(
        passes::panic_surface::RATCHET_FILE,
        passes::panic_surface::render_ratchet(&ws),
    )];
    for (name, content) in targets {
        let path = dir.join(name);
        std::fs::write(&path, content)
            .map_err(|e| SaError::Io(format!("{}: {e}", path.display())))?;
        written.push(format!("{}/{name}", workspace::RATCHET_DIR));
    }
    Ok(written)
}
