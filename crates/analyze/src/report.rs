//! Findings, per-pass summaries and the `ANALYZE.json` emitter.

/// JSON schema tag written into `ANALYZE.json`. v2 adds per-finding
/// `severity` and call-path arrays; v1 reports are still accepted as
/// `--baseline` input (see [`crate::baseline`]).
pub const SCHEMA: &str = "hyde-sa-v2";

/// How a surviving finding affects the exit status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (exit 1).
    Deny,
    /// Reported but does not fail the run (SA013).
    Warn,
}

impl Severity {
    /// Lower-case tag used in JSON and terminal output.
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable code, e.g. `SA001`.
    pub code: &'static str,
    /// Pass name, e.g. `determinism`.
    pub pass: &'static str,
    /// Workspace-relative file (or `Cargo.toml` / `DESIGN.md` path).
    pub file: String,
    /// 1-based line, 0 when the finding is file- or workspace-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Whether the finding fails the run.
    pub severity: Severity,
    /// Call-path evidence (entry-first hops), empty for token-level
    /// findings.
    pub path: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Deny => "",
            Severity::Warn => "warning: ",
        };
        if self.line == 0 {
            write!(
                f,
                "{}{} [{}] {}: {}",
                sev, self.code, self.pass, self.file, self.message
            )?;
        } else {
            write!(
                f,
                "{}{} [{}] {}:{}: {}",
                sev, self.code, self.pass, self.file, self.line, self.message
            )?;
        }
        for hop in &self.path {
            write!(f, "\n      {hop}")?;
        }
        Ok(())
    }
}

/// Per-pass roll-up.
#[derive(Clone, Debug)]
pub struct PassSummary {
    /// Pass name.
    pub pass: &'static str,
    /// Codes the pass can emit.
    pub codes: Vec<&'static str>,
    /// Deny findings that survived allows/ratchets.
    pub findings: usize,
    /// Warn findings that survived allows.
    pub warnings: usize,
    /// Findings suppressed by `sa:allow` directives.
    pub allowed: usize,
}

/// The result of one full analysis run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Surviving findings, in pass order.
    pub findings: Vec<Finding>,
    /// Per-pass summaries, in pass order.
    pub passes: Vec<PassSummary>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Ratchet improvement notes (counts below their committed cap).
    pub notes: Vec<String>,
}

impl Report {
    /// True when no deny-level finding survived (warnings do not fail
    /// the run).
    pub fn clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Deny)
    }

    /// The deny-level findings.
    pub fn denies(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
    }

    /// The warn-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
    }

    /// Total suppressed findings across passes.
    pub fn allowed(&self) -> usize {
        self.passes.iter().map(|p| p.allowed).sum()
    }

    /// Serializes the report as `hyde-sa-v2` JSON (hand-rolled, no
    /// serde — the build is offline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"allowed\": {},\n", self.allowed()));
        s.push_str("  \"passes\": [\n");
        let passes: Vec<String> = self
            .passes
            .iter()
            .map(|p| {
                let codes: Vec<String> = p.codes.iter().map(|c| json_str(c)).collect();
                format!(
                    "    {{\"pass\": {}, \"codes\": [{}], \"findings\": {}, \"warnings\": {}, \"allowed\": {}}}",
                    json_str(p.pass),
                    codes.join(", "),
                    p.findings,
                    p.warnings,
                    p.allowed
                )
            })
            .collect();
        s.push_str(&passes.join(",\n"));
        s.push_str("\n  ],\n");
        s.push_str("  \"findings\": [\n");
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                let path: Vec<String> = f.path.iter().map(|h| json_str(h)).collect();
                format!(
                    "    {{\"code\": {}, \"pass\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"path\": [{}]}}",
                    json_str(f.code),
                    json_str(f.pass),
                    json_str(f.severity.tag()),
                    json_str(&f.file),
                    f.line,
                    json_str(&f.message),
                    path.join(", ")
                )
            })
            .collect();
        s.push_str(&findings.join(",\n"));
        s.push_str("\n  ],\n");
        s.push_str("  \"notes\": [\n");
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("    {}", json_str(n)))
            .collect();
        s.push_str(&notes.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_schema() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.passes.push(PassSummary {
            pass: "determinism",
            codes: vec!["SA001", "SA002"],
            findings: 1,
            warnings: 0,
            allowed: 3,
        });
        r.findings.push(Finding {
            code: "SA001",
            pass: "determinism",
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: "iterates a \"HashMap\"".into(),
            severity: Severity::Deny,
            path: vec!["crates/core/src/x.rs::f".into()],
        });
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"hyde-sa-v2\""));
        assert!(json.contains("\\\"HashMap\\\""));
        assert!(json.contains("\"severity\": \"deny\""));
        assert!(json.contains("\"path\": [\"crates/core/src/x.rs::f\"]"));
        assert!(json.contains("\"allowed\": 3"));
        assert!(!r.clean());
    }

    #[test]
    fn warnings_do_not_fail() {
        let mut r = Report::default();
        r.findings.push(Finding {
            code: "SA013",
            pass: "suppressions",
            file: "crates/core/src/x.rs".into(),
            line: 3,
            message: "stale allow".into(),
            severity: Severity::Warn,
            path: Vec::new(),
        });
        assert!(r.clean());
        assert_eq!(r.warnings().count(), 1);
        assert_eq!(r.denies().count(), 0);
    }
}
