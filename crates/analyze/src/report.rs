//! Findings, per-pass summaries and the `ANALYZE.json` emitter.

/// JSON schema tag written into `ANALYZE.json`.
pub const SCHEMA: &str = "hyde-sa-v1";

/// One analyzer finding. Every finding is deny-level: the run fails if
/// any survive allow directives and ratchets.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable code, e.g. `SA001`.
    pub code: &'static str,
    /// Pass name, e.g. `determinism`.
    pub pass: &'static str,
    /// Workspace-relative file (or `Cargo.toml` / `DESIGN.md` path).
    pub file: String,
    /// 1-based line, 0 when the finding is file- or workspace-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{} [{}] {}: {}",
                self.code, self.pass, self.file, self.message
            )
        } else {
            write!(
                f,
                "{} [{}] {}:{}: {}",
                self.code, self.pass, self.file, self.line, self.message
            )
        }
    }
}

/// Per-pass roll-up.
#[derive(Clone, Debug)]
pub struct PassSummary {
    /// Pass name.
    pub pass: &'static str,
    /// Codes the pass can emit.
    pub codes: Vec<&'static str>,
    /// Findings that survived allows/ratchets.
    pub findings: usize,
    /// Findings suppressed by `sa:allow` directives.
    pub allowed: usize,
}

/// The result of one full analysis run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Surviving findings, in pass order.
    pub findings: Vec<Finding>,
    /// Per-pass summaries, in pass order.
    pub passes: Vec<PassSummary>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Ratchet improvement notes (counts below their committed cap).
    pub notes: Vec<String>,
}

impl Report {
    /// True when no finding survived.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Total suppressed findings across passes.
    pub fn allowed(&self) -> usize {
        self.passes.iter().map(|p| p.allowed).sum()
    }

    /// Serializes the report as `hyde-sa-v1` JSON (hand-rolled, no
    /// serde — the build is offline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", json_str(SCHEMA)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"allowed\": {},\n", self.allowed()));
        s.push_str("  \"passes\": [\n");
        let passes: Vec<String> = self
            .passes
            .iter()
            .map(|p| {
                let codes: Vec<String> = p.codes.iter().map(|c| json_str(c)).collect();
                format!(
                    "    {{\"pass\": {}, \"codes\": [{}], \"findings\": {}, \"allowed\": {}}}",
                    json_str(p.pass),
                    codes.join(", "),
                    p.findings,
                    p.allowed
                )
            })
            .collect();
        s.push_str(&passes.join(",\n"));
        s.push_str("\n  ],\n");
        s.push_str("  \"findings\": [\n");
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"code\": {}, \"pass\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                    json_str(f.code),
                    json_str(f.pass),
                    json_str(&f.file),
                    f.line,
                    json_str(&f.message)
                )
            })
            .collect();
        s.push_str(&findings.join(",\n"));
        s.push_str("\n  ],\n");
        s.push_str("  \"notes\": [\n");
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("    {}", json_str(n)))
            .collect();
        s.push_str(&notes.join(",\n"));
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_schema() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.passes.push(PassSummary {
            pass: "determinism",
            codes: vec!["SA001", "SA002"],
            findings: 1,
            allowed: 3,
        });
        r.findings.push(Finding {
            code: "SA001",
            pass: "determinism",
            file: "crates/core/src/x.rs".into(),
            line: 7,
            message: "iterates a \"HashMap\"".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"hyde-sa-v1\""));
        assert!(json.contains("\\\"HashMap\\\""));
        assert!(json.contains("\"allowed\": 3"));
        assert!(!r.clean());
    }
}
