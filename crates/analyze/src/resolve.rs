//! Workspace symbol table and call-path resolution.
//!
//! Resolution is deliberately **over-approximating**: when a call path
//! is ambiguous, every workspace function it *could* name becomes a
//! candidate, so reachability passes (SA009/SA010) err toward flagging.
//! The tiers, first non-empty wins (documented in DESIGN.md):
//!
//! 1. single-segment `f(..)` — fns named `f` in the same file, else the
//!    same crate, else (via this file's `use` imports) the crate the
//!    import points at; unresolved single segments are assumed to be
//!    `std`/prelude and dropped rather than matched workspace-wide.
//! 2. qualified `Qual::f(..)` — the union of: methods named `f` whose
//!    `impl`/`trait` owner is `Qual` anywhere in the workspace; free
//!    fns named `f` in files whose stem is `qual` (module paths); and,
//!    when the first segment names a workspace crate (`hyde_core` →
//!    `core`), fns named `f` in that crate. `self`/`crate`/`super`
//!    qualifiers resolve within the calling crate; `Self` resolves
//!    against the enclosing `impl` owner.
//! 3. method `.f(..)` — every workspace `impl`/`trait` method named `f`
//!    (receiver types are not tracked).

use std::collections::BTreeMap;

use crate::ast::{self, Block, Expr};
use crate::source::FileKind;
use crate::workspace::Workspace;

/// One function in the workspace symbol table.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the containing file in `ws.files`.
    pub file: usize,
    /// Enclosing `impl`/`trait` owner type, `None` for free fns.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Any `pub` qualifier.
    pub is_pub: bool,
    /// True when the fn lives in test code (test file or `#[cfg(test)]`
    /// region).
    pub in_test: bool,
    /// Signature token span in the file's token stream.
    pub sig: (usize, usize),
    /// Identifiers appearing in the signature.
    pub sig_idents: Vec<String>,
    /// Body span and expression tree, `None` for bodiless declarations.
    pub body: Option<Block>,
    /// Stable display id: `<path>::[Owner::]name` — the SA009 ratchet
    /// entry format.
    pub display: String,
}

/// The workspace symbol table.
#[derive(Clone, Debug, Default)]
pub struct Symbols {
    /// Every fn in the workspace, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// Name → fn indices (ascending).
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per-file imports: binding → full use path.
    imports: Vec<BTreeMap<String, Vec<String>>>,
}

/// Maps a path root segment to a workspace crate directory name:
/// `hyde_core` → `core`, `hyde` → `hyde` (the root package).
fn crate_of_root(root: &str) -> Option<&str> {
    if root == "hyde" {
        return Some("hyde");
    }
    root.strip_prefix("hyde_")
}

/// The module stem of a file path (`crates/core/src/parallel.rs` →
/// `parallel`).
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path)
}

impl Symbols {
    /// Builds the symbol table for `ws`.
    pub fn collect(ws: &Workspace) -> Symbols {
        let mut syms = Symbols::default();
        for (file_idx, file) in ws.files.iter().enumerate() {
            let mut imports = BTreeMap::new();
            collect_imports(&file.ast.items, &mut imports);
            syms.imports.push(imports);
            ast::visit_fns(&file.ast.items, &mut |owner, decl| {
                let display = match owner {
                    Some(o) => format!("{}::{}::{}", file.path, o, decl.name),
                    None => format!("{}::{}", file.path, decl.name),
                };
                let idx = syms.fns.len();
                syms.fns.push(FnNode {
                    file: file_idx,
                    owner: owner.map(str::to_owned),
                    name: decl.name.clone(),
                    line: decl.line,
                    is_pub: decl.is_pub,
                    in_test: file.in_test_code(decl.line),
                    sig: decl.sig,
                    sig_idents: decl.sig_idents.clone(),
                    body: decl.body.clone(),
                    display,
                });
                syms.by_name.entry(decl.name.clone()).or_default().push(idx);
            });
        }
        syms
    }

    /// All fns named `name`, filtered by `pred`.
    fn named(&self, name: &str, pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|v| v.iter().copied().filter(|&i| pred(&self.fns[i])).collect())
            .unwrap_or_default()
    }

    /// Resolves a call path written in `file_idx` (inside an impl of
    /// `caller_owner`, when any) to candidate fn indices.
    pub fn resolve_call(
        &self,
        ws: &Workspace,
        file_idx: usize,
        caller_owner: Option<&str>,
        path: &[String],
    ) -> Vec<usize> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        if path.len() == 1 {
            let same_file = self.named(name, |f| f.file == file_idx);
            if !same_file.is_empty() {
                return same_file;
            }
            let crate_name = &ws.files[file_idx].crate_name;
            let same_crate = self.named(name, |f| &ws.files[f.file].crate_name == crate_name);
            if !same_crate.is_empty() {
                return same_crate;
            }
            // Imported free fn: `use hyde_core::parallel::thread_count;`.
            if let Some(target) = self
                .imports
                .get(file_idx)
                .and_then(|im| im.get(name.as_str()))
            {
                if let Some(krate) = target.first().and_then(|r| crate_of_root(r)) {
                    return self.named(name, |f| ws.files[f.file].crate_name == krate);
                }
            }
            // Unresolved single segment: std/prelude, not workspace code.
            return Vec::new();
        }
        let qual = &path[path.len() - 2];
        let qual = if qual == "Self" {
            caller_owner.unwrap_or(qual.as_str())
        } else {
            qual.as_str()
        };
        if matches!(qual, "self" | "crate" | "super") {
            let crate_name = &ws.files[file_idx].crate_name;
            return self.named(name, |f| &ws.files[f.file].crate_name == crate_name);
        }
        let mut out = self.named(name, |f| f.owner.as_deref() == Some(qual));
        out.extend(self.named(name, |f| {
            f.owner.is_none() && file_stem(&ws.files[f.file].path) == qual
        }));
        if let Some(krate) = crate_of_root(&path[0]) {
            out.extend(self.named(name, |f| ws.files[f.file].crate_name == krate));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resolves a method call `.name(..)` to every workspace
    /// `impl`/`trait` method of that name.
    pub fn resolve_method(&self, name: &str) -> Vec<usize> {
        self.named(name, |f| f.owner.is_some())
    }

    /// Indices of the production (non-test, `Lib`-file) fns, the domain
    /// most passes quantify over.
    pub fn production_fns<'a>(
        &'a self,
        ws: &'a Workspace,
    ) -> impl Iterator<Item = (usize, &'a FnNode)> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.in_test && ws.files[f.file].kind == FileKind::Lib)
    }
}

fn collect_imports(items: &[ast::Item], out: &mut BTreeMap<String, Vec<String>>) {
    for item in items {
        match &item.kind {
            ast::ItemKind::Use { imports } => {
                for (binding, path) in imports {
                    out.insert(binding.clone(), path.clone());
                }
            }
            ast::ItemKind::Mod { items, .. } => collect_imports(items, out),
            ast::ItemKind::Impl(b) => collect_imports(&b.items, out),
            _ => {}
        }
    }
}

/// Walks a fn body's expression tree, if it has one.
pub fn visit_body<'a>(node: &'a FnNode, f: &mut impl FnMut(&'a Expr)) {
    if let Some(body) = &node.body {
        ast::visit(&body.exprs, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> Workspace {
        Workspace::from_sources(&[
            (
                "crates/core/src/a.rs",
                "use hyde_bdd::Bdd;\npub struct T;\nimpl T { pub fn m(&self) { helper() } }\n\
                 fn helper() { other::go() }\n",
            ),
            ("crates/core/src/other.rs", "pub fn go() {}"),
            (
                "crates/bdd/src/lib.rs",
                "pub struct Bdd;\nimpl Bdd { pub fn new() -> Bdd { Bdd } }",
            ),
        ])
    }

    #[test]
    fn collects_and_displays() {
        let w = ws();
        let s = Symbols::collect(&w);
        let displays: Vec<&str> = s.fns.iter().map(|f| f.display.as_str()).collect();
        assert!(displays.contains(&"crates/core/src/a.rs::T::m"));
        assert!(displays.contains(&"crates/core/src/a.rs::helper"));
        assert!(displays.contains(&"crates/bdd/src/lib.rs::Bdd::new"));
    }

    #[test]
    fn resolves_same_file_then_crate_then_owner() {
        let w = ws();
        let s = Symbols::collect(&w);
        let a_idx = w
            .files
            .iter()
            .position(|f| f.path.ends_with("a.rs"))
            .unwrap();
        let helper = s.resolve_call(&w, a_idx, Some("T"), &["helper".into()]);
        assert_eq!(helper.len(), 1);
        assert_eq!(s.fns[helper[0]].display, "crates/core/src/a.rs::helper");
        // `other::go` — module-stem tier.
        let go = s.resolve_call(&w, a_idx, None, &["other".into(), "go".into()]);
        assert_eq!(go.len(), 1);
        // `Bdd::new` — owner tier, cross-crate.
        let new = s.resolve_call(&w, a_idx, None, &["Bdd".into(), "new".into()]);
        assert_eq!(new.len(), 1);
        assert_eq!(s.fns[new[0]].display, "crates/bdd/src/lib.rs::Bdd::new");
        // Unresolved single segment drops to std.
        assert!(s
            .resolve_call(&w, a_idx, None, &["println".into()])
            .is_empty());
    }
}
