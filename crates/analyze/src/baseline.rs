//! `--baseline` diff mode: compare a fresh report against a committed
//! `ANALYZE.json` and surface only findings that are *new*.
//!
//! A finding's identity is `(code, file, message)` — the line is
//! deliberately excluded so unrelated edits shifting a finding down a
//! file do not register as regressions. Both `hyde-sa-v1` and
//! `hyde-sa-v2` reports are accepted as baseline input (v1 findings
//! have no severity field and are treated as deny), mirroring
//! hyde-bench's schema policy.

use std::collections::BTreeSet;

use crate::report::{Finding, Report, Severity};
use hyde_obs::json::{self, Json};

/// One baseline entry: the identity triple of a previously-known
/// finding.
type Key = (String, String, String);

/// A parsed baseline report.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Identity keys of every finding in the baseline.
    keys: BTreeSet<Key>,
    /// Schema tag the baseline was written with.
    pub schema: String,
}

impl Baseline {
    /// Parses baseline JSON. Accepts `hyde-sa-v1` and `hyde-sa-v2`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let root = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("baseline has no \"schema\" field")?;
        if schema != "hyde-sa-v1" && schema != crate::report::SCHEMA {
            return Err(format!("unsupported baseline schema '{schema}'"));
        }
        let findings = root
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("baseline has no \"findings\" array")?;
        let mut keys = BTreeSet::new();
        for f in findings {
            let field = |name: &str| {
                f.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("baseline finding missing \"{name}\""))
            };
            keys.insert((field("code")?, field("file")?, field("message")?));
        }
        Ok(Baseline {
            keys,
            schema: schema.to_owned(),
        })
    }

    /// True when `f` already appears in the baseline.
    pub fn contains(&self, f: &Finding) -> bool {
        // Identity is by value; build the key without cloning `f`.
        self.keys
            .iter()
            .any(|(c, fi, m)| c == f.code && fi == &f.file && m == &f.message)
    }

    /// The deny findings in `report` that are new relative to this
    /// baseline (warnings never gate).
    pub fn new_denies<'a>(&self, report: &'a Report) -> Vec<&'a Finding> {
        report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Deny && !self.contains(f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &'static str, file: &str, message: &str) -> Finding {
        Finding {
            code,
            pass: "p",
            file: file.to_owned(),
            line: 9,
            message: message.to_owned(),
            severity: Severity::Deny,
            path: Vec::new(),
        }
    }

    #[test]
    fn accepts_v1_and_v2() {
        let v1 = r#"{"schema": "hyde-sa-v1", "findings": [
            {"code": "SA001", "pass": "p", "file": "a.rs", "line": 3, "message": "m"}
        ]}"#;
        let b = Baseline::parse(v1).unwrap();
        assert_eq!(b.schema, "hyde-sa-v1");
        assert!(b.contains(&finding("SA001", "a.rs", "m")));
        assert!(!b.contains(&finding("SA001", "a.rs", "other")));

        let v2 = r#"{"schema": "hyde-sa-v2", "findings": [
            {"code": "SA009", "pass": "p", "severity": "deny", "file": "b.rs",
             "line": 1, "message": "m2", "path": ["x", "y"]}
        ]}"#;
        let b2 = Baseline::parse(v2).unwrap();
        assert!(b2.contains(&finding("SA009", "b.rs", "m2")));
    }

    #[test]
    fn rejects_unknown_schema() {
        assert!(Baseline::parse(r#"{"schema": "hyde-sa-v9", "findings": []}"#).is_err());
        assert!(Baseline::parse("not json").is_err());
    }

    #[test]
    fn diff_surfaces_only_new_denies() {
        let b = Baseline::parse(
            r#"{"schema": "hyde-sa-v1", "findings": [
                {"code": "SA001", "file": "a.rs", "message": "known"}]}"#,
        )
        .unwrap();
        let mut report = Report::default();
        report.findings.push(finding("SA001", "a.rs", "known"));
        report.findings.push(finding("SA003", "b.rs", "fresh"));
        let mut warn = finding("SA013", "c.rs", "stale");
        warn.severity = Severity::Warn;
        report.findings.push(warn);
        let new = b.new_denies(&report);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].file, "b.rs");
    }
}
