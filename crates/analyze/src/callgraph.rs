//! Cross-crate call graph with reachability queries.
//!
//! Built once per [`crate::registry::Registry::run`] from the symbol
//! table ([`crate::resolve`]): one node per workspace fn, one edge per
//! resolved call (first call line kept as evidence). Reachability
//! queries keep next-hop/parent pointers so every finding can print a
//! concrete call path, not just a verdict.
//!
//! Panic sites are collected per fn by token scan of the body span —
//! the same patterns as SA003 minus `[idx]` indexing (kept per-file
//! ratcheted by SA003; including it here would make nearly every fn
//! "panic-reaching" and the SA009 ratchet meaningless). Sites inside
//! test code or covered by an `sa:allow(SA003)`/`sa:allow(SA009)`
//! directive are exempt.

use crate::ast::Expr;
use crate::passes::panic_surface;
use crate::resolve::{FnNode, Symbols};
use crate::workspace::Workspace;

/// One direct panic site inside a fn body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// Human-readable site kind, e.g. `` `.unwrap()` ``.
    pub what: &'static str,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// The underlying symbol table.
    pub syms: Symbols,
    /// Forward edges: per fn, `(callee, call line)` sorted by callee.
    pub callees: Vec<Vec<(usize, u32)>>,
    /// Reverse edges: per fn, `(caller, call line in the caller)`.
    pub callers: Vec<Vec<(usize, u32)>>,
    /// Direct panic sites per fn, in line order.
    pub panic_sites: Vec<Vec<PanicSite>>,
}

/// Backward panic reachability: for each fn, whether it can reach a
/// panic site, plus the next hop toward one (`None` at a fn with a
/// direct site).
#[derive(Clone, Debug)]
pub struct PanicReach {
    /// `reaches[f]` — fn `f` can reach a panic site.
    pub reaches: Vec<bool>,
    next: Vec<Option<(usize, u32)>>,
}

/// Forward reachability from a set of entry fns, with parent pointers
/// back toward the entry.
#[derive(Clone, Debug)]
pub struct Forward {
    /// `reached[f]` — fn `f` is reachable from some entry.
    pub reached: Vec<bool>,
    parent: Vec<Option<(usize, u32)>>,
}

impl CallGraph {
    /// Builds the graph for `ws`.
    pub fn build(ws: &Workspace) -> CallGraph {
        let syms = {
            let _obs = hyde_obs::span!("sa.resolve");
            Symbols::collect(ws)
        };
        let _obs = hyde_obs::span!("sa.callgraph");
        let n = syms.fns.len();
        let mut callees: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        let mut panic_sites: Vec<Vec<PanicSite>> = vec![Vec::new(); n];
        for idx in 0..n {
            let node = &syms.fns[idx];
            let mut edges: Vec<(usize, u32)> = Vec::new();
            if let Some(body) = &node.body {
                crate::ast::visit(&body.exprs, &mut |e| match e {
                    Expr::Call { path, line, .. } => {
                        for c in syms.resolve_call(ws, node.file, node.owner.as_deref(), path) {
                            edges.push((c, *line));
                        }
                    }
                    Expr::Method { name, line, .. } => {
                        for c in syms.resolve_method(name) {
                            edges.push((c, *line));
                        }
                    }
                    _ => {}
                });
            }
            // Keep the first call line per callee, deterministically.
            edges.sort_by_key(|&(c, l)| (c, l));
            edges.dedup_by_key(|&mut (c, _)| c);
            callees[idx] = edges;
            panic_sites[idx] = direct_panic_sites(ws, node);
        }
        let mut callers: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for (caller, edges) in callees.iter().enumerate() {
            for &(callee, line) in edges {
                callers[callee].push((caller, line));
            }
        }
        let mut total_edges = 0u64;
        for e in &callees {
            total_edges += e.len() as u64;
        }
        hyde_obs::counter("sa.fns", n as u64);
        hyde_obs::counter("sa.calls", total_edges);
        CallGraph {
            syms,
            callees,
            callers,
            panic_sites,
        }
    }

    /// Backward BFS from every fn with a direct panic site.
    pub fn panic_reach(&self) -> PanicReach {
        let n = self.syms.fns.len();
        let mut reaches = vec![false; n];
        let mut next: Vec<Option<(usize, u32)>> = vec![None; n];
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| !self.panic_sites[i].is_empty())
            .collect();
        for &i in &queue {
            reaches[i] = true;
        }
        let mut head = 0;
        while head < queue.len() {
            let f = queue[head];
            head += 1;
            for &(caller, line) in &self.callers[f] {
                if !reaches[caller] {
                    reaches[caller] = true;
                    next[caller] = Some((f, line));
                    queue.push(caller);
                }
            }
        }
        PanicReach { reaches, next }
    }

    /// Renders the call path from `root` to a concrete panic site as
    /// display-id hops ending in the site itself.
    pub fn panic_path(&self, ws: &Workspace, reach: &PanicReach, root: usize) -> Vec<String> {
        let mut out = vec![self.syms.fns[root].display.clone()];
        let mut f = root;
        for _ in 0..128 {
            let Some((callee, line)) = reach.next[f] else {
                break;
            };
            let file = &ws.files[self.syms.fns[f].file];
            out.push(format!(
                "{} (called at {}:{})",
                self.syms.fns[callee].display, file.path, line
            ));
            f = callee;
        }
        if let Some(site) = self.panic_sites[f].first() {
            let file = &ws.files[self.syms.fns[f].file];
            out.push(format!("{} at {}:{}", site.what, file.path, site.line));
        }
        out
    }

    /// Forward BFS from `entries`.
    pub fn forward_reach(&self, entries: &[usize]) -> Forward {
        let n = self.syms.fns.len();
        let mut reached = vec![false; n];
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
        let mut queue: Vec<usize> = Vec::new();
        for &e in entries {
            if e < n && !reached[e] {
                reached[e] = true;
                queue.push(e);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let f = queue[head];
            head += 1;
            for &(callee, line) in &self.callees[f] {
                if !reached[callee] {
                    reached[callee] = true;
                    parent[callee] = Some((f, line));
                    queue.push(callee);
                }
            }
        }
        Forward { reached, parent }
    }

    /// Renders the call path from the owning entry down to `f`
    /// (entry-first order).
    pub fn entry_path(&self, ws: &Workspace, fwd: &Forward, f: usize) -> Vec<String> {
        let mut chain = vec![f];
        let mut cur = f;
        for _ in 0..128 {
            let Some((caller, _)) = fwd.parent[cur] else {
                break;
            };
            chain.push(caller);
            cur = caller;
        }
        chain.reverse();
        let mut out = Vec::with_capacity(chain.len());
        for pair in chain.windows(2) {
            let (caller, callee) = (pair[0], pair[1]);
            let line = fwd.parent[callee].map_or(0, |(_, l)| l);
            let file = &ws.files[self.syms.fns[caller].file];
            out.push(format!(
                "{} (calls {} at {}:{})",
                self.syms.fns[caller].display, self.syms.fns[callee].name, file.path, line
            ));
        }
        out.push(self.syms.fns[f].display.clone());
        out
    }
}

/// Direct panic sites in `node`'s body: SA003's method/macro patterns
/// (no indexing), excluding test code and allowed lines.
fn direct_panic_sites(ws: &Workspace, node: &FnNode) -> Vec<PanicSite> {
    let Some(body) = &node.body else {
        return Vec::new();
    };
    let file = &ws.files[node.file];
    let toks = file.toks();
    let Some(window) = toks.get(body.span.0..=body.span.1) else {
        return Vec::new();
    };
    panic_surface::scan_sites(window)
        .into_iter()
        .filter(|s| !s.indexing)
        .filter(|s| !file.in_test_code(s.line))
        .filter(|s| !file.allowed("SA003", s.line) && !file.allowed("SA009", s.line))
        .map(|s| PanicSite {
            line: s.line,
            what: s.what,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_panic_paths() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { middle() }\nfn middle() { deep() }\n\
             fn deep() { maybe().unwrap(); }\nfn maybe() -> Option<u8> { None }\n",
        )]);
        let g = CallGraph::build(&ws);
        let reach = g.panic_reach();
        let entry = g.syms.fns.iter().position(|f| f.name == "entry").unwrap();
        assert!(reach.reaches[entry]);
        let path = g.panic_path(&ws, &reach, entry);
        assert!(path[0].ends_with("::entry"));
        assert!(path.last().unwrap().contains(".unwrap()"));
        assert!(path.iter().any(|h| h.contains("::deep")));
    }

    #[test]
    fn forward_reach_tracks_parents() {
        let ws = Workspace::from_sources(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { level1() }\nfn level1() { level2() }\nfn level2() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        let entry = g.syms.fns.iter().position(|f| f.name == "entry").unwrap();
        let l2 = g.syms.fns.iter().position(|f| f.name == "level2").unwrap();
        let fwd = g.forward_reach(&[entry]);
        assert!(fwd.reached[l2]);
        let path = g.entry_path(&ws, &fwd, l2);
        assert!(path[0].contains("::entry"));
        assert!(path.last().unwrap().ends_with("::level2"));
    }
}
