//! SA003 — panic surface: the whole-workspace generalization of the
//! old `cargo xtask unwrap-gate`.
//!
//! Counts `.unwrap()` / `.expect(` / `.unwrap_unchecked(` calls,
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!` invocations
//! and `[idx]` index expressions in production code (library and binary
//! sources; test code is free to panic) and ratchets the per-file
//! counts against `crates/analyze/ratchets/SA003-panic-surface.txt`.
//! Counts may go down freely — and should, toward typed errors — but
//! only up with a justified ratchet bump. Individual genuinely
//! unreachable sites can instead carry an `sa:allow(SA003)` directive,
//! which removes them from the count.
//!
//! `assert!`/`debug_assert!` are deliberately *not* counted: invariant
//! gates are sanctioned (see `strict-checks`), panics as control flow
//! are not.

use crate::lexer::{self, Tok, TokKind};
use crate::ratchet::Ratchet;
use crate::registry::{Cx, Emitter, Pass};
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;

/// The panic-surface ratchet pass (SA003).
pub struct PanicSurfacePass;

/// Ratchet file name under `crates/analyze/ratchets/`.
pub const RATCHET_FILE: &str = "SA003-panic-surface.txt";

/// Header written into a regenerated ratchet file.
pub const RATCHET_HEADER: &str = "\
Per-file panic-surface ratchet for production code (lib + bin sources),
enforced by `cargo xtask analyze` (pass SA003). Counted sites:
.unwrap() / .expect( / .unwrap_unchecked(, panic!/unreachable!/todo!/
unimplemented!, and [idx] index expressions. Test code is exempt;
sites with an inline `sa:allow(SA003): reason` directive are exempt.
Counts may go DOWN freely (lower the cap when they do) and may only go
UP with a justification in the PR: fallible paths return typed errors
(CoreError, LogicError, SaError, OutOfBudget degradation), so a new
panic site needs to argue it is truly unreachable.
Regenerate with `cargo run -p hyde-analyze --bin hyde-sa -- --update-ratchets`.";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_unchecked"];

fn eligible(f: &SourceFile) -> bool {
    matches!(f.kind, FileKind::Lib | FileKind::Bin)
}

/// One raw panic-surface site (no test-code or allow filtering).
#[derive(Clone, Copy, Debug)]
pub struct Site {
    /// 1-based line of the site.
    pub line: u32,
    /// Human-readable site kind, e.g. `` `.unwrap()` ``.
    pub what: &'static str,
    /// True for `expr[idx]` indexing — counted by SA003's per-file
    /// ratchet, excluded from SA009's reachability (it would make
    /// nearly every fn panic-reaching).
    pub indexing: bool,
}

/// Scans a token window for raw panic-surface sites. Callers apply
/// their own test-code / allow-directive filtering.
pub fn scan_sites(toks: &[Tok]) -> Vec<Site> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // `.unwrap()` / `.expect(` / `.unwrap_unchecked(`
        if t.is_punct('.') && toks.get(i + 2).is_some_and(|p| p.is_punct('(')) {
            if let Some(m) = toks
                .get(i + 1)
                .filter(|m| m.kind == TokKind::Ident && PANIC_METHODS.contains(&m.text.as_str()))
            {
                let what = match m.text.as_str() {
                    "unwrap" => "`.unwrap()`",
                    "expect" => "`.expect(..)`",
                    _ => "`.unwrap_unchecked()`",
                };
                out.push(Site {
                    line: t.line,
                    what,
                    indexing: false,
                });
                continue;
            }
        }
        // `panic!(` and friends
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|b| b.is_punct('!'))
        {
            let what = match t.text.as_str() {
                "panic" => "`panic!`",
                "unreachable" => "`unreachable!`",
                "todo" => "`todo!`",
                _ => "`unimplemented!`",
            };
            out.push(Site {
                line: t.line,
                what,
                indexing: false,
            });
            continue;
        }
        // `expr[idx]` index expressions: `[` after an identifier (not a
        // keyword), `)` or `]`. Attribute/`vec![`/array-literal/slice
        // -pattern brackets follow `#`, `!`, `=`, `(`, `,`, keywords …
        // and are not counted.
        if t.is_punct('[') && i > 0 {
            let indexes = toks.get(i - 1).is_some_and(|p| match p.kind {
                TokKind::Ident => !lexer::is_keyword(&p.text),
                TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
                _ => false,
            });
            if indexes {
                out.push(Site {
                    line: t.line,
                    what: "`[idx]` indexing",
                    indexing: true,
                });
            }
        }
    }
    out
}

/// Counts the panic-surface sites of one file (allow-directive and
/// test-code exempt sites excluded).
pub fn count_file(file: &SourceFile) -> usize {
    scan_sites(file.toks())
        .iter()
        .filter(|s| !file.in_test_code(s.line) && !file.allowed("SA003", s.line))
        .count()
}

/// Per-file counts over the whole workspace, sorted by path.
pub fn counts(ws: &Workspace) -> Vec<(String, usize)> {
    ws.files
        .iter()
        .filter(|f| eligible(f))
        .map(|f| (f.path.clone(), count_file(f)))
        .collect()
}

/// Renders a fresh ratchet file from the current workspace state.
pub fn render_ratchet(ws: &Workspace) -> String {
    Ratchet::render(RATCHET_HEADER, &counts(ws))
}

impl Pass for PanicSurfacePass {
    fn name(&self) -> &'static str {
        "panic-surface"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA003"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        let ws = cx.ws;
        // Record which SA003 allow directives actually fire, for SA013.
        for file in ws.files.iter().filter(|f| eligible(f)) {
            for site in scan_sites(file.toks()) {
                if file.in_test_code(site.line) {
                    continue;
                }
                if let Some(directive) = file.allow_match("SA003", site.line) {
                    out.mark_allow_used(file, directive);
                }
            }
        }
        let Some(text) = ws.ratchet(RATCHET_FILE) else {
            out.emit_path(
                RATCHET_FILE,
                "SA003",
                0,
                "panic-surface ratchet file is missing; regenerate with \
                 `hyde-sa --update-ratchets` and commit it"
                    .into(),
            );
            return;
        };
        let (ratchet, issues) = Ratchet::parse(text);
        for issue in issues {
            out.emit_path(RATCHET_FILE, "SA003", 0, issue);
        }
        let observed = counts(ws);
        for (path, count) in &observed {
            let cap = ratchet.cap(path);
            if *count > cap {
                out.emit_path(
                    path,
                    "SA003",
                    0,
                    format!(
                        "{count} panic-surface sites (ratchet caps it at {cap}); return \
                         typed errors, add `sa:allow(SA003): reason` for truly unreachable \
                         sites, or justify the ratchet bump in the PR"
                    ),
                );
            } else if *count < cap {
                out.note(format!(
                    "SA003: {path} is down to {count} panic-surface sites (ratchet says \
                     {cap}); consider ratcheting {RATCHET_FILE} down"
                ));
            }
        }
        // Stale ratchet entries keep the file honest.
        for (path, _) in &ratchet.entries {
            if !observed.iter().any(|(p, _)| p == path) {
                out.emit_path(
                    RATCHET_FILE,
                    "SA003",
                    0,
                    format!("stale ratchet entry for missing file {path}"),
                );
            }
        }
    }
}
