//! SA008 — feature hygiene: the `obs-rt` and `strict-checks` forwarding
//! chains stay `default-features = false`-correct.
//!
//! The compile-out guarantee ("build with `--no-default-features` and
//! the instrumentation is literally absent") only holds when every link
//! of the chain is right, in both directions:
//!
//! * a crate exposing `obs-rt` must depend on its instrumented internal
//!   deps with effective `default-features = false` (otherwise the dep's
//!   own `default = ["obs-rt"]` re-enables what the feature was supposed
//!   to gate), **and** must forward `dep/obs-rt` (`hyde-obs/rt`) from
//!   its own `obs-rt` feature (otherwise enabling the feature leaves the
//!   dependency dark);
//! * a crate exposing `strict-checks` must forward `dep/strict-checks`
//!   to every internal dep that has the feature;
//! * a crate exposing `obs-rt` must keep it in `default` — on-by-default
//!   everywhere is the documented workspace policy.

use crate::manifest::{Dep, Manifest};
use crate::registry::{Cx, Emitter, Pass};
use crate::workspace::Workspace;

/// The feature-hygiene pass (SA008).
pub struct FeatureHygienePass;

/// The name a crate gives its runtime-tracing feature.
fn rt_feature_of(package: &str) -> &'static str {
    if package == "hyde-obs" {
        "rt"
    } else {
        "obs-rt"
    }
}

/// The workspace-root manifest (the one carrying
/// `[workspace.dependencies]`).
fn root_manifest(ws: &Workspace) -> Option<&Manifest> {
    ws.manifests
        .iter()
        .find(|m| !m.workspace_deps.is_empty())
        .or_else(|| ws.manifests.iter().find(|m| m.path == "Cargo.toml"))
}

/// Resolves the effective `default-features` of a use site, falling
/// back through `workspace = true` inheritance. Cargo defaults to
/// `true`.
fn effective_default_features(ws: &Workspace, dep: &Dep) -> bool {
    if let Some(df) = dep.default_features {
        return df;
    }
    if dep.workspace {
        if let Some(root) = root_manifest(ws) {
            if let Some(spec) = root.workspace_deps.iter().find(|d| d.name == dep.name) {
                return spec.default_features.unwrap_or(true);
            }
        }
    }
    true
}

/// Checks one forwarding chain (`obs-rt` or `strict-checks`) of one
/// manifest.
fn check_chain(ws: &Workspace, m: &Manifest, feature: &str, out: &mut Emitter) {
    let Some(forwards) = m.feature(feature) else {
        return;
    };
    for dep in m.deps.iter().filter(|d| !d.dev) {
        // Only internal crates participate in the chains.
        let Some(dep_manifest) = ws.manifest_for(&dep.name) else {
            continue;
        };
        let dep_feature = if feature == "obs-rt" {
            rt_feature_of(&dep.name)
        } else {
            feature
        };
        if dep_manifest.feature(dep_feature).is_none() {
            continue;
        }
        let spec = format!("{}/{}", dep.name, dep_feature);
        if !forwards.iter().any(|f| f == &spec) {
            out.emit_path(
                &m.path,
                "SA008",
                0,
                format!(
                    "feature `{feature}` does not forward `{spec}`; enabling `{feature}` \
                     on `{}` leaves `{}` un-instrumented",
                    m.package, dep.name
                ),
            );
        }
        // Forwarding only gates anything if the dep's defaults are off.
        if feature == "obs-rt" && effective_default_features(ws, dep) {
            out.emit_path(
                &m.path,
                "SA008",
                0,
                format!(
                    "dependency `{}` is taken with default features on, so its \
                     `{dep_feature}` cannot be compiled out; add `default-features = false` \
                     at the use site (or in `[workspace.dependencies]`)",
                    dep.name
                ),
            );
        }
    }
}

impl Pass for FeatureHygienePass {
    fn name(&self) -> &'static str {
        "feature-hygiene"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA008"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        let ws = cx.ws;
        for m in &ws.manifests {
            if m.package.is_empty() {
                continue;
            }
            check_chain(ws, m, "obs-rt", out);
            check_chain(ws, m, "strict-checks", out);
            // Workspace policy: tracing hooks are on by default.
            if m.feature("obs-rt").is_some() {
                let in_default = m
                    .feature("default")
                    .is_some_and(|d| d.iter().any(|f| f == "obs-rt"));
                if !in_default {
                    out.emit_path(
                        &m.path,
                        "SA008",
                        0,
                        format!(
                            "`{}` exposes `obs-rt` but does not include it in `default`; \
                             the workspace policy is tracing-on-by-default",
                            m.package
                        ),
                    );
                }
            }
        }
    }
}
