//! SA001/SA002 — determinism: the byte-identical-output guarantee of
//! `tests/parallel_determinism.rs`, checked at the source level.
//!
//! * **SA001** denies order-sensitive iteration of `HashMap`/`HashSet`
//!   in result-affecting crates. Identifiers are tracked from their
//!   declarations (`let m: HashMap<..>`, `let m = HashMap::new()`,
//!   struct fields, fn params); iteration through `.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, bare `for _ in &m`, etc. is flagged
//!   unless the statement terminates in an order-insensitive sink
//!   (`count`/`sum`/`min`/`max`/`all`/`any`) or collects back into an
//!   unordered/ordered set type. Merge-safe sites carry an
//!   `sa:allow(SA001)` directive.
//! * **SA002** denies wall-clock, thread-identity and environment reads
//!   (`Instant::now`, `SystemTime::*`, `thread::current`, `env::var`,
//!   `ThreadId`, `available_parallelism`) in the same crates; the
//!   sanctioned sites (deadline budgets, `HYDE_THREADS` chunking) carry
//!   directives explaining why they cannot leak into results.

use crate::config;
use crate::lexer::{Tok, TokKind};
use crate::registry::{Cx, Emitter, Pass};
use crate::source::{FileKind, SourceFile};

/// The determinism pass (SA001 + SA002).
pub struct DeterminismPass;

const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];
const ORDERED_COLLECTS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];

fn eligible(f: &SourceFile) -> bool {
    config::RESULT_AFFECTING.contains(&f.crate_name.as_str())
        && matches!(f.kind, FileKind::Lib | FileKind::Bin)
}

/// Identifiers declared with an unordered collection type in this file.
fn tracked_idents(toks: &[Tok]) -> Vec<String> {
    let mut tracked = Vec::new();
    let mut track = |name: &str| {
        if !tracked.iter().any(|t| t == name) {
            tracked.push(name.to_owned());
        }
    };
    for (i, t) in toks.iter().enumerate() {
        // `name: ... HashMap/HashSet ...` (field, param or typed let).
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            for j in i + 2..(i + 12).min(toks.len()) {
                let Some(tj) = toks.get(j) else { break };
                if tj.is_punct(';')
                    || tj.is_punct('=')
                    || tj.is_punct('{')
                    || tj.is_punct(',')
                    || tj.is_punct(')')
                {
                    break;
                }
                if tj.kind == TokKind::Ident && UNORDERED_TYPES.contains(&tj.text.as_str()) {
                    track(&t.text);
                    break;
                }
            }
        }
        // `let [mut] name = ... HashMap::new() ... ;`
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|n| n.is_punct('=')) {
                continue;
            }
            for k in j + 2..(j + 24).min(toks.len()) {
                let Some(tk) = toks.get(k) else { break };
                if tk.is_punct(';') {
                    break;
                }
                if tk.kind == TokKind::Ident
                    && UNORDERED_TYPES.contains(&tk.text.as_str())
                    && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                {
                    track(&name.text);
                    break;
                }
            }
        }
    }
    tracked
}

/// True when the statement starting at the flagged call reduces through
/// an order-insensitive sink before its end.
fn order_safe_statement(toks: &[Tok], from: usize) -> bool {
    let mut i = from;
    let mut paren = 0usize;
    let mut steps = 0;
    while let Some(t) = toks.get(i) {
        steps += 1;
        if steps > 120 {
            break;
        }
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            if paren == 0 {
                break;
            }
            paren -= 1;
        } else if paren == 0 && (t.is_punct(';') || t.is_punct('{')) {
            break;
        } else if t.is_punct('.') {
            if let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) {
                if config::ORDER_SAFE_SINKS.contains(&m.text.as_str()) {
                    return true;
                }
                if m.text == "collect" {
                    // `.collect::<HashSet<_>>()` and friends stay
                    // unordered end-to-end.
                    for k in i + 2..(i + 8).min(toks.len()) {
                        if toks.get(k).is_some_and(|t| {
                            t.kind == TokKind::Ident && ORDERED_COLLECTS.contains(&t.text.as_str())
                        }) {
                            return true;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    false
}

fn check_sa001(file: &SourceFile, out: &mut Emitter) {
    let toks = file.toks();
    let tracked = tracked_idents(toks);
    if tracked.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !tracked.iter().any(|n| n == &t.text) {
            continue;
        }
        if file.in_test_code(t.line) {
            continue;
        }
        // `name.iter()` / `name.keys()` / ...
        if toks.get(i + 1).is_some_and(|d| d.is_punct('.')) {
            let Some(m) = toks.get(i + 2).filter(|m| m.kind == TokKind::Ident) else {
                continue;
            };
            if config::ORDER_SENSITIVE_METHODS.contains(&m.text.as_str())
                && toks.get(i + 3).is_some_and(|p| p.is_punct('('))
                && !order_safe_statement(toks, i + 3)
            {
                out.emit(
                    file,
                    "SA001",
                    t.line,
                    format!(
                        "order-sensitive iteration `{}.{}()` of an unordered collection; \
                         iterate a sorted view, reduce through an order-insensitive sink, \
                         or justify with `sa:allow(SA001)`",
                        t.text, m.text
                    ),
                );
            }
        }
    }
    // `for x in &name { .. }` — bare iteration without a method call.
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("for") || file.in_test_code(t.line) {
            continue;
        }
        let Some(in_pos) = (i + 1..(i + 24).min(toks.len()))
            .find(|&j| toks.get(j).is_some_and(|t| t.is_ident("in")))
        else {
            continue;
        };
        for j in in_pos + 1..(in_pos + 16).min(toks.len()) {
            let Some(tj) = toks.get(j) else { break };
            if tj.is_punct('{') {
                break;
            }
            if tj.kind == TokKind::Ident
                && tracked.iter().any(|n| n == &tj.text)
                && !toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
            {
                out.emit(
                    file,
                    "SA001",
                    tj.line,
                    format!(
                        "order-sensitive `for` iteration over unordered collection `{}`",
                        tj.text
                    ),
                );
                break;
            }
        }
    }
}

const CLOCK_PAIRS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("SystemTime", "UNIX_EPOCH"),
    ("thread", "current"),
    ("thread", "available_parallelism"),
    ("env", "var"),
    ("env", "var_os"),
    ("env", "vars"),
];

fn check_sa002(file: &SourceFile, out: &mut Emitter) {
    let toks = file.toks();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        if t.text == "ThreadId" {
            out.emit(
                file,
                "SA002",
                t.line,
                "thread identity is a nondeterminism source in a result-affecting crate".into(),
            );
            continue;
        }
        let is_path = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'));
        if !is_path {
            continue;
        }
        let Some(seg) = toks.get(i + 3).filter(|s| s.kind == TokKind::Ident) else {
            continue;
        };
        if CLOCK_PAIRS
            .iter()
            .any(|(a, b)| t.text == *a && seg.text == *b)
        {
            out.emit(
                file,
                "SA002",
                t.line,
                format!(
                    "`{}::{}` is a wall-clock/thread/environment read inside a \
                     result-affecting crate; thread a `guard::Budget` or justify with \
                     `sa:allow(SA002)`",
                    t.text, seg.text
                ),
            );
        }
    }
}

impl Pass for DeterminismPass {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA001", "SA002"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        for file in cx.ws.files.iter().filter(|f| eligible(f)) {
            check_sa001(file, out);
            check_sa002(file, out);
        }
    }
}
