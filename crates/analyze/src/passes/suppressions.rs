//! SA013 — unused suppressions: an `sa:allow` that suppresses nothing
//! is debt pretending to be documentation.
//!
//! Runs in the registry's *post* phase, after every pass has recorded
//! which directives actually fired. A directive that suppressed zero
//! findings gets a **warning**-severity finding (it does not fail the
//! run — a directive can legitimately go stale the moment the code it
//! covered improves; the warning is the prompt to delete it). Unknown
//! `SAxxx` codes in directives are warned about too.
//!
//! Emission is two-phase so the pass can police itself: directives for
//! other codes are checked first (their warnings may be suppressed by
//! an `sa:allow(SA013)`), then SA013-directives that still suppressed
//! nothing — including in phase one — are warned about.

use std::collections::BTreeSet;

use crate::registry::{Cx, Emitter, Pass, UsedAllow};
use crate::source::Allow;

/// The unused-suppression pass (SA013).
pub struct SuppressionsPass {
    /// Every code a registered pass can emit (SA013 included).
    pub known_codes: Vec<&'static str>,
}

fn stale_message(a: &Allow) -> String {
    format!(
        "`sa:allow({})` suppresses zero findings; delete the directive (if the code \
         it covered has improved, also ratchet down with `hyde-sa --update-ratchets`)",
        a.code
    )
}

impl Pass for SuppressionsPass {
    fn name(&self) -> &'static str {
        "suppressions"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA013"]
    }

    fn check(&self, _cx: &Cx, _out: &mut Emitter) {
        // All work happens in `post`, once suppression usage is known.
    }

    fn post(&self, cx: &Cx, used: &BTreeSet<UsedAllow>, out: &mut Emitter) {
        // Phase one: unknown codes and stale non-SA013 directives.
        for file in &cx.ws.files {
            for a in &file.allows {
                if !self.known_codes.contains(&a.code.as_str()) {
                    out.warn(
                        file,
                        "SA013",
                        a.line,
                        format!(
                            "`sa:allow({})` names a code no registered pass can emit",
                            a.code
                        ),
                    );
                    continue;
                }
                if a.code != "SA013" && !used.contains(&(file.path.clone(), a.line)) {
                    out.warn(file, "SA013", a.line, stale_message(a));
                }
            }
        }
        // Phase two: SA013-directives that did not fire in phase one
        // (or anywhere else) are themselves stale.
        for file in &cx.ws.files {
            for a in &file.allows {
                if a.code == "SA013"
                    && !used.contains(&(file.path.clone(), a.line))
                    && !out.was_allow_used(file, a.line)
                {
                    out.warn(file, "SA013", a.line, stale_message(a));
                }
            }
        }
    }
}
