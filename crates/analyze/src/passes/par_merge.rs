//! SA011 — parallel-merge determinism: closures handed to
//! `hyde_core::parallel::map_chunked` / `map_chunked_init` /
//! `map_stealing_init` must not smuggle order dependence past the
//! deterministic input-order merge.
//!
//! The schedulers guarantee byte-identical results across
//! `HYDE_THREADS` *only* when the worker closure is a pure function of
//! its item: block boundaries and steal order move with the thread
//! count and with runtime timing, so anything
//! the closure observes across items is observed in a thread-dependent
//! order. Three violation families are checked inside each worker
//! closure (production code only):
//!
//! * **captured shared mutable state** — `Mutex`/`RwLock`/`RefCell`/
//!   `Cell`/`UnsafeCell`/`Atomic*` mentions, `.lock()`/`.borrow_mut()`/
//!   `.fetch_*()`/`.store()` calls, and assignments or mutating method
//!   calls (`push`/`insert`/`extend`/…) whose root identifier is not
//!   declared inside the closure (param, `let`, `for`, match arm);
//! * **unordered-collection construction** — building a `HashMap`/
//!   `HashSet` inside the worker puts iteration-order nondeterminism
//!   directly in merge position;
//! * **order-sensitive float accumulation** — `+=` onto a captured
//!   identifier with float evidence in the statement, or
//!   `.sum::<f32/f64>()`: float addition is non-associative, so the
//!   result depends on chunking. (Per-item locals are fine — the merge
//!   is input-ordered.)

use crate::ast::{self, Expr};
use crate::lexer::{Tok, TokKind};
use crate::registry::{Cx, Emitter, Pass};
use crate::source::{FileKind, SourceFile};

/// The parallel-merge determinism pass (SA011).
pub struct ParMergePass;

const ENTRY_FNS: &[&str] = &["map_chunked", "map_chunked_init", "map_stealing_init"];
const SHARED_TYPES: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "AtomicUsize",
    "AtomicU64",
    "AtomicU32",
    "AtomicBool",
    "AtomicIsize",
    "AtomicI64",
];
const SHARED_METHODS: &[&str] = &["lock", "borrow_mut", "store", "swap", "compare_exchange"];
const MUTATING_METHODS: &[&str] = &[
    "push",
    "insert",
    "extend",
    "append",
    "push_str",
    "remove",
    "clear",
    "sort",
    "sort_unstable",
    "truncate",
];
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet"];

fn production(f: &SourceFile) -> bool {
    matches!(f.kind, FileKind::Lib | FileKind::Bin)
}

/// Identifiers declared *inside* the closure: its params (nested
/// closures included), `let` bindings, `for` bindings, and a
/// backwards-from-`=>` heuristic for match-arm bindings.
fn declared_idents(closure: &Expr, toks: &[Tok]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut add = |s: &str| {
        if !out.iter().any(|o| o == s) {
            out.push(s.to_owned());
        }
    };
    // Params of this closure and every nested one.
    ast::visit(std::slice::from_ref(closure), &mut |e| {
        if let Expr::Closure { params, .. } = e {
            for p in params {
                add(p);
            }
        }
    });
    let Expr::Closure { span, .. } = closure else {
        return out;
    };
    let window = toks.get(span.0..=span.1).unwrap_or_default();
    for (i, t) in window.iter().enumerate() {
        // `let [mut] pat... =` — every ident in the pattern counts.
        if t.is_ident("let") {
            for j in i + 1..(i + 12).min(window.len()) {
                let Some(tj) = window.get(j) else { break };
                if tj.is_punct('=') || tj.is_punct(';') || tj.is_punct(':') {
                    break;
                }
                if tj.kind == TokKind::Ident && !crate::lexer::is_keyword(&tj.text) {
                    add(&tj.text);
                }
            }
        }
        // `for pat in ...`
        if t.is_ident("for") {
            for j in i + 1..(i + 8).min(window.len()) {
                let Some(tj) = window.get(j) else { break };
                if tj.is_ident("in") {
                    break;
                }
                if tj.kind == TokKind::Ident && !crate::lexer::is_keyword(&tj.text) {
                    add(&tj.text);
                }
            }
        }
        // `Pat(binding) =>` — look a few tokens back from each arrow.
        if t.is_punct('=') && window.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            let lo = i.saturating_sub(6);
            for tj in window.get(lo..i).unwrap_or_default() {
                if tj.kind == TokKind::Ident && !crate::lexer::is_keyword(&tj.text) {
                    add(&tj.text);
                }
            }
        }
    }
    out
}

/// The root identifier of the dot-chain ending at the method call whose
/// `.` is at `dot` (walks `a.b.c.method(` back to `a`).
fn chain_root(window: &[Tok], dot: usize) -> Option<&Tok> {
    let mut i = dot;
    loop {
        let prev = window.get(i.checked_sub(1)?)?;
        if prev.kind != TokKind::Ident {
            return None;
        }
        match i.checked_sub(2).and_then(|j| window.get(j)) {
            Some(p) if p.is_punct('.') => i -= 2,
            _ => return Some(prev),
        }
    }
}

/// True when the statement around `at` carries float evidence.
fn float_statement(window: &[Tok], at: usize) -> bool {
    let lo = window[..at]
        .iter()
        .rposition(|t| t.is_punct(';') || t.is_punct('{'))
        .map_or(0, |p| p + 1);
    let hi = window[at..]
        .iter()
        .position(|t| t.is_punct(';') || t.is_punct('}'))
        .map_or(window.len(), |p| at + p);
    window
        .get(lo..hi)
        .unwrap_or_default()
        .iter()
        .any(|t| match t.kind {
            TokKind::Ident => t.text == "f32" || t.text == "f64",
            TokKind::Num => t.text.contains('.'),
            _ => false,
        })
}

fn check_closure(file: &SourceFile, label: &str, closure: &Expr, out: &mut Emitter) {
    let Expr::Closure { span, .. } = closure else {
        return;
    };
    let toks = file.toks();
    let declared = declared_idents(closure, toks);
    let window = toks.get(span.0..=span.1).unwrap_or_default();
    let is_declared = |name: &str| declared.iter().any(|d| d == name);
    for (i, t) in window.iter().enumerate() {
        // Shared-state types anywhere in the closure.
        if t.kind == TokKind::Ident && SHARED_TYPES.contains(&t.text.as_str()) {
            out.emit(
                file,
                "SA011",
                t.line,
                format!(
                    "worker closure passed to `{label}` touches shared-state type \
                     `{}`; chunk boundaries move with HYDE_THREADS, so cross-item \
                     state breaks the byte-identical merge",
                    t.text
                ),
            );
            continue;
        }
        // Unordered collections in merge position.
        if t.kind == TokKind::Ident && UNORDERED_TYPES.contains(&t.text.as_str()) {
            out.emit(
                file,
                "SA011",
                t.line,
                format!(
                    "worker closure passed to `{label}` builds a `{}`; unordered \
                     iteration in merge position defeats the deterministic \
                     input-order merge — use a BTree collection or sort",
                    t.text
                ),
            );
            continue;
        }
        if t.is_punct('.') {
            let Some(m) = window.get(i + 1).filter(|m| m.kind == TokKind::Ident) else {
                continue;
            };
            let called = window.get(i + 2).is_some_and(|p| p.is_punct('('))
                || (window.get(i + 2).is_some_and(|p| p.is_punct(':'))
                    && window.get(i + 3).is_some_and(|p| p.is_punct(':')));
            if !called {
                continue;
            }
            // `.sum::<f32>()` — non-associative reduction.
            if m.text == "sum" && window.get(i + 2).is_some_and(|p| p.is_punct(':')) {
                let turbofish = window
                    .get(i + 2..(i + 8).min(window.len()))
                    .unwrap_or_default();
                if turbofish
                    .iter()
                    .any(|t| t.is_ident("f32") || t.is_ident("f64"))
                {
                    out.emit(
                        file,
                        "SA011",
                        m.line,
                        format!(
                            "worker closure passed to `{label}` reduces with \
                             `.sum::<float>()`; float addition is non-associative, so \
                             the result depends on chunking — sum in the ordered merge \
                             instead"
                        ),
                    );
                }
                continue;
            }
            // Shared-state method calls, on any receiver.
            if SHARED_METHODS.contains(&m.text.as_str()) || m.text.starts_with("fetch_") {
                out.emit(
                    file,
                    "SA011",
                    m.line,
                    format!(
                        "worker closure passed to `{label}` calls `.{}()`; shared \
                         mutable state inside a chunked worker is merged in thread \
                         order, not input order",
                        m.text
                    ),
                );
                continue;
            }
            // Mutating methods on captured (not closure-declared) roots.
            if MUTATING_METHODS.contains(&m.text.as_str())
                && window.get(i + 2).is_some_and(|p| p.is_punct('('))
            {
                if let Some(root) = chain_root(window, i) {
                    if !is_declared(&root.text) && root.text != "self" {
                        out.emit(
                            file,
                            "SA011",
                            m.line,
                            format!(
                                "worker closure passed to `{label}` mutates captured \
                                 `{}` via `.{}()`; return the value and let the \
                                 deterministic merge combine it",
                                root.text, m.text
                            ),
                        );
                    }
                }
                continue;
            }
        }
        // `captured += ...` / `captured = ...` — direct assignment to a
        // captured identifier (compound ops lex as op + '=').
        if t.kind == TokKind::Ident
            && !crate::lexer::is_keyword(&t.text)
            && !is_declared(&t.text)
            && t.text != "self"
        {
            let prev_ok = i == 0
                || window.get(i - 1).is_some_and(|p| {
                    !p.is_punct('=')
                        && !p.is_punct('<')
                        && !p.is_punct('>')
                        && !p.is_punct('!')
                        && !p.is_punct('.')
                        && !p.is_punct(':')
                        && !p.is_ident("let")
                        && !p.is_ident("mut")
                });
            let (op, eq) = (window.get(i + 1), window.get(i + 2));
            // `x += e` (compound ops lex as op + '='), with `x ==`,
            // `x =>`, `x <= / >=` and `let x =` excluded.
            let compound = prev_ok
                && op.is_some_and(|o| {
                    o.is_punct('+') || o.is_punct('-') || o.is_punct('*') || o.is_punct('/')
                })
                && eq.is_some_and(|e| e.is_punct('='))
                && !window.get(i + 3).is_some_and(|n| n.is_punct('='))
                && !window.get(i + 3).is_some_and(|n| n.is_punct('>'));
            let plain = prev_ok
                && op.is_some_and(|o| o.is_punct('='))
                && !eq.is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
            if compound || plain {
                let flavor = if float_statement(window, i) {
                    "order-sensitive float accumulation onto captured"
                } else {
                    "assignment to captured"
                };
                out.emit(
                    file,
                    "SA011",
                    t.line,
                    format!(
                        "worker closure passed to `{label}` performs {flavor} `{}`; \
                         workers must be pure functions of their item — accumulate in \
                         the ordered merge instead",
                        t.text
                    ),
                );
            }
        }
    }
}

impl Pass for ParMergePass {
    fn name(&self) -> &'static str {
        "par-merge"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA011"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        for file in cx.ws.files.iter().filter(|f| production(f)) {
            ast::visit_fns(&file.ast.items, &mut |_, decl| {
                if file.in_test_code(decl.line) {
                    return;
                }
                let Some(body) = &decl.body else { return };
                ast::visit(&body.exprs, &mut |e| {
                    let (name, args) = match e {
                        Expr::Call { path, args, .. } => {
                            (path.last().map(String::as_str).unwrap_or(""), args)
                        }
                        Expr::Method { name, args, .. } => (name.as_str(), args),
                        _ => return,
                    };
                    if !ENTRY_FNS.contains(&name) {
                        return;
                    }
                    for arg in args {
                        for expr in arg {
                            if matches!(expr, Expr::Closure { .. }) {
                                check_closure(file, name, expr, out);
                            }
                        }
                    }
                });
            });
        }
    }
}
