//! SA012 — swallowed errors: a `Result` silently discarded in a
//! result-affecting crate is a diagnosis hole.
//!
//! Two shapes are flagged in production code of the result-affecting
//! crates:
//!
//! * `let _ = fallible(..);` — the value (and any `Err`) vanishes;
//! * a statement ending in `.ok();` whose value is not bound or
//!   returned — `.ok()` as an expression feeding `?`/`unwrap_or`/a
//!   binding is fine, `.ok();` as a statement is a swallow.
//!
//! The fix is to propagate (`?`), handle the error, or justify the
//! discard with `sa:allow(SA012)` (e.g. `fmt::Write` into a `String`,
//! which is infallible by construction).

use crate::config;
use crate::registry::{Cx, Emitter, Pass};
use crate::source::{FileKind, SourceFile};

/// The swallowed-errors pass (SA012).
pub struct SwallowPass;

fn eligible(f: &SourceFile) -> bool {
    config::RESULT_AFFECTING.contains(&f.crate_name.as_str())
        && matches!(f.kind, FileKind::Lib | FileKind::Bin)
}

fn check_file(file: &SourceFile, out: &mut Emitter) {
    let toks = file.toks();
    for (i, t) in toks.iter().enumerate() {
        if file.in_test_code(t.line) {
            continue;
        }
        // `let _ = <call>;`
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|u| u.is_ident("_"))
            && toks.get(i + 2).is_some_and(|e| e.is_punct('='))
            && !toks.get(i + 3).is_some_and(|e| e.is_punct('='))
        {
            // Only flag when a call is being discarded — `let _ = x;`
            // silences an unused-variable, not an error.
            let mut has_call = false;
            let mut depth = 0usize;
            for tj in toks.get(i + 3..).unwrap_or_default() {
                if tj.is_punct('(') || tj.is_punct('[') || tj.is_punct('{') {
                    depth += 1;
                    has_call = has_call || tj.is_punct('(');
                } else if tj.is_punct(')') || tj.is_punct(']') || tj.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && tj.is_punct(';') {
                    break;
                }
            }
            if has_call {
                out.emit(
                    file,
                    "SA012",
                    t.line,
                    "`let _ =` discards a call result in a result-affecting crate; \
                     propagate with `?`, handle the error, or justify with \
                     `sa:allow(SA012)`"
                        .into(),
                );
            }
            continue;
        }
        // `<expr>.ok();` as a statement.
        if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|m| m.is_ident("ok"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 3).is_some_and(|p| p.is_punct(')'))
            && toks.get(i + 4).is_some_and(|s| s.is_punct(';'))
        {
            // Walk back to the statement start; a binding or `return`
            // (or an `=` on the way) means the value is used.
            let mut used = false;
            let mut depth = 0usize;
            for tj in toks.get(..i).unwrap_or_default().iter().rev() {
                if tj.is_punct(')') || tj.is_punct(']') || tj.is_punct('}') {
                    depth += 1;
                } else if tj.is_punct('(') || tj.is_punct('[') || tj.is_punct('{') {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                } else if depth == 0 {
                    if tj.is_punct(';') {
                        break;
                    }
                    if tj.is_punct('=') || tj.is_ident("let") || tj.is_ident("return") {
                        used = true;
                        break;
                    }
                }
            }
            if !used {
                out.emit(
                    file,
                    "SA012",
                    t.line,
                    "statement-level `.ok();` swallows a `Result` in a result-affecting \
                     crate; propagate with `?`, handle the error, or justify with \
                     `sa:allow(SA012)`"
                        .into(),
                );
            }
        }
    }
}

impl Pass for SwallowPass {
    fn name(&self) -> &'static str {
        "swallow"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA012"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        for file in cx.ws.files.iter().filter(|f| eligible(f)) {
            check_file(file, out);
        }
    }
}
