//! The shipped passes, one module per concern.

pub mod budget;
pub mod budget_flow;
pub mod determinism;
pub mod diag;
pub mod features;
pub mod obs;
pub mod panic_reach;
pub mod panic_surface;
pub mod par_merge;
pub mod suppressions;
pub mod swallow;
