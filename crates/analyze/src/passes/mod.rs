//! The shipped passes, one module per concern.

pub mod budget;
pub mod determinism;
pub mod diag;
pub mod features;
pub mod obs;
pub mod panic_surface;
