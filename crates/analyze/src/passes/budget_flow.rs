//! SA010 — interprocedural budget flow: the call-graph successor of
//! SA004's textual heuristic.
//!
//! Entry points are production fns whose *signature* mentions `Budget`:
//! they accepted admission control and everything beneath them is
//! expected to stay bounded. For every fn reachable from such an entry
//! (in the budgeted crates) that constructs BDD nodes or invokes the
//! SAT solver, the budget must visibly flow through its own
//! signature-or-body window (`Budget`, `node_cap`, `guarded`, … — see
//! `config::BUDGET_EVIDENCE`). A reached constructor with no budget
//! evidence is a hole in the degradation ladder: work admitted under a
//! budget fans out into calls the budget cannot stop. Findings print
//! the call path from the entry point down to the offending fn.

use crate::passes::budget::{constructs_bounded_work, has_budget_evidence};
use crate::registry::{Cx, Emitter, Pass};
use crate::source::FileKind;
use crate::{config, resolve::FnNode, workspace::Workspace};

/// The budget-flow pass (SA010).
pub struct BudgetFlowPass;

fn budgeted_lib(ws: &Workspace, node: &FnNode) -> bool {
    let file = &ws.files[node.file];
    config::BUDGETED.contains(&file.crate_name.as_str())
        && file.kind == FileKind::Lib
        && !node.in_test
}

/// The fn's signature-plus-body token window.
fn fn_window<'a>(ws: &'a Workspace, node: &FnNode) -> &'a [crate::lexer::Tok] {
    let toks = ws.files[node.file].toks();
    let end = node.body.as_ref().map_or(node.sig.1, |b| b.span.1);
    toks.get(node.sig.0..=end).unwrap_or_default()
}

impl Pass for BudgetFlowPass {
    fn name(&self) -> &'static str {
        "budget-flow"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA010"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        let ws = cx.ws;
        let entries: Vec<usize> = cx
            .graph
            .syms
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.in_test
                    && ws.files[f.file].kind == FileKind::Lib
                    && f.sig_idents.iter().any(|s| s == "Budget")
            })
            .map(|(i, _)| i)
            .collect();
        if entries.is_empty() {
            return;
        }
        let fwd = cx.graph.forward_reach(&entries);
        for (idx, node) in cx.graph.syms.fns.iter().enumerate() {
            if !fwd.reached[idx] || !budgeted_lib(ws, node) {
                continue;
            }
            let Some(body) = &node.body else { continue };
            let file = &ws.files[node.file];
            let toks = file.toks();
            let body_toks = toks.get(body.span.0..=body.span.1).unwrap_or_default();
            if !constructs_bounded_work(body_toks) {
                continue;
            }
            if has_budget_evidence(fn_window(ws, node)) {
                continue;
            }
            let path = cx.graph.entry_path(ws, &fwd, idx);
            out.emit_with_path(
                file,
                "SA010",
                node.line,
                format!(
                    "fn `{}` is reachable from a `Budget`-accepting entry point and \
                     constructs BDD/SAT work, but no budget flows through it; thread the \
                     `guard::Budget` (or a node cap) down the path below",
                    node.name
                ),
                path,
            );
        }
    }
}
