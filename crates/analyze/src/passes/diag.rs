//! SA007 — diagnostic-registry consistency: the `HY`/`SA` code spaces
//! stay closed, documented and exercised.
//!
//! The `HYxxx` codes are canonically declared in the `Code::as_str`
//! match of `crates/logic/src/diag.rs`. This pass checks that
//!
//! * every declared code's exact string literal appears exactly once in
//!   production code (the declaration itself) — a second bare literal
//!   means someone bypassed the `Code` enum;
//! * every declared code appears in `DESIGN.md`'s diagnostic tables;
//! * every declared code is exercised by at least one test (by variant
//!   name or by code string inside test code);
//! * every `HYxxx` mentioned in `DESIGN.md` is actually declared (no
//!   stale doc rows);
//! * every `SAxxx` code shipped by this analyzer is documented in
//!   `DESIGN.md` and exercised by a test.

use crate::config;
use crate::lexer::TokKind;
use crate::registry::{Cx, Emitter, Pass, Registry};
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;

/// The diag-registry consistency pass (SA007).
pub struct DiagRegistryPass;

/// Parses `Code::Variant => "HYxxx"` arms out of the declaration file.
fn declared_codes(file: &SourceFile) -> Vec<(String, String)> {
    let toks = file.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("Code")
            || !toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            || !toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
        {
            continue;
        }
        let Some(variant) = toks.get(i + 3).filter(|v| v.kind == TokKind::Ident) else {
            continue;
        };
        if !toks.get(i + 4).is_some_and(|e| e.is_punct('='))
            || !toks.get(i + 5).is_some_and(|g| g.is_punct('>'))
        {
            continue;
        }
        let Some(code) = toks
            .get(i + 6)
            .filter(|c| c.kind == TokKind::Str && is_hy_code(&c.text))
        else {
            continue;
        };
        out.push((variant.text.clone(), code.text.clone()));
    }
    out
}

fn is_hy_code(s: &str) -> bool {
    // sa:allow(SA003): the slice is guarded by the length check before it
    s.len() == 5 && s.starts_with("HY") && s[2..].bytes().all(|b| b.is_ascii_digit())
}

/// Every `HYxxx` substring mentioned in free text (DESIGN.md).
fn codes_in_text(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out: Vec<String> = Vec::new();
    let mut i = 0;
    while i + 5 <= bytes.len() {
        // sa:allow(SA003): both ranges are guarded by the loop condition
        if &bytes[i..i + 2] == b"HY" && bytes[i + 2..i + 5].iter().all(u8::is_ascii_digit) {
            // Reject longer runs like HY1234.
            if bytes.get(i + 5).is_none_or(|b| !b.is_ascii_digit()) {
                // sa:allow(SA003): in-bounds and ASCII per the match above
                let code = &text[i..i + 5];
                if !out.iter().any(|c| c == code) {
                    out.push(code.to_owned());
                }
            }
            i += 5;
        } else {
            i += 1;
        }
    }
    out
}

/// True when `code` (exact string) or `variant` (identifier) appears in
/// any test code in the workspace.
fn exercised_by_test(ws: &Workspace, variant: &str, code: &str) -> bool {
    ws.files.iter().any(|f| {
        f.toks().iter().any(|t| {
            f.in_test_code(t.line)
                && ((t.kind == TokKind::Str && t.text == code)
                    || (t.kind == TokKind::Ident && t.text == variant))
        })
    })
}

/// Production occurrences of `code` as an exact string literal.
fn production_literal_count(ws: &Workspace, code: &str) -> usize {
    ws.files
        .iter()
        .filter(|f| matches!(f.kind, FileKind::Lib | FileKind::Bin))
        .flat_map(|f| {
            f.toks()
                .iter()
                .filter(|t| t.kind == TokKind::Str && t.text == code && !f.in_test_code(t.line))
                .map(move |_| ())
        })
        .count()
}

impl Pass for DiagRegistryPass {
    fn name(&self) -> &'static str {
        "diag-registry"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA007"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        let ws = cx.ws;
        let Some(decl_file) = ws.files.iter().find(|f| f.path == config::DIAG_DECL_FILE) else {
            out.emit_path(
                config::DIAG_DECL_FILE,
                "SA007",
                0,
                "diagnostic declaration file is missing from the workspace".into(),
            );
            return;
        };
        let declared = declared_codes(decl_file);
        if declared.is_empty() {
            out.emit_path(
                config::DIAG_DECL_FILE,
                "SA007",
                0,
                "no `Code::Variant => \"HYxxx\"` declarations found".into(),
            );
            return;
        }
        for (variant, code) in &declared {
            // Declared exactly once: the as_str arm is the only bare
            // literal in production code.
            let n = production_literal_count(ws, code);
            if n != 1 {
                out.emit_path(
                    config::DIAG_DECL_FILE,
                    "SA007",
                    0,
                    format!(
                        "code {code} appears {n} times as a bare string literal in \
                         production code (expected exactly once, in `Code::as_str`); \
                         route extra uses through `Code::{variant}`"
                    ),
                );
            }
            if let Some(design) = &ws.design {
                if !design.contains(code) {
                    out.emit_path(
                        "DESIGN.md",
                        "SA007",
                        0,
                        format!("declared code {code} ({variant}) is undocumented"),
                    );
                }
            }
            if !exercised_by_test(ws, variant, code) {
                out.emit_path(
                    config::DIAG_DECL_FILE,
                    "SA007",
                    0,
                    format!("code {code} (Code::{variant}) is not exercised by any test"),
                );
            }
        }
        // Stale doc rows: DESIGN.md mentions an HY code nobody declares.
        if let Some(design) = &ws.design {
            for code in codes_in_text(design) {
                if !declared.iter().any(|(_, c)| c == &code) {
                    out.emit_path(
                        "DESIGN.md",
                        "SA007",
                        0,
                        format!("DESIGN.md mentions undeclared code {code}"),
                    );
                }
            }
        }
        // The analyzer's own SA codes are held to the same standard.
        for code in Registry::with_defaults().all_codes() {
            if let Some(design) = &ws.design {
                if !design.contains(code) {
                    out.emit_path(
                        "DESIGN.md",
                        "SA007",
                        0,
                        format!("analyzer code {code} is undocumented in DESIGN.md"),
                    );
                }
            }
            let tested = ws.files.iter().any(|f| {
                f.toks().iter().any(|t| {
                    f.in_test_code(t.line) && t.kind == TokKind::Str && t.text.contains(code)
                })
            });
            if !tested {
                out.emit_path(
                    "crates/analyze",
                    "SA007",
                    0,
                    format!("analyzer code {code} is not exercised by any test"),
                );
            }
        }
    }
}
