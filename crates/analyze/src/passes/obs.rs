//! SA005/SA006 — observability coverage: the span/counter taxonomy of
//! `DESIGN.md` is a contract, not a suggestion.
//!
//! * **SA005** checks spans three ways: every `span!("...")` /
//!   `map_chunked*(.., "...")` name literal in production code must be
//!   in the documented taxonomy; every documented span must actually be
//!   opened somewhere in its owning crate; and each phase-level function
//!   on the roster (`config::PHASE_FNS`) must open its span in its own
//!   body. Histogram families get the same two-directional treatment:
//!   every `observe("...")` name literal must be in
//!   `config::HISTOGRAMS`, and every documented family must be recorded
//!   in its owning crate. Finally the taxonomy itself must appear in
//!   `DESIGN.md`.
//! * **SA006** does the same for counters: every `counter("...")` name
//!   (and every `guard.degrade.*` string literal in production code)
//!   must be documented, and every documented counter must appear in
//!   `DESIGN.md`.

use crate::config;
use crate::lexer::TokKind;
use crate::registry::{Cx, Emitter, Pass};
use crate::source::{FileKind, SourceFile};
use crate::workspace::Workspace;

/// The span-coverage pass (SA005).
pub struct ObsPass;

fn production(f: &SourceFile) -> bool {
    matches!(f.kind, FileKind::Lib | FileKind::Bin)
}

/// Collects `(line, name)` span-name literals in `file`: the string
/// argument of `span!(..)` and the span-label argument of
/// `map_chunked`/`map_chunked_init` calls.
fn span_literals(file: &SourceFile) -> Vec<(u32, String)> {
    let toks = file.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.in_test_code(t.line) {
            continue;
        }
        match t.text.as_str() {
            // `span!("name", ...)` — macro form.
            "span"
                if toks.get(i + 1).is_some_and(|b| b.is_punct('!'))
                    && toks.get(i + 2).is_some_and(|p| p.is_punct('(')) =>
            {
                if let Some(s) = toks.get(i + 3).filter(|s| s.kind == TokKind::Str) {
                    out.push((s.line, s.text.clone()));
                }
            }
            "map_chunked" | "map_chunked_init" => {
                // The span label is the first string literal among the
                // arguments.
                if !toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
                    continue;
                }
                for j in i + 2..(i + 16).min(toks.len()) {
                    match toks.get(j) {
                        Some(s) if s.kind == TokKind::Str => {
                            out.push((s.line, s.text.clone()));
                            break;
                        }
                        Some(p) if p.is_punct(')') || p.is_punct(';') => break,
                        Some(_) => continue,
                        None => break,
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Collects `(line, name)` counter-name literals: the string argument of
/// `counter("...")` calls plus any bare `guard.degrade.*` literal.
fn counter_literals(file: &SourceFile) -> Vec<(u32, String)> {
    let toks = file.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.in_test_code(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident && t.text == "counter" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|b| b.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|p| p.is_punct('(')) {
                if let Some(s) = toks.get(j + 1).filter(|s| s.kind == TokKind::Str) {
                    out.push((s.line, s.text.clone()));
                }
            }
        }
        // sa:allow(SA006): the detector's own pattern literal, not a counter
        if t.kind == TokKind::Str && t.text.starts_with("guard.degrade.") {
            out.push((t.line, t.text.clone()));
        }
    }
    out
}

/// Collects `(line, name)` histogram-family literals: the string
/// argument of `observe("...")` calls.
fn histogram_literals(file: &SourceFile) -> Vec<(u32, String)> {
    let toks = file.toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "observe" || file.in_test_code(t.line) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            if let Some(s) = toks.get(i + 2).filter(|s| s.kind == TokKind::Str) {
                out.push((s.line, s.text.clone()));
            }
        }
    }
    out
}

fn check_sa005(ws: &Workspace, out: &mut Emitter) {
    // 1. Every opened span is documented.
    for file in ws.files.iter().filter(|f| production(f)) {
        for (line, name) in span_literals(file) {
            if !config::SPANS.iter().any(|(n, _)| *n == name) {
                out.emit(
                    file,
                    "SA005",
                    line,
                    format!(
                        "span `{name}` is not in the documented taxonomy; add it to \
                         DESIGN.md's Observability table and `config::SPANS`"
                    ),
                );
            }
        }
    }
    // 2. Every documented span is opened in its owning crate.
    for (name, owner) in config::SPANS {
        let opened = ws
            .files
            .iter()
            .filter(|f| f.crate_name == *owner && production(f))
            .any(|f| span_literals(f).iter().any(|(_, n)| n == name));
        if !opened {
            out.emit_path(
                "DESIGN.md",
                "SA005",
                0,
                format!("documented span `{name}` is never opened in crate `{owner}`"),
            );
        }
    }
    // 3. Phase-level functions open their span in their own body.
    for (krate, file_name, fn_name, span) in config::PHASE_FNS {
        let Some(file) = ws.files.iter().find(|f| {
            f.crate_name == *krate
                && f.kind == FileKind::Lib
                && f.path.ends_with(&format!("/{file_name}"))
        }) else {
            out.emit_path(
                &format!("crates/{krate}/src/{file_name}"),
                "SA005",
                0,
                format!("phase-function roster names missing file for `{fn_name}`"),
            );
            continue;
        };
        let toks = file.toks();
        let found = file.fns().iter().any(|f| {
            f.name == *fn_name
                && f.body.is_some_and(|(open, close)| {
                    toks.get(open..=close).is_some_and(|body| {
                        body.iter()
                            .any(|t| t.kind == TokKind::Str && t.text == *span)
                    })
                })
        });
        if !found {
            out.emit_path(
                &file.path,
                "SA005",
                0,
                format!("phase fn `{fn_name}` does not open its documented span `{span}`"),
            );
        }
    }
    // 4. Every recorded histogram family is documented.
    for file in ws.files.iter().filter(|f| production(f)) {
        for (line, name) in histogram_literals(file) {
            if !config::HISTOGRAMS.iter().any(|(n, _)| *n == name) {
                out.emit(
                    file,
                    "SA005",
                    line,
                    format!(
                        "histogram family `{name}` is not in the documented taxonomy; add \
                         it to DESIGN.md's histogram table and `config::HISTOGRAMS`"
                    ),
                );
            }
        }
    }
    // 5. Every documented histogram family is recorded in its owning crate.
    for (name, owner) in config::HISTOGRAMS {
        let recorded = ws
            .files
            .iter()
            .filter(|f| f.crate_name == *owner && production(f))
            .any(|f| histogram_literals(f).iter().any(|(_, n)| n == name));
        if !recorded {
            out.emit_path(
                "DESIGN.md",
                "SA005",
                0,
                format!(
                    "documented histogram family `{name}` is never recorded in crate `{owner}`"
                ),
            );
        }
    }
    // 6. The taxonomy is reflected in DESIGN.md.
    if let Some(design) = &ws.design {
        for (name, _) in config::SPANS {
            if !design.contains(name) {
                out.emit_path(
                    "DESIGN.md",
                    "SA005",
                    0,
                    format!("span `{name}` is missing from DESIGN.md's span table"),
                );
            }
        }
        for (name, _) in config::HISTOGRAMS {
            if !design.contains(name) {
                out.emit_path(
                    "DESIGN.md",
                    "SA005",
                    0,
                    format!(
                        "histogram family `{name}` is missing from DESIGN.md's histogram table"
                    ),
                );
            }
        }
    }
}

fn check_sa006(ws: &Workspace, out: &mut Emitter) {
    for file in ws.files.iter().filter(|f| production(f)) {
        for (line, name) in counter_literals(file) {
            if !config::COUNTERS.contains(&name.as_str()) {
                out.emit(
                    file,
                    "SA006",
                    line,
                    format!(
                        "counter `{name}` is not in the documented taxonomy; add it to \
                         DESIGN.md's counter table and `config::COUNTERS`"
                    ),
                );
            }
        }
    }
    if let Some(design) = &ws.design {
        for name in config::COUNTERS {
            if !design.contains(name) {
                out.emit_path(
                    "DESIGN.md",
                    "SA006",
                    0,
                    format!("counter `{name}` is missing from DESIGN.md's counter table"),
                );
            }
        }
    }
}

impl Pass for ObsPass {
    fn name(&self) -> &'static str {
        "obs-coverage"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA005", "SA006"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        check_sa005(cx.ws, out);
        check_sa006(cx.ws, out);
    }
}
