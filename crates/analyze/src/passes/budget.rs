//! SA004 — budget propagation: the admission-control invariant of the
//! degradation ladder (`hyde-guard`).
//!
//! Public functions in the budgeted crates (`core`, `map`) that
//! construct BDD nodes (`ite`/`and`/`from_fn`/…, `Bdd::new`) or invoke
//! the SAT solver must thread a `guard::Budget` — or an explicit node
//! cap — through their signature or body. A public entry point that
//! builds BDD work with no budget in scope is an unbounded-work hole:
//! it can blow past `max_bdd_nodes` with no `OutOfBudget` off-ramp.

use crate::config;
use crate::lexer::{Tok, TokKind};
use crate::registry::{Emitter, Pass};
use crate::source::{FileKind, FnItem, SourceFile};
use crate::workspace::Workspace;

/// The budget-propagation pass (SA004).
pub struct BudgetPass;

fn eligible(f: &SourceFile) -> bool {
    config::BUDGETED.contains(&f.crate_name.as_str()) && f.kind == FileKind::Lib
}

/// True when the token window contains a BDD-constructing or
/// SAT-invoking call.
fn constructs_bounded_work(toks: &[Tok]) -> bool {
    for (i, t) in toks.iter().enumerate() {
        // `.ite(` / `.and(` / ... method calls.
        if t.is_punct('.') {
            if let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) {
                if toks.get(i + 2).is_some_and(|p| p.is_punct('('))
                    && (config::BDD_CONSTRUCTORS.contains(&m.text.as_str()) || m.text == "solve")
                {
                    return true;
                }
            }
        }
        // `Bdd::new(` / `Bdd::with_capacity(`.
        if t.is_ident("Bdd")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|m| m.is_ident("new") || m.is_ident("with_capacity"))
        {
            return true;
        }
    }
    false
}

/// True when the signature-plus-body window shows budget evidence.
fn has_budget_evidence(toks: &[Tok]) -> bool {
    toks.iter()
        .any(|t| t.kind == TokKind::Ident && config::BUDGET_EVIDENCE.contains(&t.text.as_str()))
}

fn check_file(file: &SourceFile, out: &mut Emitter) {
    let toks = file.toks();
    for f in file.fns() {
        if !f.is_pub || file.in_test_code(f.line) {
            continue;
        }
        let Some((body_open, body_close)) = f.body else {
            continue;
        };
        let Some(window) = toks.get(f.fn_tok..=body_close) else {
            continue;
        };
        let Some(body) = toks.get(body_open..=body_close) else {
            continue;
        };
        if constructs_bounded_work(body) && !has_budget_evidence(window) {
            emit_fn(file, &f, out);
        }
    }
}

fn emit_fn(file: &SourceFile, f: &FnItem, out: &mut Emitter) {
    out.emit(
        file,
        "SA004",
        f.line,
        format!(
            "pub fn `{}` constructs BDD/SAT work without threading a `guard::Budget` \
             (or an explicit node cap); unbounded work has no `OutOfBudget` off-ramp",
            f.name
        ),
    );
}

impl Pass for BudgetPass {
    fn name(&self) -> &'static str {
        "budget-propagation"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA004"]
    }

    fn check(&self, ws: &Workspace, out: &mut Emitter) {
        for file in ws.files.iter().filter(|f| eligible(f)) {
            check_file(file, out);
        }
    }
}
