//! SA004 — budget propagation (shim).
//!
//! The v1 pass flagged public fns in budgeted crates that construct
//! BDD/SAT work with no textual "budget evidence" in their own
//! signature-plus-body window. That heuristic could not see a budget
//! arriving through a caller, so it both over- and under-approximated.
//! SA004 is now a shim that defers entirely to the interprocedural
//! **SA010** budget-flow pass ([`crate::passes::budget_flow`]), which
//! walks the call graph from `Budget`-accepting entry points. The code
//! stays registered so old `sa:allow(SA004)` directives are recognized
//! (and flagged as stale by SA013 once migrated to SA010).
//!
//! The token-level detectors remain here as the shared vocabulary both
//! passes speak.

use crate::config;
use crate::lexer::{Tok, TokKind};
use crate::registry::{Cx, Emitter, Pass};

/// The budget-propagation shim pass (SA004 — defers to SA010).
pub struct BudgetPass;

/// True when the token window contains a BDD-constructing or
/// SAT-invoking call.
pub fn constructs_bounded_work(toks: &[Tok]) -> bool {
    for (i, t) in toks.iter().enumerate() {
        // `.ite(` / `.and(` / ... method calls.
        if t.is_punct('.') {
            if let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokKind::Ident) {
                if toks.get(i + 2).is_some_and(|p| p.is_punct('('))
                    && (config::BDD_CONSTRUCTORS.contains(&m.text.as_str()) || m.text == "solve")
                {
                    return true;
                }
            }
        }
        // `Bdd::new(` / `Bdd::with_capacity(`.
        if t.is_ident("Bdd")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|m| m.is_ident("new") || m.is_ident("with_capacity"))
        {
            return true;
        }
    }
    false
}

/// True when the signature-plus-body window shows budget evidence.
pub fn has_budget_evidence(toks: &[Tok]) -> bool {
    toks.iter()
        .any(|t| t.kind == TokKind::Ident && config::BUDGET_EVIDENCE.contains(&t.text.as_str()))
}

impl Pass for BudgetPass {
    fn name(&self) -> &'static str {
        "budget-propagation"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA004"]
    }

    fn check(&self, _cx: &Cx, _out: &mut Emitter) {
        // Shim: superseded by SA010 (budget-flow), which performs the
        // same check interprocedurally with call-path evidence.
    }
}
