//! SA009 — transitive panic reachability: the interprocedural upgrade
//! of SA003's per-file counts.
//!
//! Every *public* production fn that can transitively reach a panic
//! site (`.unwrap()`/`.expect(`/`panic!`/`unreachable!`/`todo!`/
//! `unimplemented!` — indexing is SA003's business) outside
//! `#[cfg(test)]` must appear in the committed set ratchet
//! `crates/analyze/ratchets/SA009-panic-reach.txt`, one fn display id
//! (`<path>::[Owner::]name`) per line. A public fn reaching a panic
//! that is *not* in the ratchet fails the run, and the finding prints
//! the concrete call path down to the site. Entries may be removed
//! freely as panics are burned down to typed errors; adding one needs
//! a justified diff. Stale entries (fn no longer exists or no longer
//! reaches a panic) are denied so the ratchet stays honest.
//!
//! Resolution over-approximates (see [`crate::resolve`]), so the
//! ratchet is a superset of the true panic-reaching API — the safe
//! direction for a "which entry points can panic" contract.

use crate::ratchet::SetRatchet;
use crate::registry::{Cx, Emitter, Pass};
use crate::source::FileKind;

/// The panic-reachability pass (SA009).
pub struct PanicReachPass;

/// Ratchet file name under `crates/analyze/ratchets/`.
pub const RATCHET_FILE: &str = "SA009-panic-reach.txt";

/// Header written into a regenerated ratchet file.
pub const RATCHET_HEADER: &str = "\
Panic-reachability ratchet, enforced by `cargo xtask analyze` (pass
SA009). Every public production fn that can transitively reach a panic
site (unwrap/expect/unwrap_unchecked, panic!/unreachable!/todo!/
unimplemented!) outside #[cfg(test)] is listed here by display id,
`<workspace-relative-path>::[Owner::]name`. Entries may be removed
freely as panic sites are converted to typed errors; a NEW entry means
a new public fn joined the can-panic surface and needs a justification
in the PR. Call resolution over-approximates, so this is a superset of
the true panic-reaching API.
Regenerate with `cargo run -p hyde-analyze --bin hyde-sa -- --update-ratchets`.";

/// The public panic-reaching fns: `(fn index, display id)` sorted by
/// display id.
fn reaching_roots(cx: &Cx) -> Vec<(usize, String)> {
    let reach = cx.graph.panic_reach();
    let mut roots: Vec<(usize, String)> = cx
        .graph
        .syms
        .fns
        .iter()
        .enumerate()
        .filter(|(i, f)| {
            f.is_pub && !f.in_test && cx.ws.files[f.file].kind == FileKind::Lib && reach.reaches[*i]
        })
        .map(|(i, f)| (i, f.display.clone()))
        .collect();
    roots.sort_by(|a, b| a.1.cmp(&b.1));
    roots
}

/// Renders a fresh ratchet file from the current workspace state
/// (builds its own call graph — used by `--update-ratchets`).
pub fn render_ratchet(ws: &crate::workspace::Workspace) -> String {
    let graph = crate::callgraph::CallGraph::build(ws);
    let cx = Cx { ws, graph: &graph };
    let ids: Vec<String> = reaching_roots(&cx).into_iter().map(|(_, d)| d).collect();
    SetRatchet::render(RATCHET_HEADER, &ids)
}

impl Pass for PanicReachPass {
    fn name(&self) -> &'static str {
        "panic-reach"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["SA009"]
    }

    fn check(&self, cx: &Cx, out: &mut Emitter) {
        let ws = cx.ws;
        let Some(text) = ws.ratchet(RATCHET_FILE) else {
            out.emit_path(
                RATCHET_FILE,
                "SA009",
                0,
                "panic-reachability ratchet file is missing; regenerate with \
                 `hyde-sa --update-ratchets` and commit it"
                    .into(),
            );
            return;
        };
        let ratchet = SetRatchet::parse(text);
        let reach = cx.graph.panic_reach();
        let roots = reaching_roots(cx);
        // Record which SA009 allow directives fire (they remove sites
        // from the graph in `callgraph::direct_panic_sites`), for SA013.
        for file in &ws.files {
            if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
                continue;
            }
            for site in crate::passes::panic_surface::scan_sites(file.toks()) {
                if site.indexing || file.in_test_code(site.line) {
                    continue;
                }
                if let Some(directive) = file.allow_match("SA009", site.line) {
                    out.mark_allow_used(file, directive);
                }
            }
        }
        for (idx, display) in &roots {
            if ratchet.contains(display) {
                continue;
            }
            let node = &cx.graph.syms.fns[*idx];
            let file = &ws.files[node.file];
            let path = cx.graph.panic_path(ws, &reach, *idx);
            out.emit_with_path(
                file,
                "SA009",
                node.line,
                format!(
                    "pub fn `{}` can reach a panic site and is not in the \
                     panic-reachability ratchet; convert the path below to typed errors, \
                     or regenerate {RATCHET_FILE} with `hyde-sa --update-ratchets` and \
                     justify the new entry in the PR",
                    node.name
                ),
                path,
            );
        }
        // Stale entries keep the ratchet honest.
        for entry in &ratchet.entries {
            if !roots.iter().any(|(_, d)| d == entry) {
                out.emit_path(
                    RATCHET_FILE,
                    "SA009",
                    0,
                    format!(
                        "stale ratchet entry `{entry}`: the fn no longer exists or no \
                         longer reaches a panic site; remove the line (or regenerate \
                         with `hyde-sa --update-ratchets`)"
                    ),
                );
            }
        }
        if roots.len() < ratchet.entries.len() {
            out.note(format!(
                "SA009: panic-reaching public surface is down to {} fns (ratchet lists \
                 {}); regenerate {RATCHET_FILE} to lock in the improvement",
                roots.len(),
                ratchet.entries.len()
            ));
        }
    }
}
