//! Per-pass ratchet files: committed per-file caps that may go down
//! freely but only up with a justified diff.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! <max-count> <workspace-relative-path>
//! ```
//!
//! Successor of `crates/core/unwrap_allowlist.txt`, generalized to any
//! counting pass and to workspace-relative paths.

/// A parsed ratchet: `(path, cap)` entries in file order.
#[derive(Clone, Debug, Default)]
pub struct Ratchet {
    /// Entries as committed.
    pub entries: Vec<(String, usize)>,
}

impl Ratchet {
    /// Parses ratchet `text`; malformed lines are reported as `Err`
    /// entries by the caller via the returned issues list.
    pub fn parse(text: &str) -> (Ratchet, Vec<String>) {
        let mut r = Ratchet::default();
        let mut issues = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.split_once(char::is_whitespace) {
                Some((count, path)) => match count.parse::<usize>() {
                    Ok(cap) => r.entries.push((path.trim().to_owned(), cap)),
                    Err(_) => issues.push(format!("line {}: bad count in '{line}'", i + 1)),
                },
                None => issues.push(format!("line {}: malformed entry '{line}'", i + 1)),
            }
        }
        (r, issues)
    }

    /// The committed cap for `path` (absent entries cap at 0: new files
    /// start clean).
    pub fn cap(&self, path: &str) -> usize {
        self.entries
            .iter()
            .find(|(p, _)| p == path)
            .map_or(0, |(_, c)| *c)
    }

    /// Serializes observed `(path, count)` pairs as a fresh ratchet
    /// file (zero-count files are omitted).
    pub fn render(header: &str, counts: &[(String, usize)]) -> String {
        let mut out = String::new();
        for line in header.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("#\n# Format: <max-count> <workspace-relative-path>\n");
        for (path, count) in counts {
            if *count > 0 {
                out.push_str(&format!("{count} {path}\n"));
            }
        }
        out
    }
}

/// A set-valued ratchet: one stable entry id per line (used by SA009,
/// where the entry is a fn display id rather than a count). Entries may
/// be removed freely; adding one requires a justified diff.
#[derive(Clone, Debug, Default)]
pub struct SetRatchet {
    /// Entries as committed, in file order.
    pub entries: Vec<String>,
}

impl SetRatchet {
    /// Parses set-ratchet `text` (`#` comments and blank lines skipped).
    pub fn parse(text: &str) -> SetRatchet {
        SetRatchet {
            entries: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned)
                .collect(),
        }
    }

    /// True when `id` is a committed entry.
    pub fn contains(&self, id: &str) -> bool {
        self.entries.iter().any(|e| e == id)
    }

    /// Serializes `ids` as a fresh set-ratchet file.
    pub fn render(header: &str, ids: &[String]) -> String {
        let mut out = String::new();
        for line in header.lines() {
            out.push_str("# ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("#\n# Format: one entry id per line.\n");
        for id in ids {
            out.push_str(id);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_ratchet_round_trips() {
        let s = SetRatchet::render("hdr", &["a::f".into(), "b::g".into()]);
        let r = SetRatchet::parse(&s);
        assert!(r.contains("a::f"));
        assert!(r.contains("b::g"));
        assert!(!r.contains("c::h"));
        assert_eq!(r.entries.len(), 2);
    }

    #[test]
    fn parse_and_cap() {
        let (r, issues) = Ratchet::parse("# c\n3 crates/core/src/a.rs\n\n0 b.rs\nbroken\n");
        assert!(issues.iter().any(|i| i.contains("broken")));
        assert_eq!(r.cap("crates/core/src/a.rs"), 3);
        assert_eq!(r.cap("b.rs"), 0);
        assert_eq!(r.cap("unknown.rs"), 0);
    }

    #[test]
    fn render_skips_zeroes() {
        let s = Ratchet::render("hdr", &[("a.rs".into(), 2), ("b.rs".into(), 0)]);
        assert!(s.contains("# hdr"));
        assert!(s.contains("2 a.rs"));
        assert!(!s.contains("b.rs"));
    }
}
