//! Workspace knowledge the passes check against: crate classes, the
//! documented span/counter taxonomies, and the phase-function roster.
//!
//! This file is the analyzer-side copy of contracts stated in
//! `DESIGN.md`; SA005/SA006 verify the two stay in sync (every name
//! listed here must appear in `DESIGN.md`, every literal in the source
//! must appear here).

/// Crates whose outputs feed the byte-identical determinism guarantee
/// (`tests/parallel_determinism.rs`): unordered iteration and
/// wall-clock/thread/env reads are denied here unless allowlisted.
pub const RESULT_AFFECTING: &[&str] = &["core", "bdd", "map", "sat", "logic"];

/// Crates whose public constructors of BDD/SAT work must thread a
/// `guard::Budget` (or an explicit cap) — the admission-control
/// boundary of the degradation ladder.
pub const BUDGETED: &[&str] = &["core", "map"];

/// The documented span taxonomy (`DESIGN.md` → Observability). Every
/// `span!`/`map_chunked*` name literal in non-test code must be listed
/// here, and each entry must appear somewhere in its crate.
pub const SPANS: &[(&str, &str)] = &[
    ("varpart.select_best", "core"),
    ("varpart.score", "core"),
    ("varpart.floor", "core"),
    ("decompose.step", "core"),
    ("decompose.bdd", "core"),
    ("chart.build", "core"),
    ("encoding.encode", "core"),
    ("hyper.fold", "core"),
    ("hyper.decompose", "core"),
    ("hyper.implement", "core"),
    ("hyper.collapse", "core"),
    ("hyper.verify", "core"),
    ("hyper.scan", "core"),
    ("map.outputs", "map"),
    ("map.cluster", "map"),
    ("map.cover", "map"),
    ("map.verify", "map"),
    ("sat.solve", "sat"),
    ("lint.file", "verify"),
    ("lint.circuit", "verify"),
    ("bench.circuit", "bench"),
    ("bench.chaos_circuit", "bench"),
    ("obs.serve.request", "obs"),
    ("serve.request", "serve"),
    ("serve.job", "serve"),
    ("sa.lex", "analyze"),
    ("sa.parse", "analyze"),
    ("sa.resolve", "analyze"),
    ("sa.callgraph", "analyze"),
    ("sa.pass", "analyze"),
];

/// The documented counter taxonomy. Every `counter(...)` name literal
/// in non-test code (and every `guard.degrade.*` literal anywhere in
/// production code) must be listed here.
pub const COUNTERS: &[&str] = &[
    "varpart.candidates",
    "decompose.steps",
    "decompose.classes",
    "decompose.shannon",
    "hyper.ingredients",
    "map.output_functions",
    "sat.solves",
    "sat.vars",
    "sat.propagations",
    "sat.clauses",
    "sat.conflicts",
    "sat.decisions",
    "sat.restarts",
    "proof.records",
    "proof.vars",
    "proof.clauses",
    "proof.conflicts",
    "bdd.managers",
    "bdd.nodes",
    "bdd.unique_lookups",
    "bdd.unique_probes",
    "bdd.unique_hits",
    "bdd.cache_lookups",
    "bdd.cache_hits",
    "bdd.cache_evictions",
    "bdd.unique_growths",
    "bdd.cache_growths",
    "bdd.gc.runs",
    "bdd.gc.reclaimed",
    "hyde.npn.hits",
    "hyde.npn.misses",
    "hyde.npn.canonize_us",
    "sched.steal.blocks",
    "sched.steal.steals",
    "obs.serve.requests",
    "serve.requests",
    "serve.submitted",
    "serve.completed",
    "serve.retries",
    "serve.quarantined",
    "serve.rejected",
    "serve.cancelled",
    "serve.recovered",
    "serve.journal.events",
    "serve.watchdog.overruns",
    "guard.chaos.injected",
    "guard.hyper_fallback",
    "guard.degrade.exact",
    "guard.degrade.bdd_threshold",
    "guard.degrade.shannon",
    "guard.degrade.direct_cover",
    "sa.files",
    "sa.fns",
    "sa.calls",
    "sa.findings",
    "sa.allowed",
];

/// The documented histogram-family taxonomy. Every `observe(...)` name
/// literal in non-test code must be listed here, and each entry must
/// appear somewhere in its crate.
pub const HISTOGRAMS: &[(&str, &str)] = &[
    ("bench.circuit_wall_us", "bench"),
    ("obs.serve.request_us", "obs"),
    ("serve.request_us", "serve"),
    ("serve.job_wall_us", "serve"),
    ("serve.queue_wait_us", "serve"),
];

/// Phase-level functions that must open their documented span:
/// `(crate, file name, function, span)`.
pub const PHASE_FNS: &[(&str, &str, &str, &str)] = &[
    ("core", "varpart.rs", "select_best", "varpart.select_best"),
    (
        "core",
        "decompose.rs",
        "decompose_step_with",
        "decompose.step",
    ),
    (
        "core",
        "decompose.rs",
        "decompose_bdd_to_network",
        "decompose.bdd",
    ),
    ("core", "hyper.rs", "decompose", "hyper.decompose"),
    (
        "core",
        "hyper.rs",
        "implement_ingredients",
        "hyper.implement",
    ),
    ("core", "hyper.rs", "verify_ingredients", "hyper.verify"),
    ("map", "flow.rs", "map_outputs", "map.outputs"),
    ("map", "cluster.rs", "cluster_outputs", "map.cluster"),
    ("sat", "solver.rs", "solve_budgeted", "sat.solve"),
];

/// Where the `HY` diagnostic codes are canonically declared (the
/// `Code::as_str` match).
pub const DIAG_DECL_FILE: &str = "crates/logic/src/diag.rs";

/// Iterator methods whose visit order leaks into results when called on
/// a `HashMap`/`HashSet`.
pub const ORDER_SENSITIVE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Iterator sinks that are order-insensitive: a flagged iteration whose
/// statement terminates in one of these is merge-safe and not reported.
pub const ORDER_SAFE_SINKS: &[&str] = &["count", "sum", "min", "max", "all", "any", "len"];

/// BDD-node-constructing methods watched by the budget pass.
pub const BDD_CONSTRUCTORS: &[&str] = &[
    "ite",
    "and",
    "or",
    "xor",
    "not",
    "from_fn",
    "cut_subfunctions",
    "compatible_class_count",
    "restrict_cube",
    "permute",
];

/// Evidence that a function threads (or caps) a budget.
pub const BUDGET_EVIDENCE: &[&str] = &[
    "Budget",
    "budget",
    "guarded",
    "set_node_cap",
    "node_cap",
    "with_budget",
    "solve_budgeted",
];
