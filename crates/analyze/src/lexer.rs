//! A small Rust lexer: just enough tokenization for source-level
//! invariant checks.
//!
//! The passes match *token* patterns, not raw text, so a `".unwrap()"`
//! inside a string literal or a `HashMap` in a doc comment never counts
//! as a violation — which is also what lets hyde-sa analyze its own
//! sources clean. The lexer understands line/block comments (nested),
//! plain and raw (byte) strings, char literals vs lifetimes, numbers,
//! raw identifiers and single-char punctuation; everything it does not
//! recognize degrades to punctuation rather than an error, since the
//! input is already known to compile.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// String literal (plain, raw or byte); `text` is the content
    /// between the quotes, escapes untouched.
    Str,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Any single punctuation character (`.`, `[`, `!`, `:`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what it holds per kind).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is an identifier equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One `//` line comment (doc comments included), kept out of the token
/// stream but preserved for `sa:allow` directive scanning.
#[derive(Clone, Debug)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text after the leading `//`, `///` or `//!`.
    pub text: String,
    /// True for inner (`//!`) comments, which scope to the whole file.
    pub inner: bool,
}

/// Lexer output: the token stream plus the line comments.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(ch) = c {
            self.i += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// Consumes a plain string body after the opening quote; returns the
/// content (escapes untouched, closing quote consumed).
fn lex_str_body(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                s.push(c);
                if let Some(e) = cur.bump() {
                    s.push(e);
                }
            }
            '"' => break,
            _ => s.push(c),
        }
    }
    s
}

/// Consumes a raw string body after `r##...`: expects `"`, reads until
/// `"` followed by `hashes` `#`s.
fn lex_raw_str_body(cur: &mut Cursor, hashes: usize) -> String {
    let mut s = String::new();
    if cur.peek() == Some('"') {
        cur.bump();
    }
    while let Some(c) = cur.bump() {
        if c == '"' {
            let closed = (0..hashes).all(|k| cur.peek_at(k) == Some('#'));
            if closed {
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
        s.push(c);
    }
    s
}

fn lex_number(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else if c == '.' {
            // `1.5` continues the number; `0..n` and `1.method()` stop it.
            match cur.peek_at(1) {
                Some(d) if d.is_ascii_digit() => {
                    s.push(c);
                    cur.bump();
                }
                _ => break,
            }
        } else if (c == '+' || c == '-') && s.ends_with(['e', 'E']) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// After a `'`: decides char literal vs lifetime.
fn lex_quote(cur: &mut Cursor, line: u32) -> Tok {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume `\x`, then to the closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            }
        }
        Some(c) if is_ident_start(c) => {
            if cur.peek_at(1) == Some('\'') {
                // 'a'
                cur.bump();
                cur.bump();
                Tok {
                    kind: TokKind::Char,
                    text: c.to_string(),
                    line,
                }
            } else {
                // 'lifetime
                let name = lex_ident(cur);
                Tok {
                    kind: TokKind::Lifetime,
                    text: name,
                    line,
                }
            }
        }
        Some(c) => {
            // Non-identifier char literal like ' ' or '.'.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            Tok {
                kind: TokKind::Char,
                text: c.to_string(),
                line,
            }
        }
        None => Tok {
            kind: TokKind::Punct,
            text: "'".into(),
            line,
        },
    }
}

/// Lexes `src` into tokens and line comments. Never fails: unrecognized
/// bytes become punctuation tokens.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            let inner = cur.peek() == Some('!');
            if inner || cur.peek() == Some('/') {
                cur.bump();
            }
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(LineComment { line, text, inner });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        if c == '"' {
            cur.bump();
            let text = lex_str_body(&mut cur);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
            });
            continue;
        }
        // r"...", r#"..."#, b"...", br#"..."#, b'...', r#ident
        if c == 'r' || c == 'b' {
            let mut j = 1usize;
            if c == 'b' && cur.peek_at(1) == Some('r') {
                j = 2;
            }
            let raw = c == 'r' || j == 2;
            let mut hashes = 0usize;
            while raw && cur.peek_at(j + hashes) == Some('#') {
                hashes += 1;
            }
            let after = cur.peek_at(j + hashes);
            if raw && after == Some('"') {
                for _ in 0..j + hashes {
                    cur.bump();
                }
                let text = lex_raw_str_body(&mut cur, hashes);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                continue;
            }
            if c == 'r' && hashes == 1 && after.is_some_and(is_ident_start) {
                // raw identifier r#name
                cur.bump();
                cur.bump();
                let text = lex_ident(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                continue;
            }
            if c == 'b' && j == 1 && hashes == 0 {
                if cur.peek_at(1) == Some('"') {
                    cur.bump();
                    cur.bump();
                    let text = lex_str_body(&mut cur);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        line,
                    });
                    continue;
                }
                if cur.peek_at(1) == Some('\'') {
                    cur.bump();
                    cur.bump();
                    let tok = lex_quote(&mut cur, line);
                    out.toks.push(tok);
                    continue;
                }
            }
            // plain identifier starting with r/b
            let text = lex_ident(&mut cur);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        if c == '\'' {
            cur.bump();
            let tok = lex_quote(&mut cur, line);
            out.toks.push(tok);
            continue;
        }
        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }
        if is_ident_start(c) {
            let text = lex_ident(&mut cur);
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

/// Rust keywords that can precede `[` without forming an index
/// expression (`return [..]`, `in [..]`, ...). Used by the
/// panic-surface pass; kept here next to the lexer so the token
/// vocabulary lives in one place.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "unsafe", "use", "where", "while", "yield",
];

/// True when `s` is a Rust keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let l = lex("let s = \".unwrap()\"; // .expect( in a comment\n/* panic! */ x");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "x"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments.iter().any(|c| c.text.contains(".expect(")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) { let r = r#\"[0].unwrap()\"#; let c = 'x'; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "[0].unwrap()"));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn numbers_and_ranges() {
        let l = lex("for i in 0..10 { let f = 1.5e3; let h = 0xFFu32; }");
        let nums: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e3", "0xFFu32"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn inner_comments_are_marked() {
        let l = lex("//! file scope\n// normal\nfn f() {}");
        assert!(l.comments.iter().any(|c| c.inner));
        assert!(l.comments.iter().any(|c| !c.inner));
    }
}
