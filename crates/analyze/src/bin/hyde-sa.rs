//! `hyde-sa` — the workspace static analyzer, as a standalone binary.
//!
//! ```text
//! hyde-sa [--root DIR] [--json PATH] [--list-passes] [--update-ratchets]
//! ```
//!
//! Exit codes: 0 clean, 1 findings survived, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use hyde_analyze::error::SaError;
use hyde_analyze::registry::Registry;

struct Opts {
    root: PathBuf,
    json: Option<PathBuf>,
    list_passes: bool,
    update_ratchets: bool,
}

fn parse_args() -> Result<Opts, SaError> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: None,
        list_passes: false,
        update_ratchets: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args
                    .next()
                    .ok_or_else(|| SaError::Usage("--root needs a directory".into()))?;
                opts.root = PathBuf::from(v);
            }
            "--json" => {
                let v = args
                    .next()
                    .ok_or_else(|| SaError::Usage("--json needs a path".into()))?;
                opts.json = Some(PathBuf::from(v));
            }
            "--list-passes" => opts.list_passes = true,
            "--update-ratchets" => opts.update_ratchets = true,
            "--help" | "-h" => {
                println!(
                    "hyde-sa: workspace static analysis\n\n\
                     usage: hyde-sa [--root DIR] [--json PATH] [--list-passes] \
                     [--update-ratchets]\n\n\
                     --root DIR          workspace root to analyze (default: .)\n\
                     --json PATH         also write the report as hyde-sa-v1 JSON\n\
                     --list-passes       print the registered passes and exit\n\
                     --update-ratchets   regenerate crates/analyze/ratchets/ and exit"
                );
                std::process::exit(0);
            }
            other => {
                return Err(SaError::Usage(format!("unknown argument `{other}`")));
            }
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, SaError> {
    let opts = parse_args()?;
    if opts.list_passes {
        for (name, codes) in Registry::with_defaults().pass_list() {
            println!("{name}: {}", codes.join(", "));
        }
        return Ok(true);
    }
    if opts.update_ratchets {
        for path in hyde_analyze::update_ratchets(&opts.root)? {
            println!("wrote {path}");
        }
        return Ok(true);
    }
    let report = hyde_analyze::analyze_root(&opts.root)?;
    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, report.to_json())
            .map_err(|e| SaError::Io(format!("{}: {e}", json_path.display())))?;
    }
    for f in &report.findings {
        println!("{f}");
    }
    for n in &report.notes {
        println!("note: {n}");
    }
    println!(
        "hyde-sa: {} files, {} passes, {} findings, {} allowed",
        report.files_scanned,
        report.passes.len(),
        report.findings.len(),
        report.allowed()
    );
    Ok(report.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("hyde-sa: {e}");
            ExitCode::from(2)
        }
    }
}
