//! `hyde-sa` — the workspace static analyzer, as a standalone binary.
//!
//! ```text
//! hyde-sa [--root DIR] [--json PATH] [--baseline PATH] [--list-passes]
//!         [--update-ratchets]
//! ```
//!
//! Exit codes: 0 clean, 1 findings survived, 2 usage/IO error. With
//! `--baseline`, only deny findings *new* relative to the given
//! `ANALYZE.json` (v1 or v2) fail the run. Set `HYDE_TRACE=<path>` to
//! write Chrome-trace/flamegraph artifacts via hyde-obs.

use std::path::PathBuf;
use std::process::ExitCode;

use hyde_analyze::baseline::Baseline;
use hyde_analyze::error::SaError;
use hyde_analyze::registry::Registry;
use hyde_analyze::report::Severity;

/// Prints one line to stdout, ignoring broken-pipe errors so
/// `hyde-sa ... | head` exits cleanly instead of panicking.
fn out(line: &str) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

struct Opts {
    root: PathBuf,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    list_passes: bool,
    update_ratchets: bool,
}

fn parse_args() -> Result<Opts, SaError> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: None,
        baseline: None,
        list_passes: false,
        update_ratchets: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args
                    .next()
                    .ok_or_else(|| SaError::Usage("--root needs a directory".into()))?;
                opts.root = PathBuf::from(v);
            }
            "--json" => {
                let v = args
                    .next()
                    .ok_or_else(|| SaError::Usage("--json needs a path".into()))?;
                opts.json = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args
                    .next()
                    .ok_or_else(|| SaError::Usage("--baseline needs a path".into()))?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--list-passes" => opts.list_passes = true,
            "--update-ratchets" => opts.update_ratchets = true,
            "--help" | "-h" => {
                out("hyde-sa: workspace static analysis\n\n\
                     usage: hyde-sa [--root DIR] [--json PATH] [--baseline PATH] \
                     [--list-passes] [--update-ratchets]\n\n\
                     --root DIR          workspace root to analyze (default: .)\n\
                     --json PATH         also write the report as hyde-sa-v2 JSON\n\
                     --baseline PATH     diff mode: fail only on deny findings not in\n\
                     \u{20}                    the given ANALYZE.json (v1 or v2 accepted)\n\
                     --list-passes       print the registered passes and exit\n\
                     --update-ratchets   regenerate crates/analyze/ratchets/ and exit");
                std::process::exit(0);
            }
            other => {
                return Err(SaError::Usage(format!("unknown argument `{other}`")));
            }
        }
    }
    Ok(opts)
}

fn run() -> Result<bool, SaError> {
    let opts = parse_args()?;
    if opts.list_passes {
        for (name, codes) in Registry::with_defaults().pass_list() {
            out(&format!("{name}: {}", codes.join(", ")));
        }
        return Ok(true);
    }
    if opts.update_ratchets {
        for path in hyde_analyze::update_ratchets(&opts.root)? {
            out(&format!("wrote {path}"));
        }
        return Ok(true);
    }
    let baseline = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| SaError::Io(format!("{}: {e}", path.display())))?;
            Some(Baseline::parse(&text).map_err(SaError::Usage)?)
        }
        None => None,
    };
    let report = hyde_analyze::analyze_root(&opts.root)?;
    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, report.to_json())
            .map_err(|e| SaError::Io(format!("{}: {e}", json_path.display())))?;
    }
    let clean = if let Some(baseline) = &baseline {
        let new = baseline.new_denies(&report);
        for f in &new {
            out(&format!("NEW {f}"));
        }
        let known = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
            - new.len();
        if known > 0 {
            out(&format!(
                "hyde-sa: {known} known findings carried by the baseline"
            ));
        }
        new.is_empty()
    } else {
        for f in &report.findings {
            out(&f.to_string());
        }
        report.clean()
    };
    for n in &report.notes {
        out(&format!("note: {n}"));
    }
    out(&format!(
        "hyde-sa: {} files, {} passes, {} findings ({} warnings), {} allowed",
        report.files_scanned,
        report.passes.len(),
        report.denies().count(),
        report.warnings().count(),
        report.allowed()
    ));
    Ok(clean)
}

fn main() -> ExitCode {
    let trace = hyde_obs::init_from_env();
    let code = match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("hyde-sa: {e}");
            ExitCode::from(2)
        }
    };
    if let Some(path) = trace {
        match hyde_obs::write_artifacts(&path) {
            Ok(folded) => eprintln!("hyde-sa: trace written to {path} (+ {folded})"),
            Err(e) => eprintln!("hyde-sa: failed to write trace artifacts: {e}"),
        }
    }
    code
}
