//! Mutation drill: prove every pass actually fires. Each test takes the
//! real (clean) workspace, plants one violation in memory, and asserts
//! the responsible pass reports it. A pass that silently stops matching
//! fails here, not in production.

use hyde_analyze::manifest;
use hyde_analyze::passes;
use hyde_analyze::registry::{Pass, Registry};
use hyde_analyze::source::SourceFile;
use hyde_analyze::workspace::Workspace;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace() -> Workspace {
    Workspace::from_root(&root()).expect("workspace readable")
}

/// Replaces `path`'s source with `mutate(original text)`.
fn mutate_file(ws: &mut Workspace, path: &str, mutate: impl Fn(&str) -> String) {
    let text = std::fs::read_to_string(root().join(path)).expect("file readable");
    let pos = ws
        .files
        .iter()
        .position(|f| f.path == path)
        .unwrap_or_else(|| panic!("{path} not in workspace"));
    ws.files[pos] = SourceFile::new(path, &mutate(&text));
}

/// Runs a single pass and returns true when `code` fired against a file
/// whose path contains `file_contains`.
fn fires(ws: &Workspace, pass: Box<dyn Pass>, code: &str, file_contains: &str) -> bool {
    let mut r = Registry::empty();
    r.register(pass);
    r.run(ws)
        .findings
        .iter()
        .any(|f| f.code == code && f.file.contains(file_contains))
}

#[test]
fn sa001_fires_on_injected_unordered_iteration() {
    let mut ws = workspace();
    let file = "crates/core/src/varpart.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {{\n\
             \x20   m.values().copied().collect()\n}}\n"
        )
    });
    assert!(fires(
        &ws,
        Box::new(passes::determinism::DeterminismPass),
        "SA001",
        file
    ));
}

#[test]
fn sa002_fires_on_injected_clock_read() {
    let mut ws = workspace();
    let file = "crates/bdd/src/manager.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_now() -> std::time::Instant {{ std::time::Instant::now() }}\n")
    });
    assert!(fires(
        &ws,
        Box::new(passes::determinism::DeterminismPass),
        "SA002",
        file
    ));
}

#[test]
fn sa003_fires_on_panic_surface_growth() {
    let mut ws = workspace();
    let file = "crates/core/src/classes.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_unwrap(v: &[u32]) -> u32 {{ v.first().copied().unwrap() }}\n")
    });
    assert!(fires(
        &ws,
        Box::new(passes::panic_surface::PanicSurfacePass),
        "SA003",
        file
    ));
}

#[test]
fn sa004_fires_on_budget_less_entry_point() {
    let mut ws = workspace();
    let file = "crates/core/src/classes.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated_work(m: &mut hyde_bdd::Bdd, a: hyde_bdd::Ref) -> hyde_bdd::Ref {{\n\
             \x20   m.not(a)\n}}\n"
        )
    });
    assert!(fires(
        &ws,
        Box::new(passes::budget::BudgetPass),
        "SA004",
        file
    ));
}

#[test]
fn sa005_fires_on_renamed_span() {
    let mut ws = workspace();
    let file = "crates/map/src/flow.rs";
    mutate_file(&mut ws, file, |t| {
        assert!(
            t.contains("map.outputs"),
            "expected flow.rs to open map.outputs"
        );
        t.replace("map.outputs", "map.mutated")
    });
    // Three facets at once: the literal is undocumented, the phase fn no
    // longer opens its documented span, and `map.outputs` goes unopened.
    assert!(fires(&ws, Box::new(passes::obs::ObsPass), "SA005", file));
    assert!(fires(
        &ws,
        Box::new(passes::obs::ObsPass),
        "SA005",
        "DESIGN.md"
    ));
}

#[test]
fn sa006_fires_on_injected_counter() {
    let mut ws = workspace();
    let file = "crates/sat/src/solver.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_counter() {{ hyde_obs::counter(\"mutated.counter\", 1); }}\n")
    });
    assert!(fires(&ws, Box::new(passes::obs::ObsPass), "SA006", file));
}

#[test]
fn sa007_fires_on_dropped_design_row() {
    let mut ws = workspace();
    let design = ws.design.take().expect("DESIGN.md present");
    assert!(design.contains("HY504"), "expected HY504 documented");
    ws.design = Some(design.replace("HY504", "HYxxx"));
    let mut r = Registry::empty();
    r.register(Box::new(passes::diag::DiagRegistryPass));
    let report = r.run(&ws);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA007" && f.message.contains("HY504")),
        "{:?}",
        report.findings
    );
}

#[test]
fn sa008_fires_on_dropped_feature_forward() {
    let mut ws = workspace();
    let text = std::fs::read_to_string(root().join("Cargo.toml")).expect("root manifest");
    assert!(
        text.contains("\"hyde-verify/strict-checks\""),
        "expected the root strict-checks chain to forward hyde-verify"
    );
    let broken = text.replace(
        "\"hyde-verify/strict-checks\"",
        "\"hyde-core/strict-checks\"",
    );
    let pos = ws
        .manifests
        .iter()
        .position(|m| m.path == "Cargo.toml")
        .expect("root manifest in workspace");
    ws.manifests[pos] = manifest::parse("Cargo.toml", &broken);
    let mut r = Registry::empty();
    r.register(Box::new(passes::features::FeatureHygienePass));
    let report = r.run(&ws);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA008" && f.message.contains("hyde-verify/strict-checks")),
        "{:?}",
        report.findings
    );
}
