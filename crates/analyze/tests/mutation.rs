//! Mutation drill: prove every pass actually fires. Each test takes the
//! real (clean) workspace, plants one violation in memory, and asserts
//! the responsible pass reports it. A pass that silently stops matching
//! fails here, not in production.

use hyde_analyze::manifest;
use hyde_analyze::passes;
use hyde_analyze::registry::{Pass, Registry};
use hyde_analyze::source::SourceFile;
use hyde_analyze::workspace::Workspace;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn workspace() -> Workspace {
    Workspace::from_root(&root()).expect("workspace readable")
}

/// Replaces `path`'s source with `mutate(original text)`.
fn mutate_file(ws: &mut Workspace, path: &str, mutate: impl Fn(&str) -> String) {
    let text = std::fs::read_to_string(root().join(path)).expect("file readable");
    let pos = ws
        .files
        .iter()
        .position(|f| f.path == path)
        .unwrap_or_else(|| panic!("{path} not in workspace"));
    ws.files[pos] = SourceFile::new(path, &mutate(&text));
}

/// Runs a single pass and returns true when `code` fired against a file
/// whose path contains `file_contains`.
fn fires(ws: &Workspace, pass: Box<dyn Pass>, code: &str, file_contains: &str) -> bool {
    let mut r = Registry::empty();
    r.register(pass);
    r.run(ws)
        .findings
        .iter()
        .any(|f| f.code == code && f.file.contains(file_contains))
}

/// Like [`fires`], but returns the matching findings so drills can
/// assert on call-path evidence.
fn findings_of(
    ws: &Workspace,
    pass: Box<dyn Pass>,
    code: &str,
    file_contains: &str,
) -> Vec<hyde_analyze::report::Finding> {
    let mut r = Registry::empty();
    r.register(pass);
    r.run(ws)
        .findings
        .into_iter()
        .filter(|f| f.code == code && f.file.contains(file_contains))
        .collect()
}

#[test]
fn sa001_fires_on_injected_unordered_iteration() {
    let mut ws = workspace();
    let file = "crates/core/src/varpart.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {{\n\
             \x20   m.values().copied().collect()\n}}\n"
        )
    });
    assert!(fires(
        &ws,
        Box::new(passes::determinism::DeterminismPass),
        "SA001",
        file
    ));
}

#[test]
fn sa002_fires_on_injected_clock_read() {
    let mut ws = workspace();
    let file = "crates/bdd/src/manager.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_now() -> std::time::Instant {{ std::time::Instant::now() }}\n")
    });
    assert!(fires(
        &ws,
        Box::new(passes::determinism::DeterminismPass),
        "SA002",
        file
    ));
}

#[test]
fn sa003_fires_on_panic_surface_growth() {
    let mut ws = workspace();
    let file = "crates/core/src/classes.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_unwrap(v: &[u32]) -> u32 {{ v.first().copied().unwrap() }}\n")
    });
    assert!(fires(
        &ws,
        Box::new(passes::panic_surface::PanicSurfacePass),
        "SA003",
        file
    ));
}

#[test]
fn sa009_fires_on_new_panic_reaching_api_with_call_path() {
    let mut ws = workspace();
    let file = "crates/core/src/classes.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated_api(v: &[u32]) -> u32 {{ mutated_inner(v) }}\n\
             fn mutated_inner(v: &[u32]) -> u32 {{ v.first().copied().unwrap() }}\n"
        )
    });
    let found = findings_of(
        &ws,
        Box::new(passes::panic_reach::PanicReachPass),
        "SA009",
        file,
    );
    let f = found
        .iter()
        .find(|f| f.message.contains("mutated_api"))
        .unwrap_or_else(|| panic!("{found:?}"));
    // The finding prints the concrete call path down to the site.
    assert!(
        f.path.iter().any(|hop| hop.contains("mutated_inner")),
        "{:?}",
        f.path
    );
    assert!(
        f.path.last().is_some_and(|hop| hop.contains("unwrap")),
        "{:?}",
        f.path
    );
}

#[test]
fn sa009_fires_on_unratcheted_panic_reaching_serve_api() {
    // The serve crate's public surface is ratcheted like everyone
    // else's: a new panic-reachable public fn that nobody added to
    // SA009-panic-reach.txt must fire, so service-layer panics cannot
    // sneak past the supervision story unreviewed.
    let mut ws = workspace();
    let file = "crates/serve/src/protocol.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated_serve_api(line: &str) -> u64 {{ mutated_parse(line) }}\n\
             fn mutated_parse(line: &str) -> u64 {{ line.parse().unwrap() }}\n"
        )
    });
    let found = findings_of(
        &ws,
        Box::new(passes::panic_reach::PanicReachPass),
        "SA009",
        file,
    );
    let f = found
        .iter()
        .find(|f| f.message.contains("mutated_serve_api"))
        .unwrap_or_else(|| panic!("{found:?}"));
    assert!(
        f.path.iter().any(|hop| hop.contains("mutated_parse")),
        "{:?}",
        f.path
    );
}

#[test]
fn sa010_fires_on_budget_less_flow_with_call_path() {
    let mut ws = workspace();
    let file = "crates/core/src/classes.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated_entry(m: &mut hyde_bdd::Bdd, a: hyde_bdd::Ref, \
             budget: &hyde_guard::Budget) -> hyde_bdd::Ref {{\n\
             \x20   mutated_work(m, a)\n}}\n\
             fn mutated_work(m: &mut hyde_bdd::Bdd, a: hyde_bdd::Ref) -> hyde_bdd::Ref {{\n\
             \x20   m.not(a)\n}}\n"
        )
    });
    let found = findings_of(
        &ws,
        Box::new(passes::budget_flow::BudgetFlowPass),
        "SA010",
        file,
    );
    let f = found
        .iter()
        .find(|f| f.message.contains("mutated_work"))
        .unwrap_or_else(|| panic!("{found:?}"));
    assert!(
        f.path.iter().any(|hop| hop.contains("mutated_entry")),
        "the path must start at the Budget-accepting entry: {:?}",
        f.path
    );
}

#[test]
fn sa011_fires_on_impure_worker_closure() {
    let mut ws = workspace();
    let file = "crates/core/src/varpart.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated_par(items: &[u32]) -> Vec<u32> {{\n\
             \x20   let mut acc: Vec<u32> = Vec::new();\n\
             \x20   crate::parallel::map_chunked(\"sa.lex\", items, 2, |x| {{\n\
             \x20       acc.push(*x);\n\
             \x20       *x + 1\n\
             \x20   }})\n}}\n"
        )
    });
    assert!(fires(
        &ws,
        Box::new(passes::par_merge::ParMergePass),
        "SA011",
        file
    ));
}

#[test]
fn sa011_fires_on_impure_stealing_worker() {
    // The work-stealing scheduler is the primitive the chunked wrappers
    // delegate to; direct callers get the same worker-purity checks, so
    // the pass keeps firing even if the wrappers disappear.
    let mut ws = workspace();
    let file = "crates/core/src/varpart.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\npub fn mutated_steal(items: &[u32]) -> Vec<u32> {{\n\
             \x20   let seen = std::sync::Mutex::new(Vec::new());\n\
             \x20   crate::parallel::map_stealing_init(\"sa.lex\", items, 2, || (), |_, x| {{\n\
             \x20       seen.lock().unwrap().push(*x);\n\
             \x20       *x + 1\n\
             \x20   }})\n}}\n"
        )
    });
    assert!(fires(
        &ws,
        Box::new(passes::par_merge::ParMergePass),
        "SA011",
        file
    ));
}

#[test]
fn sa012_fires_on_swallowed_result() {
    let mut ws = workspace();
    let file = "crates/sat/src/solver.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_swallow() {{ std::fs::remove_file(\"x\").ok(); }}\n")
    });
    assert!(fires(
        &ws,
        Box::new(passes::swallow::SwallowPass),
        "SA012",
        file
    ));
}

#[test]
fn sa013_fires_on_injected_stale_directive() {
    let mut ws = workspace();
    let file = "crates/sat/src/solver.rs";
    mutate_file(&mut ws, file, |t| {
        format!(
            "{t}\n// sa:allow(SA001): mutated directive suppressing nothing\n\
             pub fn mutated_nothing() {{}}\n"
        )
    });
    let mut r = Registry::empty();
    r.register(Box::new(passes::determinism::DeterminismPass));
    r.register(Box::new(passes::suppressions::SuppressionsPass {
        known_codes: Registry::with_defaults().all_codes(),
    }));
    let report = r.run(&ws);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA013" && f.file == file && f.message.contains("SA001")),
        "{:?}",
        report.findings
    );
}

#[test]
fn baseline_diff_surfaces_only_the_seeded_finding() {
    // The clean tree's own report is an empty-diff baseline; a seeded
    // violation shows up as the one new deny.
    let clean = workspace();
    let registry = Registry::with_defaults();
    let baseline = hyde_analyze::baseline::Baseline::parse(&registry.run(&clean).to_json())
        .expect("own report parses as baseline");
    let mut mutated = clean.clone();
    let file = "crates/bdd/src/manager.rs";
    mutate_file(&mut mutated, file, |t| {
        format!("{t}\npub fn mutated_now() -> std::time::Instant {{ std::time::Instant::now() }}\n")
    });
    let report = registry.run(&mutated);
    let new = baseline.new_denies(&report);
    assert_eq!(new.len(), 1, "{new:?}");
    assert_eq!(new[0].code, "SA002");
    assert!(new[0].file.contains(file));
}

#[test]
fn sa005_fires_on_renamed_span() {
    let mut ws = workspace();
    let file = "crates/map/src/flow.rs";
    mutate_file(&mut ws, file, |t| {
        assert!(
            t.contains("map.outputs"),
            "expected flow.rs to open map.outputs"
        );
        t.replace("map.outputs", "map.mutated")
    });
    // Three facets at once: the literal is undocumented, the phase fn no
    // longer opens its documented span, and `map.outputs` goes unopened.
    assert!(fires(&ws, Box::new(passes::obs::ObsPass), "SA005", file));
    assert!(fires(
        &ws,
        Box::new(passes::obs::ObsPass),
        "SA005",
        "DESIGN.md"
    ));
}

#[test]
fn sa005_fires_on_renamed_histogram_family() {
    let mut ws = workspace();
    let file = "crates/bench/src/perf.rs";
    mutate_file(&mut ws, file, |t| {
        assert!(
            t.contains("bench.circuit_wall_us"),
            "expected perf.rs to record bench.circuit_wall_us"
        );
        t.replace("bench.circuit_wall_us", "bench.mutated_wall_us")
    });
    // Both directions: the renamed literal is undocumented, and the
    // documented `bench.circuit_wall_us` family is no longer recorded
    // anywhere in its owning crate.
    assert!(fires(&ws, Box::new(passes::obs::ObsPass), "SA005", file));
    assert!(fires(
        &ws,
        Box::new(passes::obs::ObsPass),
        "SA005",
        "DESIGN.md"
    ));
}

#[test]
fn sa006_fires_on_injected_counter() {
    let mut ws = workspace();
    let file = "crates/sat/src/solver.rs";
    mutate_file(&mut ws, file, |t| {
        format!("{t}\npub fn mutated_counter() {{ hyde_obs::counter(\"mutated.counter\", 1); }}\n")
    });
    assert!(fires(&ws, Box::new(passes::obs::ObsPass), "SA006", file));
}

#[test]
fn sa007_fires_on_dropped_design_row() {
    let mut ws = workspace();
    let design = ws.design.take().expect("DESIGN.md present");
    assert!(design.contains("HY504"), "expected HY504 documented");
    ws.design = Some(design.replace("HY504", "HYxxx"));
    let mut r = Registry::empty();
    r.register(Box::new(passes::diag::DiagRegistryPass));
    let report = r.run(&ws);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA007" && f.message.contains("HY504")),
        "{:?}",
        report.findings
    );
}

#[test]
fn sa008_fires_on_dropped_feature_forward() {
    let mut ws = workspace();
    let text = std::fs::read_to_string(root().join("Cargo.toml")).expect("root manifest");
    assert!(
        text.contains("\"hyde-verify/strict-checks\""),
        "expected the root strict-checks chain to forward hyde-verify"
    );
    let broken = text.replace(
        "\"hyde-verify/strict-checks\"",
        "\"hyde-core/strict-checks\"",
    );
    let pos = ws
        .manifests
        .iter()
        .position(|m| m.path == "Cargo.toml")
        .expect("root manifest in workspace");
    ws.manifests[pos] = manifest::parse("Cargo.toml", &broken);
    let mut r = Registry::empty();
    r.register(Box::new(passes::features::FeatureHygienePass));
    let report = r.run(&ws);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA008" && f.message.contains("hyde-verify/strict-checks")),
        "{:?}",
        report.findings
    );
}
