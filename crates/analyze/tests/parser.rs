//! Parser corpus and the tiling property test.
//!
//! The parser is *total*: it never fails, and the top-level item spans
//! tile the token stream exactly — no gaps, no overlaps. The corpus
//! pins the shapes the passes depend on (generics, trait impls, nested
//! closures, raw identifiers, macro bodies); the property test runs the
//! tiling invariant over every file of the real workspace, so any
//! future syntax the parser mishandles shows up as a hole here first.

use hyde_analyze::ast::{self, Expr, Item, ItemKind};
use hyde_analyze::source::SourceFile;
use hyde_analyze::workspace::Workspace;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn parse(src: &str) -> SourceFile {
    SourceFile::new("crates/core/src/x.rs", src)
}

/// Collects `(owner, fn name)` pairs from a parsed file.
fn fn_names(file: &SourceFile) -> Vec<(Option<String>, String)> {
    let mut out = Vec::new();
    ast::visit_fns(&file.ast.items, &mut |owner, decl| {
        out.push((owner.map(str::to_owned), decl.name.clone()));
    });
    out
}

#[test]
fn corpus_generics_and_where_clauses() {
    let f = parse(
        "pub fn map_chunked<T: Sync, R: Send>(label: &str, items: &[T]) -> Vec<R>\n\
         where R: Clone {\n\
             helper(items)\n\
         }\n\
         fn helper<T>(items: &[T]) -> Vec<T> { Vec::new() }\n",
    );
    let names = fn_names(&f);
    assert_eq!(names.len(), 2, "{names:?}");
    assert_eq!(names[0].1, "map_chunked");
    // The generic args must not leak into the call's path segments.
    let mut calls = Vec::new();
    ast::visit_fns(&f.ast.items, &mut |_, decl| {
        if let Some(body) = &decl.body {
            ast::visit(&body.exprs, &mut |e| {
                if let Expr::Call { path, .. } = e {
                    calls.push(path.join("::"));
                }
            });
        }
    });
    assert!(calls.contains(&"helper".to_owned()), "{calls:?}");
}

#[test]
fn corpus_trait_impls_and_bodiless_methods() {
    let f = parse(
        "pub trait Pass {\n\
             fn name(&self) -> &'static str;\n\
             fn run(&self) { self.name(); }\n\
         }\n\
         pub struct P;\n\
         impl Pass for P {\n\
             fn name(&self) -> &'static str { \"p\" }\n\
         }\n",
    );
    let names = fn_names(&f);
    assert!(
        names.contains(&(Some("Pass".to_owned()), "name".to_owned())),
        "{names:?}"
    );
    assert!(
        names.contains(&(Some("P".to_owned()), "name".to_owned())),
        "{names:?}"
    );
    // The bodiless declaration parses with `body: None`.
    let mut bodiless = 0;
    ast::visit_fns(&f.ast.items, &mut |_, decl| {
        if decl.body.is_none() {
            bodiless += 1;
        }
    });
    assert_eq!(bodiless, 1);
}

#[test]
fn corpus_nested_closures() {
    let f = parse(
        "pub fn f(items: &[u32]) -> Vec<u32> {\n\
             items.iter().map(|x| {\n\
                 let g = |y: u32| y + 1;\n\
                 g(*x)\n\
             }).collect()\n\
         }\n",
    );
    let mut closures = 0;
    let mut inner_params: Vec<String> = Vec::new();
    ast::visit_fns(&f.ast.items, &mut |_, decl| {
        if let Some(body) = &decl.body {
            ast::visit(&body.exprs, &mut |e| {
                if let Expr::Closure { params, .. } = e {
                    closures += 1;
                    inner_params.extend(params.iter().cloned());
                }
            });
        }
    });
    assert_eq!(closures, 2, "outer |x| and inner |y|");
    assert!(inner_params.contains(&"x".to_owned()), "{inner_params:?}");
    assert!(inner_params.contains(&"y".to_owned()), "{inner_params:?}");
}

#[test]
fn corpus_raw_identifiers_and_macro_bodies() {
    let f = parse(
        "pub fn r#match(r#type: u32) -> u32 {\n\
             let msg = format!(\"got {}\", helper(r#type));\n\
             msg.len() as u32\n\
         }\n\
         fn helper(x: u32) -> u32 { x }\n",
    );
    let names = fn_names(&f);
    assert_eq!(names.len(), 2, "{names:?}");
    // Calls inside macro arguments still show up.
    let mut saw_helper_call = false;
    ast::visit_fns(&f.ast.items, &mut |_, decl| {
        if let Some(body) = &decl.body {
            ast::visit(&body.exprs, &mut |e| {
                if let Expr::Call { path, .. } = e {
                    saw_helper_call |= path.last().is_some_and(|s| s == "helper");
                }
            });
        }
    });
    assert!(saw_helper_call, "call inside format! argument not found");
}

#[test]
fn corpus_macro_rules_definitions_become_filler() {
    // A macro_rules! body is full of token soup (`$x:expr`, nested
    // braces); it must become an `Other` item without derailing the
    // items after it.
    let f = parse(
        "macro_rules! span {\n\
             ($name:expr) => {{ $crate::enter($name) }};\n\
         }\n\
         pub fn after() {}\n",
    );
    let names = fn_names(&f);
    assert_eq!(names, vec![(None, "after".to_owned())], "{names:?}");
}

/// Asserts `items` tile `lo..=hi` exactly, recursing into mods/impls
/// (children must stay inside the parent's span).
fn assert_tiles(items: &[Item], lo: usize, hi: usize, path: &str) {
    let mut next = lo;
    for item in items {
        assert_eq!(
            item.span.0, next,
            "{path}: gap or overlap before token {next} (item {:?})",
            item.kind
        );
        assert!(
            item.span.1 >= item.span.0 && item.span.1 <= hi,
            "{path}: item span {:?} escapes parent 0..={hi}",
            item.span
        );
        if let ItemKind::Mod { items: inner, .. } = &item.kind {
            for child in inner {
                assert!(
                    child.span.0 >= item.span.0 && child.span.1 <= item.span.1,
                    "{path}: mod child {:?} outside parent {:?}",
                    child.span,
                    item.span
                );
            }
        }
        next = item.span.1 + 1;
    }
    assert_eq!(next, hi + 1, "{path}: items stop before the last token");
}

#[test]
fn item_spans_tile_every_workspace_file() {
    let ws = Workspace::from_root(&root()).expect("workspace readable");
    assert!(ws.files.len() > 100, "workspace discovery broke");
    for file in &ws.files {
        let n = file.toks().len();
        if n == 0 {
            assert!(
                file.ast.items.is_empty(),
                "{}: items without tokens",
                file.path
            );
            continue;
        }
        assert_tiles(&file.ast.items, 0, n - 1, &file.path);
    }
}
