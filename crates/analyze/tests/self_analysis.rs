//! Self-hosting gate: the analyzer runs over the real workspace —
//! including its own crate — and must come back clean. This is the same
//! check `cargo xtask analyze` and CI enforce; failing here means a
//! change landed without updating the ratchets, taxonomies or allows.

use hyde_analyze::registry::Registry;
use hyde_analyze::workspace::Workspace;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_analyzes_clean() {
    let ws = Workspace::from_root(&root()).expect("workspace readable");
    assert!(
        ws.files.len() > 100,
        "suspiciously few files ({}) — did workspace discovery break?",
        ws.files.len()
    );
    assert!(ws.design.is_some(), "DESIGN.md must be discovered");
    assert!(
        ws.ratchet(hyde_analyze::passes::panic_surface::RATCHET_FILE)
            .is_some(),
        "SA003 ratchet file must be committed"
    );
    let report = Registry::with_defaults().run(&ws);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.clean(),
        "the workspace must analyze clean; findings:\n{}",
        rendered.join("\n")
    );
    // The workspace genuinely relies on allow directives; if this drops
    // to zero the directive parser has silently stopped matching.
    assert!(
        report.allowed() > 0,
        "expected at least one sa:allow suppression in the workspace"
    );
}

#[test]
fn analyze_root_and_json_roundtrip() {
    let report = hyde_analyze::analyze_root(&root()).expect("analysis runs");
    assert!(report.clean());
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"hyde-sa-v1\""));
    assert!(json.contains("\"pass\": \"determinism\""));
    assert!(json.contains("\"pass\": \"feature-hygiene\""));
}

#[test]
fn default_registry_covers_the_documented_codes() {
    let codes = Registry::with_defaults().all_codes();
    for expected in [
        "SA001", "SA002", "SA003", "SA004", "SA005", "SA006", "SA007", "SA008",
    ] {
        assert!(codes.contains(&expected), "missing {expected}");
    }
    assert_eq!(Registry::with_defaults().pass_list().len(), 6);
}
