//! Self-hosting gate: the analyzer runs over the real workspace —
//! including its own crate — and must come back clean. This is the same
//! check `cargo xtask analyze` and CI enforce; failing here means a
//! change landed without updating the ratchets, taxonomies or allows.

use hyde_analyze::registry::Registry;
use hyde_analyze::workspace::Workspace;
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn the_workspace_analyzes_clean() {
    let ws = Workspace::from_root(&root()).expect("workspace readable");
    assert!(
        ws.files.len() > 100,
        "suspiciously few files ({}) — did workspace discovery break?",
        ws.files.len()
    );
    assert!(ws.design.is_some(), "DESIGN.md must be discovered");
    assert!(
        ws.ratchet(hyde_analyze::passes::panic_surface::RATCHET_FILE)
            .is_some(),
        "SA003 ratchet file must be committed"
    );
    assert!(
        ws.ratchet(hyde_analyze::passes::panic_reach::RATCHET_FILE)
            .is_some(),
        "SA009 ratchet file must be committed"
    );
    let report = Registry::with_defaults().run(&ws);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.clean(),
        "the workspace must analyze clean; findings:\n{}",
        rendered.join("\n")
    );
    // The workspace genuinely relies on allow directives; if this drops
    // to zero the directive parser has silently stopped matching.
    assert!(
        report.allowed() > 0,
        "expected at least one sa:allow suppression in the workspace"
    );
}

#[test]
fn analyze_root_and_json_roundtrip() {
    let report = hyde_analyze::analyze_root(&root()).expect("analysis runs");
    assert!(report.clean());
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"hyde-sa-v2\""));
    assert!(json.contains("\"pass\": \"determinism\""));
    assert!(json.contains("\"pass\": \"feature-hygiene\""));
    assert!(json.contains("\"pass\": \"panic-reach\""));
    assert!(json.contains("\"pass\": \"budget-flow\""));
    assert!(json.contains("\"pass\": \"par-merge\""));
    // The committed report is a valid baseline for itself.
    let baseline = hyde_analyze::baseline::Baseline::parse(&json).expect("self-baseline parses");
    assert!(baseline.new_denies(&report).is_empty());
}

#[test]
fn default_registry_covers_the_documented_codes() {
    let codes = Registry::with_defaults().all_codes();
    for expected in [
        "SA001", "SA002", "SA003", "SA004", "SA005", "SA006", "SA007", "SA008", "SA009", "SA010",
        "SA011", "SA012", "SA013",
    ] {
        assert!(codes.contains(&expected), "missing {expected}");
    }
    assert_eq!(Registry::with_defaults().pass_list().len(), 11);
}

/// Satellite 1's acceptance test: lexing/parsing through `map_chunked`
/// must merge in input order, so the rendered report — JSON included —
/// is byte-identical for any worker count.
#[test]
fn single_and_multi_threaded_analysis_are_byte_identical() {
    let ws1 = Workspace::from_root_with_threads(&root(), 1).expect("1-thread workspace");
    let ws8 = Workspace::from_root_with_threads(&root(), 8).expect("8-thread workspace");
    let paths1: Vec<&str> = ws1.files.iter().map(|f| f.path.as_str()).collect();
    let paths8: Vec<&str> = ws8.files.iter().map(|f| f.path.as_str()).collect();
    assert_eq!(paths1, paths8, "file order must not depend on threads");
    let json1 = Registry::with_defaults().run(&ws1).to_json();
    let json8 = Registry::with_defaults().run(&ws8).to_json();
    assert_eq!(json1, json8, "ANALYZE.json must be thread-count invariant");
}
