//! Per-code fixtures: for every SA code, one synthetic workspace that
//! violates the invariant and one that satisfies it, assembled with
//! [`Workspace::from_sources`] so nothing touches the filesystem.

use hyde_analyze::passes;
use hyde_analyze::registry::{Pass, Registry};
use hyde_analyze::report::Report;
use hyde_analyze::workspace::Workspace;

fn run_pass(pass: Box<dyn Pass>, ws: &Workspace) -> Report {
    let mut r = Registry::empty();
    r.register(pass);
    r.run(ws)
}

fn has(report: &Report, code: &str, file_contains: &str) -> bool {
    report
        .findings
        .iter()
        .any(|f| f.code == code && f.file.contains(file_contains))
}

#[test]
fn sa001_flags_unordered_iteration_and_respects_safe_sinks() {
    let bad = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             m.values().copied().collect()\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::determinism::DeterminismPass), &bad);
    assert!(has(&r, "SA001", "crates/core/src/x.rs"), "{:?}", r.findings);

    let clean = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u32>) -> usize {\n\
             m.values().filter(|&&v| v > 0).count()\n\
         }\n\
         pub fn g(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             // sa:allow(SA001): sorted immediately after collection\n\
             let mut v: Vec<u32> = m.values().copied().collect();\n\
             v.sort_unstable();\n\
             v\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::determinism::DeterminismPass), &clean);
    assert!(r.clean(), "{:?}", r.findings);
    assert_eq!(r.allowed(), 1, "the directive should register as allowed");
}

#[test]
fn sa001_ignores_non_result_affecting_crates_and_tests() {
    let ws = Workspace::from_sources(&[
        (
            "crates/bench/src/x.rs",
            "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.values().copied().collect() }\n",
        ),
        (
            "crates/core/tests/t.rs",
            "use std::collections::HashMap;\n\
             #[test]\n\
             fn t() { let m: HashMap<u32, u32> = HashMap::new(); for v in m.values() { let _ = v; } }\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::determinism::DeterminismPass), &ws);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa002_flags_clock_reads() {
    let bad = Workspace::from_sources(&[(
        "crates/bdd/src/x.rs",
        "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )]);
    let r = run_pass(Box::new(passes::determinism::DeterminismPass), &bad);
    assert!(has(&r, "SA002", "crates/bdd/src/x.rs"), "{:?}", r.findings);

    let clean = Workspace::from_sources(&[(
        "crates/bdd/src/x.rs",
        "// sa:allow(SA002): elapsed time is reported, never result-affecting\n\
         pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
    )]);
    let r = run_pass(Box::new(passes::determinism::DeterminismPass), &clean);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa002_string_contents_never_count() {
    let ws = Workspace::from_sources(&[(
        "crates/sat/src/x.rs",
        "pub fn f() -> &'static str { \"Instant::now() env::var thread::current\" }\n",
    )]);
    let r = run_pass(Box::new(passes::determinism::DeterminismPass), &ws);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa003_ratchets_panic_surface() {
    let file = "crates/core/src/x.rs";
    let src = "pub fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() + v[0] }\n";
    let over = Workspace::from_sources(&[
        (file, src),
        (
            "crates/analyze/ratchets/SA003-panic-surface.txt",
            "1 crates/core/src/x.rs\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::panic_surface::PanicSurfacePass), &over);
    assert!(has(&r, "SA003", file), "{:?}", r.findings);

    let at_cap = Workspace::from_sources(&[
        (file, src),
        (
            "crates/analyze/ratchets/SA003-panic-surface.txt",
            "2 crates/core/src/x.rs\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::panic_surface::PanicSurfacePass), &at_cap);
    assert!(r.clean(), "{:?}", r.findings);

    let under_cap = Workspace::from_sources(&[
        (file, src),
        (
            "crates/analyze/ratchets/SA003-panic-surface.txt",
            "5 crates/core/src/x.rs\n",
        ),
    ]);
    let r = run_pass(
        Box::new(passes::panic_surface::PanicSurfacePass),
        &under_cap,
    );
    assert!(r.clean());
    assert!(
        r.notes.iter().any(|n| n.contains("ratcheting")),
        "under-cap should suggest ratcheting down: {:?}",
        r.notes
    );
}

#[test]
fn sa003_missing_and_stale_ratchet_entries_are_findings() {
    let missing = Workspace::from_sources(&[("crates/core/src/x.rs", "pub fn f() {}\n")]);
    let r = run_pass(Box::new(passes::panic_surface::PanicSurfacePass), &missing);
    assert!(
        has(&r, "SA003", "SA003-panic-surface.txt"),
        "{:?}",
        r.findings
    );

    let stale = Workspace::from_sources(&[
        ("crates/core/src/x.rs", "pub fn f() {}\n"),
        (
            "crates/analyze/ratchets/SA003-panic-surface.txt",
            "3 crates/core/src/deleted.rs\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::panic_surface::PanicSurfacePass), &stale);
    assert!(
        r.findings.iter().any(|f| f.message.contains("stale")),
        "{:?}",
        r.findings
    );
}

#[test]
fn sa004_shim_is_silent() {
    // SA004 is superseded by SA010; what used to fire stays quiet.
    let ws = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn boom(bdd: &mut Bdd, a: Ref, b: Ref, c: Ref) -> Ref { bdd.ite(a, b, c) }\n",
    )]);
    let r = run_pass(Box::new(passes::budget::BudgetPass), &ws);
    assert!(r.clean(), "{:?}", r.findings);
}

/// An empty (header-only) SA009 ratchet file.
const SA009_EMPTY: (&str, &str) = (
    "crates/analyze/ratchets/SA009-panic-reach.txt",
    "# Format: one entry id per line.\n",
);

#[test]
fn sa009_flags_unratcheted_panic_reach_with_call_path() {
    let src = "pub fn entry(v: &[u32]) -> u32 { helper(v) }\n\
         fn helper(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";
    let bad = Workspace::from_sources(&[("crates/core/src/x.rs", src), SA009_EMPTY]);
    let r = run_pass(Box::new(passes::panic_reach::PanicReachPass), &bad);
    let f = r
        .findings
        .iter()
        .find(|f| f.code == "SA009" && f.file == "crates/core/src/x.rs")
        .unwrap_or_else(|| panic!("{:?}", r.findings));
    assert!(f.message.contains("entry"), "{}", f.message);
    assert!(
        f.path.iter().any(|hop| hop.contains("helper")),
        "call path should pass through helper: {:?}",
        f.path
    );
    assert!(
        f.path.last().is_some_and(|hop| hop.contains("unwrap")),
        "call path should end at the panic site: {:?}",
        f.path
    );

    let ratcheted = Workspace::from_sources(&[
        ("crates/core/src/x.rs", src),
        (
            "crates/analyze/ratchets/SA009-panic-reach.txt",
            "crates/core/src/x.rs::entry\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::panic_reach::PanicReachPass), &ratcheted);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa009_missing_ratchet_and_stale_entries_are_findings() {
    let missing = Workspace::from_sources(&[("crates/core/src/x.rs", "pub fn f() {}\n")]);
    let r = run_pass(Box::new(passes::panic_reach::PanicReachPass), &missing);
    assert!(
        has(&r, "SA009", "SA009-panic-reach.txt"),
        "{:?}",
        r.findings
    );

    let stale = Workspace::from_sources(&[
        ("crates/core/src/x.rs", "pub fn f() {}\n"),
        (
            "crates/analyze/ratchets/SA009-panic-reach.txt",
            "crates/core/src/gone.rs::vanished\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::panic_reach::PanicReachPass), &stale);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA009" && f.message.contains("stale")),
        "{:?}",
        r.findings
    );
}

#[test]
fn sa009_allow_directive_removes_the_site() {
    let ws = Workspace::from_sources(&[
        (
            "crates/core/src/x.rs",
            "pub fn entry(v: &[u32]) -> u32 {\n\
                 // sa:allow(SA009): length checked by the caller's contract\n\
                 v.first().copied().unwrap()\n\
             }\n",
        ),
        SA009_EMPTY,
    ]);
    let r = run_pass(Box::new(passes::panic_reach::PanicReachPass), &ws);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa010_flags_budget_less_flow_with_call_path() {
    let bad = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn entry(bdd: &mut Bdd, a: Ref, budget: &Budget) -> Ref { helper(bdd, a) }\n\
         fn helper(bdd: &mut Bdd, a: Ref) -> Ref { bdd.ite(a, a, a) }\n",
    )]);
    let r = run_pass(Box::new(passes::budget_flow::BudgetFlowPass), &bad);
    let f = r
        .findings
        .iter()
        .find(|f| f.code == "SA010" && f.file == "crates/core/src/x.rs")
        .unwrap_or_else(|| panic!("{:?}", r.findings));
    assert!(f.message.contains("helper"), "{}", f.message);
    assert!(
        f.path.iter().any(|hop| hop.contains("entry")),
        "call path should start at the Budget-accepting entry: {:?}",
        f.path
    );

    let clean = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn entry(bdd: &mut Bdd, a: Ref, budget: &Budget) -> Ref {\n\
             helper(bdd, a, budget)\n\
         }\n\
         fn helper(bdd: &mut Bdd, a: Ref, budget: &Budget) -> Ref { bdd.ite(a, a, a) }\n",
    )]);
    let r = run_pass(Box::new(passes::budget_flow::BudgetFlowPass), &clean);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa010_ignores_fns_unreachable_from_budget_entries() {
    // No Budget-accepting entry point anywhere: nothing to enforce.
    let ws = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "fn helper(bdd: &mut Bdd, a: Ref) -> Ref { bdd.ite(a, a, a) }\n",
    )]);
    let r = run_pass(Box::new(passes::budget_flow::BudgetFlowPass), &ws);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa011_flags_impure_worker_closures() {
    let bad = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f(items: &[u32]) -> Vec<u32> {\n\
             let mut acc: Vec<u32> = Vec::new();\n\
             hyde_core::parallel::map_chunked(\"sa.lex\", items, 2, |x| {\n\
                 acc.push(*x);\n\
                 *x + 1\n\
             })\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::par_merge::ParMergePass), &bad);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA011" && f.message.contains("acc")),
        "{:?}",
        r.findings
    );

    let clean = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f(items: &[u32]) -> Vec<u32> {\n\
             hyde_core::parallel::map_chunked(\"sa.lex\", items, 2, |x| {\n\
                 let mut local: Vec<u32> = Vec::new();\n\
                 local.push(*x);\n\
                 local[0] + 1\n\
             })\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::par_merge::ParMergePass), &clean);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa011_flags_float_accumulation_and_unordered_collections() {
    let ws = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f(items: &[f64], mut total: f64) -> Vec<f64> {\n\
             hyde_core::parallel::map_chunked(\"sa.lex\", items, 2, |x| {\n\
                 total += *x * 0.5;\n\
                 *x\n\
             })\n\
         }\n\
         pub fn g(items: &[u32]) -> Vec<usize> {\n\
             hyde_core::parallel::map_chunked(\"sa.lex\", items, 2, |x| {\n\
                 let m: std::collections::HashSet<u32> = std::collections::HashSet::new();\n\
                 m.len() + *x as usize\n\
             })\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::par_merge::ParMergePass), &ws);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA011" && f.message.contains("float")),
        "{:?}",
        r.findings
    );
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA011" && f.message.contains("HashSet")),
        "{:?}",
        r.findings
    );
}

#[test]
fn sa012_flags_swallowed_results() {
    let bad = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f(w: &mut dyn std::io::Write) {\n\
             let _ = writeln!(w, \"x\");\n\
         }\n\
         pub fn g() {\n\
             std::fs::remove_file(\"x\").ok();\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::swallow::SwallowPass), &bad);
    assert!(
        r.findings.iter().filter(|f| f.code == "SA012").count() == 2,
        "{:?}",
        r.findings
    );

    let clean = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f(x: u32) -> u32 {\n\
             let _ = x;\n\
             let kept = std::fs::remove_file(\"x\").ok();\n\
             kept.map_or(0, |()| x)\n\
         }\n",
    )]);
    let r = run_pass(Box::new(passes::swallow::SwallowPass), &clean);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa012_ignores_benches_and_non_result_affecting_crates() {
    let ws = Workspace::from_sources(&[(
        "crates/bench/src/x.rs",
        "pub fn f() { std::fs::remove_file(\"x\").ok(); }\n",
    )]);
    let r = run_pass(Box::new(passes::swallow::SwallowPass), &ws);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa013_warns_on_stale_and_unknown_directives() {
    let mut r = Registry::empty();
    r.register(Box::new(passes::determinism::DeterminismPass));
    r.register(Box::new(passes::suppressions::SuppressionsPass {
        known_codes: vec!["SA001", "SA002", "SA013"],
    }));
    let ws = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "// sa:allow(SA001): nothing here iterates anything\n\
         pub fn f() -> u32 { 1 }\n\
         // sa:allow(SA999): no such code\n\
         pub fn g() -> u32 { 2 }\n",
    )]);
    let report = r.run(&ws);
    // Warnings never fail the run.
    assert!(report.clean(), "{:?}", report.findings);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA013" && f.message.contains("SA001")),
        "{:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "SA013" && f.message.contains("no registered pass")),
        "{:?}",
        report.findings
    );

    // A directive that fires is not stale.
    let used = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             // sa:allow(SA001): fixture exercises a used directive\n\
             m.values().copied().collect()\n\
         }\n",
    )]);
    let report = r.run(&used);
    assert!(
        !report.findings.iter().any(|f| f.code == "SA013"),
        "{:?}",
        report.findings
    );
}

#[test]
fn sa005_flags_undocumented_span() {
    let bad = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f() { let _g = hyde_obs::span!(\"bogus.span\"); }\n",
    )]);
    let r = run_pass(Box::new(passes::obs::ObsPass), &bad);
    assert!(has(&r, "SA005", "crates/core/src/x.rs"), "{:?}", r.findings);

    let clean = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f() { let _g = hyde_obs::span!(\"chart.build\"); }\n",
    )]);
    let r = run_pass(Box::new(passes::obs::ObsPass), &clean);
    assert!(
        !has(&r, "SA005", "crates/core/src/x.rs"),
        "{:?}",
        r.findings
    );
}

#[test]
fn sa006_flags_undocumented_counter() {
    let bad = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f() { hyde_obs::counter(\"bogus.counter\", 1); }\n",
    )]);
    let r = run_pass(Box::new(passes::obs::ObsPass), &bad);
    assert!(has(&r, "SA006", "crates/core/src/x.rs"), "{:?}", r.findings);

    let clean = Workspace::from_sources(&[(
        "crates/core/src/x.rs",
        "pub fn f() { hyde_obs::counter(\"decompose.steps\", 1); }\n",
    )]);
    let r = run_pass(Box::new(passes::obs::ObsPass), &clean);
    assert!(
        !has(&r, "SA006", "crates/core/src/x.rs"),
        "{:?}",
        r.findings
    );
}

/// A minimal consistent diag universe for the SA007 fixtures.
const DIAG_DECL: &str = "pub enum Code { NetworkCycle }\n\
    impl Code {\n\
        pub fn as_str(self) -> &'static str {\n\
            match self { Code::NetworkCycle => \"HY001\" }\n\
        }\n\
    }\n";
const DIAG_TEST: &str = "#[test]\n\
    fn exercises_codes() {\n\
        assert_eq!(Code::NetworkCycle.as_str(), \"HY001\");\n\
        let _all_sa = \"SA001 SA002 SA003 SA004 SA005 SA006 SA007 SA008 \
    SA009 SA010 SA011 SA012 SA013\";\n\
    }\n";
const DESIGN_OK: &str = "HY001 network cycle.\n\
    SA001 SA002 SA003 SA004 SA005 SA006 SA007 SA008 SA009 SA010 SA011 \
    SA012 SA013 analyzer codes.\n";

#[test]
fn sa007_flags_undocumented_and_untested_codes() {
    let undocumented = Workspace::from_sources(&[
        ("crates/logic/src/diag.rs", DIAG_DECL),
        ("crates/logic/tests/diag.rs", DIAG_TEST),
        (
            "DESIGN.md",
            "SA001 SA002 SA003 SA004 SA005 SA006 SA007 SA008 SA009 SA010 \
             SA011 SA012 SA013\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::diag::DiagRegistryPass), &undocumented);
    assert!(
        r.findings.iter().any(|f| f.code == "SA007"
            && f.message.contains("HY001")
            && f.message.contains("undocumented")),
        "{:?}",
        r.findings
    );

    let untested = Workspace::from_sources(&[
        ("crates/logic/src/diag.rs", DIAG_DECL),
        ("DESIGN.md", DESIGN_OK),
    ]);
    let r = run_pass(Box::new(passes::diag::DiagRegistryPass), &untested);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA007" && f.message.contains("not exercised")),
        "{:?}",
        r.findings
    );

    let consistent = Workspace::from_sources(&[
        ("crates/logic/src/diag.rs", DIAG_DECL),
        ("crates/logic/tests/diag.rs", DIAG_TEST),
        ("DESIGN.md", DESIGN_OK),
    ]);
    let r = run_pass(Box::new(passes::diag::DiagRegistryPass), &consistent);
    // The SA codes are documented by DESIGN_OK and exercised by the
    // fixture test string, so the whole universe is consistent.
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa007_flags_stale_doc_rows_and_duplicate_literals() {
    let stale = Workspace::from_sources(&[
        ("crates/logic/src/diag.rs", DIAG_DECL),
        ("crates/logic/tests/diag.rs", DIAG_TEST),
        (
            "DESIGN.md",
            "HY001 and the long-gone HY999.\n\
             SA001 SA002 SA003 SA004 SA005 SA006 SA007 SA008 SA009 SA010 \
             SA011 SA012 SA013\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::diag::DiagRegistryPass), &stale);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA007" && f.message.contains("HY999")),
        "{:?}",
        r.findings
    );

    let duplicated = Workspace::from_sources(&[
        ("crates/logic/src/diag.rs", DIAG_DECL),
        ("crates/logic/tests/diag.rs", DIAG_TEST),
        (
            "crates/core/src/raw.rs",
            "pub fn emit() -> &'static str { \"HY001\" }\n",
        ),
        ("DESIGN.md", DESIGN_OK),
    ]);
    let r = run_pass(Box::new(passes::diag::DiagRegistryPass), &duplicated);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA007" && f.message.contains("2 times")),
        "{:?}",
        r.findings
    );
}

const ROOT_MANIFEST: &str = "[workspace]\nmembers = [\"crates/*\"]\n\
    [workspace.dependencies]\n\
    hyde-obs = { path = \"crates/obs\", default-features = false }\n";
const OBS_MANIFEST: &str = "[package]\nname = \"hyde-obs\"\n\
    [features]\ndefault = [\"rt\"]\nrt = []\n";

#[test]
fn sa008_flags_broken_forwarding_chain() {
    // Violating: dep taken with default features on, and no forward.
    let bad = Workspace::from_sources(&[
        ("Cargo.toml", ROOT_MANIFEST),
        ("crates/obs/Cargo.toml", OBS_MANIFEST),
        (
            "crates/bdd/Cargo.toml",
            "[package]\nname = \"hyde-bdd\"\n\
             [features]\ndefault = [\"obs-rt\"]\nobs-rt = []\n\
             [dependencies]\nhyde-obs = { path = \"../obs\" }\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::features::FeatureHygienePass), &bad);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA008" && f.message.contains("hyde-obs/rt")),
        "{:?}",
        r.findings
    );
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA008" && f.message.contains("default features on")),
        "{:?}",
        r.findings
    );

    let clean = Workspace::from_sources(&[
        ("Cargo.toml", ROOT_MANIFEST),
        ("crates/obs/Cargo.toml", OBS_MANIFEST),
        (
            "crates/bdd/Cargo.toml",
            "[package]\nname = \"hyde-bdd\"\n\
             [features]\ndefault = [\"obs-rt\"]\nobs-rt = [\"hyde-obs/rt\"]\n\
             [dependencies]\nhyde-obs = { workspace = true, default-features = false }\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::features::FeatureHygienePass), &clean);
    assert!(r.clean(), "{:?}", r.findings);
}

#[test]
fn sa008_requires_obs_rt_in_default() {
    let ws = Workspace::from_sources(&[
        ("Cargo.toml", ROOT_MANIFEST),
        ("crates/obs/Cargo.toml", OBS_MANIFEST),
        (
            "crates/bdd/Cargo.toml",
            "[package]\nname = \"hyde-bdd\"\n\
             [features]\nobs-rt = [\"hyde-obs/rt\"]\n\
             [dependencies]\nhyde-obs = { workspace = true, default-features = false }\n",
        ),
    ]);
    let r = run_pass(Box::new(passes::features::FeatureHygienePass), &ws);
    assert!(
        r.findings
            .iter()
            .any(|f| f.code == "SA008" && f.message.contains("default")),
        "{:?}",
        r.findings
    );
}
