//! Retry/backoff and admission-control vocabulary for supervised job
//! execution (`hyde-serve`, `hyde_map::Session`).
//!
//! Both types are plain data with deterministic behaviour:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   *deterministic* jitter. The jitter is drawn from the workspace's
//!   seeded `rand` shim, keyed by `(jitter_seed, job id, attempt)`, so
//!   a retried job sleeps the same amount on every run, platform and
//!   worker count — retries are reproducible the same way chaos faults
//!   are.
//! * [`AdmissionLimits`] — queue-depth and aggregate-node-budget caps
//!   that turn overload into a typed [`Rejected`] (with a
//!   `retry_after` hint) instead of unbounded memory growth.

use rand::{Rng as _, SeedableRng as _};
use std::fmt;
use std::time::Duration;

/// Bounded-attempt retry schedule with exponential backoff and
/// deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts a job gets (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Cap on any single backoff (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Service defaults: 3 attempts, 25 ms base, 1 s cap.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            jitter_seed: 0xDA98,
        }
    }

    /// A single attempt, no retries, no backoff — batch-driver
    /// semantics (`hyde-bench`, `hyde-lint`), where one failure is one
    /// typed error.
    pub fn single_attempt() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Replaces the attempt bound (clamped up to 1).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Replaces the base backoff delay.
    pub fn with_base_delay(mut self, d: Duration) -> Self {
        self.base_delay = d;
        self
    }

    /// Backoff to sleep after failed attempt `attempt` (1-based) of the
    /// job identified by `job`. Exponential in the attempt number,
    /// capped at `max_delay`, plus jitter in `[0, backoff/2]` drawn
    /// from a generator seeded by `(jitter_seed, job, attempt)` — fully
    /// deterministic, so two runs of the same job schedule identically.
    pub fn backoff(&self, job: &str, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        let half_us = (exp.as_micros() as u64) / 2;
        if half_us == 0 {
            return exp;
        }
        // FNV-1a over (seed, job, attempt) keys the jitter stream: the
        // same (policy, job, attempt) always sleeps the same amount.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self
            .jitter_seed
            .to_le_bytes()
            .iter()
            .chain(job.as_bytes())
            .chain(&attempt.to_le_bytes())
        {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(h);
        exp + Duration::from_micros(rng.gen_range(0..=half_us))
    }

    /// Whether a failed `attempt` (1-based) has a retry left.
    pub fn retries_remaining(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }
}

/// Why an admission check rejected a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at its depth cap.
    QueueFull,
    /// Admitting the job would push the aggregate BDD-node budget of
    /// queued work past the cap.
    BudgetSaturated,
    /// The service is draining for shutdown.
    ShuttingDown,
}

impl RejectReason {
    /// Stable lower-case token used in logs and protocol responses.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::BudgetSaturated => "budget-saturated",
            RejectReason::ShuttingDown => "shutting-down",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed admission rejection: backpressure, not failure. The caller is
/// expected to resubmit after `retry_after`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// Why the job was not admitted.
    pub reason: RejectReason,
    /// Suggested resubmission delay.
    pub retry_after: Duration,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejected: {} (retry after {} ms)",
            self.reason,
            self.retry_after.as_millis()
        )
    }
}

impl std::error::Error for Rejected {}

/// Admission-control caps for a bounded job queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum queued (not yet running) jobs.
    pub max_depth: usize,
    /// Maximum aggregate BDD-node budget across queued jobs. Jobs with
    /// no node cap are charged [`AdmissionLimits::DEFAULT_JOB_NODES`].
    pub max_pending_nodes: u64,
}

impl AdmissionLimits {
    /// Node charge for a job whose budget carries no explicit cap.
    pub const DEFAULT_JOB_NODES: u64 = 1 << 22;

    /// Service defaults: 256 queued jobs, 1 G aggregate nodes.
    pub fn standard() -> Self {
        AdmissionLimits {
            max_depth: 256,
            max_pending_nodes: 1 << 30,
        }
    }

    /// Checks whether a job charging `job_nodes` may join a queue that
    /// currently holds `depth` jobs totalling `pending_nodes`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] (with a depth-scaled `retry_after`
    /// hint) when either cap would be exceeded.
    pub fn admit(&self, depth: usize, pending_nodes: u64, job_nodes: u64) -> Result<(), Rejected> {
        let retry_after = Duration::from_millis(25 * (1 + depth as u64 / 8).min(40));
        if depth >= self.max_depth {
            return Err(Rejected {
                reason: RejectReason::QueueFull,
                retry_after,
            });
        }
        if pending_nodes.saturating_add(job_nodes) > self.max_pending_nodes {
            return Err(Rejected {
                reason: RejectReason::BudgetSaturated,
                retry_after,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let p = RetryPolicy::standard();
        let a1 = p.backoff("job-1", 1);
        let a2 = p.backoff("job-1", 2);
        assert_eq!(a1, p.backoff("job-1", 1), "same key, same delay");
        assert_ne!(
            p.backoff("job-1", 1),
            p.backoff("job-2", 1),
            "jitter must vary across jobs"
        );
        // Envelope: base*2^(n-1) <= delay <= 1.5 * base*2^(n-1).
        assert!(a1 >= p.base_delay && a1 <= p.base_delay * 3 / 2, "{a1:?}");
        assert!(a2 >= p.base_delay * 2 && a2 <= p.base_delay * 3, "{a2:?}");
    }

    #[test]
    fn backoff_caps_at_max_delay_envelope() {
        let p = RetryPolicy::standard();
        let late = p.backoff("j", 30);
        assert!(late <= p.max_delay * 3 / 2, "{late:?}");
    }

    #[test]
    fn single_attempt_never_retries_and_never_sleeps() {
        let p = RetryPolicy::single_attempt();
        assert!(!p.retries_remaining(1));
        assert_eq!(p.backoff("j", 1), Duration::ZERO);
    }

    #[test]
    fn admission_rejects_on_depth_and_nodes() {
        let lim = AdmissionLimits {
            max_depth: 2,
            max_pending_nodes: 100,
        };
        assert!(lim.admit(0, 0, 50).is_ok());
        assert!(lim.admit(1, 50, 50).is_ok());
        let full = lim.admit(2, 0, 1).unwrap_err();
        assert_eq!(full.reason, RejectReason::QueueFull);
        assert!(full.retry_after > Duration::ZERO);
        let saturated = lim.admit(1, 60, 50).unwrap_err();
        assert_eq!(saturated.reason, RejectReason::BudgetSaturated);
    }
}
