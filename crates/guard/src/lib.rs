//! Resource governance and resilience for the HYDE pipeline.
//!
//! Roth–Karp decomposition, BDD construction, and the compatible-class
//! encoding search are all worst-case exponential. This crate gives the
//! rest of the workspace a shared vocabulary for bounding that work and
//! for degrading gracefully when a bound is hit:
//!
//! * [`Budget`] — per-run resource limits (wall-clock deadline, BDD node
//!   cap, SAT conflict cap, bound-set candidate cap). A `Budget` is plain
//!   data; each consumer checks the limit it understands and returns a
//!   typed [`OutOfBudget`] instead of growing without bound.
//! * [`Rung`] — the documented fallback ladder. When a rung exhausts its
//!   budget the caller steps **down one rung** rather than aborting:
//!   exact Roth–Karp → BDD-threshold path → Shannon cofactor split →
//!   direct cover. Every step is recorded as a [`DegradationEvent`] and
//!   surfaced through `hyde-obs` counters plus the HY5xx diagnostic
//!   family in `hyde-verify`.
//! * [`Chaos`] — deterministic, seed-driven fault injection
//!   (`HYDE_CHAOS=<seed>`). Injection sites are keyed by *strings*
//!   (circuit and stage names), never by invocation counters, so the
//!   same seed trips the same sites at any `HYDE_THREADS` value.
//!
//! The degradation log is a process-global, mutex-guarded list so that
//! sequential batch drivers (bench, lint) can drain per-circuit events
//! without threading a collector through every call. Events are only
//! recorded from sequential driver code, which keeps the log order
//! deterministic.

pub mod retry;

pub use retry::{AdmissionLimits, RejectReason, Rejected, RetryPolicy};

use std::cell::RefCell;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The resource that a budget check found exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The BDD manager hit its unique-table node cap (or a simulated
    /// allocation failure was injected).
    BddNodes,
    /// The SAT solver exceeded its conflict budget.
    SatConflicts,
    /// The bound-set candidate search exceeded its candidate cap.
    Candidates,
}

impl Resource {
    /// Stable lower-case token used in logs and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Resource::Deadline => "deadline",
            Resource::BddNodes => "bdd-nodes",
            Resource::SatConflicts => "sat-conflicts",
            Resource::Candidates => "candidates",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Typed budget-exhaustion error shared by every guarded stage.
///
/// `injected` distinguishes real exhaustion from chaos-injected
/// exhaustion so reports can tell operators which failures were drills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBudget {
    /// Which resource ran out.
    pub resource: Resource,
    /// The limit that was in force (0 when unknown, e.g. injected).
    pub limit: u64,
    /// True when the exhaustion was injected by the chaos layer.
    pub injected: bool,
}

impl OutOfBudget {
    /// Exhaustion of `resource` at `limit`, observed for real.
    pub fn new(resource: Resource, limit: u64) -> Self {
        OutOfBudget {
            resource,
            limit,
            injected: false,
        }
    }

    /// Chaos-injected exhaustion of `resource`.
    pub fn injected(resource: Resource) -> Self {
        OutOfBudget {
            resource,
            limit: 0,
            injected: true,
        }
    }
}

impl fmt::Display for OutOfBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.injected {
            write!(f, "out of budget: {} (chaos-injected)", self.resource)
        } else {
            write!(f, "out of budget: {} (limit {})", self.resource, self.limit)
        }
    }
}

impl std::error::Error for OutOfBudget {}

/// Resource limits for one pipeline run. All limits are optional; the
/// default is [`Budget::unlimited`], which never trips and adds no
/// measurable overhead to the hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Absolute wall-clock deadline for the run.
    pub deadline: Option<Instant>,
    /// Maximum number of live nodes a BDD manager may allocate.
    pub bdd_nodes: Option<usize>,
    /// Maximum SAT conflicts per solve.
    pub sat_conflicts: Option<u64>,
    /// Maximum bound-set candidates evaluated per decomposition step.
    pub candidates: Option<usize>,
}

impl Budget {
    /// No limits: every check passes.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Production-oriented defaults: generous caps that real circuits in
    /// the 25-circuit suite never hit, but pathological inputs do.
    pub fn standard() -> Self {
        Budget {
            deadline: None,
            bdd_nodes: Some(1 << 22),
            sat_conflicts: Some(200_000),
            candidates: Some(1 << 16),
        }
    }

    /// Replaces the wall-clock deadline with `now + d`.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Instant::now().checked_add(d);
        self
    }

    /// Replaces the BDD node cap.
    pub fn with_bdd_nodes(mut self, cap: usize) -> Self {
        self.bdd_nodes = Some(cap);
        self
    }

    /// Replaces the SAT conflict cap.
    pub fn with_sat_conflicts(mut self, cap: u64) -> Self {
        self.sat_conflicts = Some(cap);
        self
    }

    /// Replaces the bound-set candidate cap.
    pub fn with_candidates(mut self, cap: usize) -> Self {
        self.candidates = Some(cap);
        self
    }

    /// Errors with [`Resource::Deadline`] if the deadline has passed.
    pub fn check_deadline(&self) -> Result<(), OutOfBudget> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(OutOfBudget::new(Resource::Deadline, 0)),
            _ => Ok(()),
        }
    }

    /// Errors with [`Resource::Candidates`] if a step would evaluate
    /// more than the candidate cap.
    pub fn check_candidates(&self, needed: usize) -> Result<(), OutOfBudget> {
        match self.candidates {
            Some(cap) if needed > cap => Err(OutOfBudget::new(Resource::Candidates, cap as u64)),
            _ => Ok(()),
        }
    }
}

/// One rung of the fallback ladder, ordered from most to least exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// Exact Roth–Karp decomposition with full compatible-class encoding.
    Exact,
    /// BDD-threshold path: cut-based decomposition on a node-capped
    /// manager.
    BddThreshold,
    /// Shannon cofactor split: always terminates, no search.
    Shannon,
    /// Direct SOP cover chopped into k-feasible AND/OR trees. The floor
    /// of the ladder; it cannot run out of budget.
    DirectCover,
}

impl Rung {
    /// The next rung down the ladder, or `None` at the floor.
    pub fn next_down(self) -> Option<Rung> {
        match self {
            Rung::Exact => Some(Rung::BddThreshold),
            Rung::BddThreshold => Some(Rung::Shannon),
            Rung::Shannon => Some(Rung::DirectCover),
            Rung::DirectCover => None,
        }
    }

    /// Stable lower-case token used in logs, counters, and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Rung::Exact => "exact",
            Rung::BddThreshold => "bdd-threshold",
            Rung::Shannon => "shannon",
            Rung::DirectCover => "direct-cover",
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A recorded step down the fallback ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Circuit (or other run-level) context, e.g. `"misex1"`.
    pub context: String,
    /// Pipeline stage / output prefix, e.g. `"F2"`.
    pub stage: String,
    /// Rung that ran out of budget.
    pub from: Rung,
    /// Rung the pipeline stepped down to.
    pub to: Rung,
    /// Which resource was exhausted.
    pub resource: Resource,
    /// True when the exhaustion was injected by the chaos layer.
    pub injected: bool,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degrade {}/{}: {} -> {} ({}{})",
            self.context,
            self.stage,
            self.from,
            self.to,
            self.resource,
            if self.injected { ", injected" } else { "" }
        )
    }
}

/// Process-global degradation log. Events are recorded by sequential
/// driver code only, so the order is deterministic for a given input
/// and chaos seed regardless of `HYDE_THREADS`.
static DEGRADATIONS: Mutex<Vec<DegradationEvent>> = Mutex::new(Vec::new());

thread_local! {
    /// Stack of thread-local capture scopes (see [`ScopedDegradations`]).
    /// When non-empty, [`record_degradation`] appends to the innermost
    /// scope instead of the process-global log, so concurrent service
    /// workers each see only their own job's events.
    static SCOPED: RefCell<Vec<Vec<DegradationEvent>>> = const { RefCell::new(Vec::new()) };
}

/// RAII capture scope for degradation events on the current thread.
///
/// While a scope is live, every [`record_degradation`] call *from this
/// thread* lands in the scope instead of the process-global log; the
/// obs counters still fire. [`ScopedDegradations::finish`] returns the
/// captured events. Dropping an unfinished scope (a panic unwinding
/// through it) discards the partial capture rather than leaking it
/// into the global log, which keeps concurrent workers from
/// interleaving each other's trails.
///
/// Scopes nest: driver code that wraps a job in a scope can itself run
/// under an outer scope without either seeing the other's events.
#[derive(Debug)]
pub struct ScopedDegradations {
    finished: bool,
}

impl ScopedDegradations {
    /// Opens a capture scope on the current thread.
    pub fn begin() -> Self {
        SCOPED.with(|s| s.borrow_mut().push(Vec::new()));
        ScopedDegradations { finished: false }
    }

    /// Closes the scope and returns the events it captured.
    pub fn finish(mut self) -> Vec<DegradationEvent> {
        self.finished = true;
        SCOPED.with(|s| s.borrow_mut().pop()).unwrap_or_default()
    }
}

impl Drop for ScopedDegradations {
    fn drop(&mut self) {
        if !self.finished {
            SCOPED.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Runs `f` under a [`ScopedDegradations`] scope and returns its result
/// alongside the degradation events recorded on this thread during the
/// call.
pub fn scoped_degradations<T>(f: impl FnOnce() -> T) -> (T, Vec<DegradationEvent>) {
    let scope = ScopedDegradations::begin();
    let out = f();
    (out, scope.finish())
}

/// Obs counter name for a step down onto `rung`.
fn degrade_counter(rung: Rung) -> &'static str {
    match rung {
        Rung::Exact => "guard.degrade.exact",
        Rung::BddThreshold => "guard.degrade.bdd_threshold",
        Rung::Shannon => "guard.degrade.shannon",
        Rung::DirectCover => "guard.degrade.direct_cover",
    }
}

/// Appends `event` to the innermost [`ScopedDegradations`] scope on the
/// current thread (when one is live) or to the global degradation log,
/// and bumps the per-rung `guard.degrade.*` obs counter either way.
pub fn record_degradation(event: DegradationEvent) {
    hyde_obs::counter(degrade_counter(event.to), 1);
    if event.injected {
        hyde_obs::counter("guard.chaos.injected", 1);
    }
    let scoped = SCOPED.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(scope) => {
                scope.push(event.clone());
                true
            }
            None => false,
        }
    });
    if !scoped {
        DEGRADATIONS
            .lock()
            .expect("degradation log mutex")
            .push(event);
    }
}

/// Removes and returns all recorded degradation events, oldest first.
pub fn drain_degradations() -> Vec<DegradationEvent> {
    std::mem::take(&mut *DEGRADATIONS.lock().expect("degradation log mutex"))
}

/// Renders the current log as one line per event without draining it.
pub fn degradation_log_text() -> String {
    let log = DEGRADATIONS.lock().expect("degradation log mutex");
    let mut out = String::new();
    for e in log.iter() {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Deterministic seed-driven fault injector.
///
/// A site is a stable string such as `"exact:misex1:F2"`. Whether the
/// site trips depends only on `(seed, site)` via an FNV-1a hash, so
/// injection is reproducible across runs, platforms, and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chaos {
    /// The chaos seed (from `HYDE_CHAOS` or `hyde-bench --chaos`).
    pub seed: u64,
}

impl Chaos {
    /// A chaos injector with the given seed.
    pub fn new(seed: u64) -> Self {
        Chaos { seed }
    }

    /// Reads `HYDE_CHAOS`; `None` when unset or unparsable.
    pub fn from_env() -> Option<Self> {
        std::env::var("HYDE_CHAOS")
            .ok()
            .and_then(|v| Self::from_env_value(&v))
    }

    /// Parses a `HYDE_CHAOS` value (decimal or `0x`-prefixed hex).
    pub fn from_env_value(v: &str) -> Option<Self> {
        let v = v.trim();
        let seed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()?
        } else {
            v.parse::<u64>().ok()?
        };
        Some(Chaos { seed })
    }

    /// Whether panic injection is armed. Budget injection is always on
    /// when a chaos seed is set; panics are opt-in via
    /// `HYDE_CHAOS_PANIC=1` so verification drivers (`hyde-lint`) see
    /// degradation without process-level faults, while `hyde-bench
    /// --chaos` exercises the `catch_unwind` isolation too.
    pub fn panics_armed() -> bool {
        std::env::var("HYDE_CHAOS_PANIC")
            .map(|v| v == "1")
            .unwrap_or(false)
    }

    /// FNV-1a over the seed and site string.
    fn hash(self, site: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.seed.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for byte in site.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Whether the fault at `site` fires, with probability ~1/`denom`
    /// over sites. Deterministic in `(seed, site)`.
    pub fn trips(self, site: &str, denom: u64) -> bool {
        denom != 0 && self.hash(site).is_multiple_of(denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.check_deadline().is_ok());
        assert!(b.check_candidates(usize::MAX).is_ok());
    }

    #[test]
    fn candidate_cap_trips_and_reports_limit() {
        let b = Budget::unlimited().with_candidates(10);
        assert!(b.check_candidates(10).is_ok());
        let err = b.check_candidates(11).unwrap_err();
        assert_eq!(err.resource, Resource::Candidates);
        assert_eq!(err.limit, 10);
        assert!(!err.injected);
    }

    #[test]
    fn expired_deadline_trips() {
        let b = Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Budget::unlimited()
        };
        let err = b.check_deadline().unwrap_err();
        assert_eq!(err.resource, Resource::Deadline);
    }

    #[test]
    fn ladder_descends_to_floor() {
        assert_eq!(Rung::Exact.next_down(), Some(Rung::BddThreshold));
        assert_eq!(Rung::BddThreshold.next_down(), Some(Rung::Shannon));
        assert_eq!(Rung::Shannon.next_down(), Some(Rung::DirectCover));
        assert_eq!(Rung::DirectCover.next_down(), None);
    }

    #[test]
    fn chaos_is_deterministic_and_seed_sensitive() {
        let c = Chaos::new(42);
        for site in ["exact:a:F0", "bdd:a:F0", "shannon:b:F3"] {
            assert_eq!(c.trips(site, 4), c.trips(site, 4));
        }
        // Some seed must trip and some must miss any given site.
        let site = "exact:misex1:F0";
        let tripping = (0u64..512).find(|&s| Chaos::new(s).trips(site, 4));
        let missing = (0u64..512).find(|&s| !Chaos::new(s).trips(site, 4));
        assert!(tripping.is_some());
        assert!(missing.is_some());
    }

    #[test]
    fn chaos_env_value_parses_decimal_and_hex() {
        assert_eq!(Chaos::from_env_value("42"), Some(Chaos::new(42)));
        assert_eq!(Chaos::from_env_value(" 0xff "), Some(Chaos::new(255)));
        assert_eq!(Chaos::from_env_value("nope"), None);
        assert_eq!(Chaos::from_env_value(""), None);
    }

    #[test]
    fn degradation_log_roundtrip() {
        // Drain anything other tests may have left behind.
        let _ = drain_degradations();
        record_degradation(DegradationEvent {
            context: "t".into(),
            stage: "F0".into(),
            from: Rung::Exact,
            to: Rung::BddThreshold,
            resource: Resource::Candidates,
            injected: false,
        });
        let text = degradation_log_text();
        assert!(text.contains("degrade t/F0: exact -> bdd-threshold (candidates)"));
        let drained = drain_degradations();
        assert_eq!(drained.len(), 1);
        assert!(drain_degradations().is_empty());
    }

    fn event(context: &str) -> DegradationEvent {
        DegradationEvent {
            context: context.into(),
            stage: "F0".into(),
            from: Rung::Exact,
            to: Rung::BddThreshold,
            resource: Resource::Candidates,
            injected: false,
        }
    }

    #[test]
    fn scoped_capture_diverts_events_from_the_global_log() {
        let _ = drain_degradations();
        let ((), captured) = scoped_degradations(|| {
            record_degradation(event("scoped"));
            record_degradation(event("scoped"));
        });
        assert_eq!(captured.len(), 2);
        assert!(
            !drain_degradations().iter().any(|e| e.context == "scoped"),
            "scoped events must not reach the global log"
        );
    }

    #[test]
    fn scoped_capture_nests_and_survives_panics() {
        let _ = drain_degradations();
        let ((), outer) = scoped_degradations(|| {
            record_degradation(event("outer"));
            let payload = std::panic::catch_unwind(|| {
                let _scope = ScopedDegradations::begin();
                record_degradation(event("inner"));
                panic!("boom");
            });
            assert!(payload.is_err());
            record_degradation(event("outer"));
        });
        // The inner scope's partial capture is discarded by its Drop;
        // the outer scope keeps only its own events.
        assert_eq!(outer.len(), 2);
        assert!(outer.iter().all(|e| e.context == "outer"));
        assert!(!drain_degradations().iter().any(|e| e.context == "inner"));
    }

    #[test]
    fn out_of_budget_displays_injection() {
        let real = OutOfBudget::new(Resource::BddNodes, 100);
        let fake = OutOfBudget::injected(Resource::BddNodes);
        assert!(real.to_string().contains("limit 100"));
        assert!(fake.to_string().contains("chaos-injected"));
    }
}
