//! Write-ahead job journal: one hand-rolled JSON object per line,
//! fsynced on every state transition.
//!
//! The journal is the durability layer of `hyde-serve`: `submitted` is
//! written (and synced) before the client's ack, `started`/`retried`
//! mark execution progress, and `completed`/`cancelled` close a job —
//! carrying the full result body so a restart answers `result` queries
//! for work finished before the crash. [`replay`] folds an event stream
//! back into the pending queue and the terminal-state map; a torn final
//! line (the signature of a mid-write `SIGKILL`) is dropped, which is
//! sound because its ack can never have been sent.

use crate::protocol::{budget_json, JobKind, JobSpec};
use hyde_map::session::BudgetSpec;
use hyde_obs::json::{self, Json};
use std::fs::{File, OpenOptions};
use std::io::{BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};

/// One durable state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// A job was admitted (written before the submit ack).
    Submitted {
        /// The full spec, so replay can re-create the job.
        spec: JobSpec,
    },
    /// A worker picked the job up.
    Started {
        /// Job id.
        id: String,
        /// 1-based attempt about to run.
        attempt: u32,
    },
    /// An attempt failed and a retry was scheduled.
    Retried {
        /// Job id.
        id: String,
        /// The attempt that failed.
        attempt: u32,
        /// Outcome token of the failed attempt.
        outcome: String,
    },
    /// The job reached a terminal state.
    Completed {
        /// Job id.
        id: String,
        /// Terminal body.
        outcome: Terminal,
    },
    /// A queued job was cancelled.
    Cancelled {
        /// Job id.
        id: String,
    },
}

/// Terminal outcome recorded by a `completed` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminal {
    /// Mapped and verified.
    Done {
        /// LUT count.
        luts: usize,
        /// Depth in LUT levels.
        depth: usize,
        /// The mapped network (BLIF), so results survive restarts.
        blif: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Retries exhausted; job quarantined.
    Quarantined {
        /// Terminal error text.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// Encodes an event as one JSON line (no trailing newline).
pub fn encode(ev: &JournalEvent) -> String {
    match ev {
        JournalEvent::Submitted { spec } => {
            let source = match &spec.kind {
                JobKind::Suite { circuit } => {
                    format!(
                        "\"kind\":\"suite\",\"circuit\":\"{}\"",
                        json::escape(circuit)
                    )
                }
                JobKind::Pla { text } => {
                    format!("\"kind\":\"pla\",\"pla\":\"{}\"", json::escape(text))
                }
            };
            format!(
                "{{\"ev\":\"submitted\",\"id\":\"{}\",\"name\":\"{}\",{source},\"budget\":{}}}",
                json::escape(&spec.id),
                json::escape(&spec.name),
                budget_json(&spec.budget)
            )
        }
        JournalEvent::Started { id, attempt } => format!(
            "{{\"ev\":\"started\",\"id\":\"{}\",\"attempt\":{attempt}}}",
            json::escape(id)
        ),
        JournalEvent::Retried {
            id,
            attempt,
            outcome,
        } => format!(
            "{{\"ev\":\"retried\",\"id\":\"{}\",\"attempt\":{attempt},\"outcome\":\"{}\"}}",
            json::escape(id),
            json::escape(outcome)
        ),
        JournalEvent::Completed { id, outcome } => match outcome {
            Terminal::Done {
                luts,
                depth,
                blif,
                attempts,
            } => format!(
                "{{\"ev\":\"completed\",\"id\":\"{}\",\"state\":\"done\",\"luts\":{luts},\
                 \"depth\":{depth},\"attempts\":{attempts},\"blif\":\"{}\"}}",
                json::escape(id),
                json::escape(blif)
            ),
            Terminal::Quarantined { error, attempts } => format!(
                "{{\"ev\":\"completed\",\"id\":\"{}\",\"state\":\"quarantined\",\
                 \"attempts\":{attempts},\"error\":\"{}\"}}",
                json::escape(id),
                json::escape(error)
            ),
        },
        JournalEvent::Cancelled { id } => {
            format!("{{\"ev\":\"cancelled\",\"id\":\"{}\"}}", json::escape(id))
        }
    }
}

fn req_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("journal event lacks string '{key}'"))
}

fn req_num(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("journal event lacks number '{key}'"))
}

fn opt_num(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key)
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
}

/// Decodes one journal line.
///
/// # Errors
///
/// Returns a description of the structural violation (the caller
/// decides whether the line is a tolerable torn tail).
pub fn decode(line: &str) -> Result<JournalEvent, String> {
    let doc = json::parse(line.trim_end()).map_err(|e| e.to_string())?;
    match doc.get("ev").and_then(Json::as_str) {
        Some("submitted") => {
            let kind = match doc.get("kind").and_then(Json::as_str) {
                Some("suite") => JobKind::Suite {
                    circuit: req_str(&doc, "circuit")?,
                },
                Some("pla") => JobKind::Pla {
                    text: req_str(&doc, "pla")?,
                },
                other => return Err(format!("bad submitted kind {other:?}")),
            };
            let budget = match doc.get("budget") {
                Some(b) => BudgetSpec {
                    deadline_ms: opt_num(b, "deadline_ms"),
                    bdd_nodes: opt_num(b, "bdd_nodes").map(|n| n as usize),
                    sat_conflicts: opt_num(b, "sat_conflicts"),
                    candidates: opt_num(b, "candidates").map(|n| n as usize),
                },
                None => BudgetSpec::unlimited(),
            };
            Ok(JournalEvent::Submitted {
                spec: JobSpec {
                    id: req_str(&doc, "id")?,
                    name: req_str(&doc, "name")?,
                    kind,
                    budget,
                },
            })
        }
        Some("started") => Ok(JournalEvent::Started {
            id: req_str(&doc, "id")?,
            attempt: req_num(&doc, "attempt")? as u32,
        }),
        Some("retried") => Ok(JournalEvent::Retried {
            id: req_str(&doc, "id")?,
            attempt: req_num(&doc, "attempt")? as u32,
            outcome: req_str(&doc, "outcome")?,
        }),
        Some("completed") => {
            let id = req_str(&doc, "id")?;
            let attempts = req_num(&doc, "attempts")? as u32;
            let outcome = match doc.get("state").and_then(Json::as_str) {
                Some("done") => Terminal::Done {
                    luts: req_num(&doc, "luts")? as usize,
                    depth: req_num(&doc, "depth")? as usize,
                    blif: req_str(&doc, "blif")?,
                    attempts,
                },
                Some("quarantined") => Terminal::Quarantined {
                    error: req_str(&doc, "error")?,
                    attempts,
                },
                other => return Err(format!("bad completed state {other:?}")),
            };
            Ok(JournalEvent::Completed { id, outcome })
        }
        Some("cancelled") => Ok(JournalEvent::Cancelled {
            id: req_str(&doc, "id")?,
        }),
        other => Err(format!("unknown journal event {other:?}")),
    }
}

/// The state a journal replay reconstructs.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// Jobs submitted but not terminal, in submission order (includes
    /// jobs that were mid-flight: mapping is deterministic and pure, so
    /// restarting an interrupted attempt is idempotent).
    pub pending: Vec<JobSpec>,
    /// Terminal jobs: `(id, outcome)` in completion order.
    pub terminal: Vec<(String, Terminal)>,
    /// Ids cancelled while queued.
    pub cancelled: Vec<String>,
    /// Undecodable lines skipped (at most the torn tail under the
    /// fsync-before-ack discipline; more indicates corruption).
    pub skipped_lines: usize,
}

/// Folds an event stream into recovered state.
pub fn replay(events: &[JournalEvent]) -> Recovered {
    let mut rec = Recovered::default();
    for ev in events {
        match ev {
            JournalEvent::Submitted { spec } => {
                if rec.pending.iter().all(|s| s.id != spec.id) {
                    rec.pending.push(spec.clone());
                }
            }
            JournalEvent::Started { .. } | JournalEvent::Retried { .. } => {}
            JournalEvent::Completed { id, outcome } => {
                rec.pending.retain(|s| s.id != *id);
                rec.terminal.push((id.clone(), outcome.clone()));
            }
            JournalEvent::Cancelled { id } => {
                rec.pending.retain(|s| s.id != *id);
                rec.cancelled.push(id.clone());
            }
        }
    }
    rec
}

/// An append-only journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, returning the
    /// handle and the decoded events already on disk. Undecodable lines
    /// are counted and skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Vec<JournalEvent>, usize)> {
        let mut events = Vec::new();
        let mut skipped = 0usize;
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match decode(&line) {
                    Ok(ev) => events.push(ev),
                    Err(_) => skipped += 1,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            events,
            skipped,
        ))
    }

    /// Appends one event and syncs it to disk before returning — the
    /// write-ahead contract: no ack, no response, no state transition
    /// is observable before its journal record is durable.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn append(&mut self, ev: &JournalEvent) -> std::io::Result<()> {
        let mut line = encode(ev);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        hyde_obs::counter("serve.journal.events", 1);
        Ok(())
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            name: "misex1".into(),
            kind: JobKind::Suite {
                circuit: "misex1".into(),
            },
            budget: BudgetSpec::unlimited().with_deadline_ms(500),
        }
    }

    #[test]
    fn events_round_trip_through_encode_decode() {
        let evs = vec![
            JournalEvent::Submitted { spec: spec("j1") },
            JournalEvent::Started {
                id: "j1".into(),
                attempt: 1,
            },
            JournalEvent::Retried {
                id: "j1".into(),
                attempt: 1,
                outcome: "injected-kill".into(),
            },
            JournalEvent::Completed {
                id: "j1".into(),
                outcome: Terminal::Done {
                    luts: 9,
                    depth: 3,
                    blif: ".model m\n.end\n".into(),
                    attempts: 2,
                },
            },
            JournalEvent::Completed {
                id: "j2".into(),
                outcome: Terminal::Quarantined {
                    error: "panicked: chaos".into(),
                    attempts: 3,
                },
            },
            JournalEvent::Cancelled { id: "j3".into() },
        ];
        for ev in &evs {
            let line = encode(ev);
            assert_eq!(&decode(&line).expect(&line), ev, "{line}");
        }
    }

    #[test]
    fn replay_recovers_pending_and_terminal_jobs() {
        let events = vec![
            JournalEvent::Submitted { spec: spec("a") },
            JournalEvent::Submitted { spec: spec("b") },
            JournalEvent::Submitted { spec: spec("c") },
            JournalEvent::Started {
                id: "a".into(),
                attempt: 1,
            },
            JournalEvent::Completed {
                id: "a".into(),
                outcome: Terminal::Quarantined {
                    error: "x".into(),
                    attempts: 3,
                },
            },
            JournalEvent::Cancelled { id: "c".into() },
            JournalEvent::Started {
                id: "b".into(),
                attempt: 1,
            },
        ];
        let rec = replay(&events);
        // `b` was mid-flight at the cut: it must come back as pending.
        assert_eq!(
            rec.pending
                .iter()
                .map(|s| s.id.as_str())
                .collect::<Vec<_>>(),
            vec!["b"]
        );
        assert_eq!(rec.terminal.len(), 1);
        assert_eq!(rec.cancelled, vec!["c".to_string()]);
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("hyde-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let mut text = String::new();
        text.push_str(&encode(&JournalEvent::Submitted { spec: spec("a") }));
        text.push('\n');
        text.push_str("{\"ev\":\"submitted\",\"id\":\"b\",\"na"); // torn mid-write
        std::fs::write(&path, text).unwrap();
        let (_j, events, skipped) = Journal::open(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
