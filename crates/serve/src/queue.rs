//! Bounded job queue with budget-based admission control.
//!
//! Depth and aggregate-node caps come from
//! [`hyde_guard::AdmissionLimits`]; an over-cap submission is a typed
//! [`hyde_guard::Rejected`] with a `retry_after` hint (backpressure,
//! not failure). Closing the queue flips every subsequent submit to
//! `shutting-down` and wakes blocked workers so they can drain their
//! current job and exit.

use crate::protocol::JobSpec;
use hyde_guard::{AdmissionLimits, RejectReason, Rejected};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct QueueInner {
    q: VecDeque<(JobSpec, Instant)>,
    pending_nodes: u64,
    closed: bool,
}

/// A bounded multi-producer multi-consumer job queue.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cond: Condvar,
    limits: AdmissionLimits,
}

impl JobQueue {
    /// An empty open queue under `limits`.
    pub fn new(limits: AdmissionLimits) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                pending_nodes: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            limits,
        }
    }

    /// Admits `spec` if the caps allow.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] on overload or shutdown.
    pub fn submit(&self, spec: JobSpec) -> Result<(), Rejected> {
        let mut g = self.inner.lock().expect("queue mutex");
        if g.closed {
            return Err(Rejected {
                reason: RejectReason::ShuttingDown,
                retry_after: Duration::from_secs(1),
            });
        }
        let charge = spec.budget.node_charge();
        self.limits.admit(g.q.len(), g.pending_nodes, charge)?;
        g.pending_nodes += charge;
        g.q.push_back((spec, Instant::now()));
        drop(g);
        self.cond.notify_one();
        Ok(())
    }

    /// Admission pre-check without enqueueing. Submissions are
    /// serialized by the service, and workers only ever *remove* items,
    /// so a passing check cannot be invalidated before the matching
    /// [`JobQueue::requeue`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`Rejected`] on overload or shutdown.
    pub fn would_admit(&self, spec: &JobSpec) -> Result<(), Rejected> {
        let g = self.inner.lock().expect("queue mutex");
        if g.closed {
            return Err(Rejected {
                reason: RejectReason::ShuttingDown,
                retry_after: Duration::from_secs(1),
            });
        }
        self.limits
            .admit(g.q.len(), g.pending_nodes, spec.budget.node_charge())
    }

    /// Re-enqueues a replayed job, bypassing admission (it was admitted
    /// before the restart; refusing it now would lose durable work).
    pub fn requeue(&self, spec: JobSpec) {
        let mut g = self.inner.lock().expect("queue mutex");
        g.pending_nodes += spec.budget.node_charge();
        g.q.push_back((spec, Instant::now()));
        drop(g);
        self.cond.notify_one();
    }

    /// Blocks for the next job. `None` means the queue is closed —
    /// workers finish their current job and exit; whatever is still
    /// queued stays journaled for the next start.
    pub fn pop(&self) -> Option<(JobSpec, Instant)> {
        let mut g = self.inner.lock().expect("queue mutex");
        loop {
            if g.closed {
                return None;
            }
            if let Some((spec, enq)) = g.q.pop_front() {
                g.pending_nodes = g.pending_nodes.saturating_sub(spec.budget.node_charge());
                return Some((spec, enq));
            }
            g = self.cond.wait(g).expect("queue condvar");
        }
    }

    /// Removes a queued job. Returns whether it was found (a running or
    /// terminal job is not cancellable here).
    pub fn cancel(&self, id: &str) -> bool {
        let mut g = self.inner.lock().expect("queue mutex");
        let before = g.q.len();
        let mut freed = 0u64;
        g.q.retain(|(spec, _)| {
            if spec.id == id {
                freed += spec.budget.node_charge();
                false
            } else {
                true
            }
        });
        g.pending_nodes = g.pending_nodes.saturating_sub(freed);
        g.q.len() != before
    }

    /// Whether `id` is currently queued.
    pub fn contains(&self, id: &str) -> bool {
        let g = self.inner.lock().expect("queue mutex");
        g.q.iter().any(|(spec, _)| spec.id == id)
    }

    /// Closes the queue: all waiters wake, further submits are
    /// rejected with `shutting-down`.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex").closed = true;
        self.cond.notify_all();
    }

    /// Queued (not running) job count.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue mutex").q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobKind;
    use hyde_map::session::BudgetSpec;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            name: id.into(),
            kind: JobKind::Suite {
                circuit: "misex1".into(),
            },
            budget: BudgetSpec::unlimited(),
        }
    }

    #[test]
    fn depth_cap_rejects_with_backpressure() {
        let q = JobQueue::new(AdmissionLimits {
            max_depth: 2,
            max_pending_nodes: u64::MAX,
        });
        q.submit(spec("a")).unwrap();
        q.submit(spec("b")).unwrap();
        let r = q.submit(spec("c")).unwrap_err();
        assert_eq!(r.reason, RejectReason::QueueFull);
        assert!(!r.retry_after.is_zero());
        // Popping frees a slot.
        assert_eq!(q.pop().unwrap().0.id, "a");
        q.submit(spec("c")).unwrap();
    }

    #[test]
    fn node_budget_saturation_rejects() {
        let q = JobQueue::new(AdmissionLimits {
            max_depth: 100,
            max_pending_nodes: 10,
        });
        let mut s = spec("a");
        s.budget.bdd_nodes = Some(8);
        q.submit(s).unwrap();
        let mut s = spec("b");
        s.budget.bdd_nodes = Some(8);
        let r = q.submit(s).unwrap_err();
        assert_eq!(r.reason, RejectReason::BudgetSaturated);
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let q = JobQueue::new(AdmissionLimits::standard());
        q.submit(spec("a")).unwrap();
        assert!(q.cancel("a"));
        assert!(!q.cancel("a"));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_wakes_waiters_and_rejects_submits() {
        let q = std::sync::Arc::new(JobQueue::new(AdmissionLimits::standard()));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
        let r = q.submit(spec("x")).unwrap_err();
        assert_eq!(r.reason, RejectReason::ShuttingDown);
    }
}
