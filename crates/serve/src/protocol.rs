//! Newline-delimited JSON protocol: one request object per line, one
//! response object per line.
//!
//! The wire vocabulary is deliberately tiny — `submit`, `status`,
//! `result`, `cancel`, `shutdown` — and every malformed input maps to a
//! structured [`ProtoError`] with a stable `code` token, mirroring the
//! BLIF/PLA parser hardening: truncated frames, oversized frames, bad
//! UTF-8, unknown ops and job kinds, duplicate ids are all *answers*,
//! never panics or silent drops.
//!
//! ```text
//! → {"op":"submit","id":"j1","kind":"suite","circuit":"misex1"}
//! ← {"ok":true,"id":"j1","state":"queued"}
//! → {"op":"status","id":"j1"}
//! ← {"ok":true,"id":"j1","state":"running","attempt":1}
//! → {"op":"result","id":"j1"}
//! ← {"ok":true,"id":"j1","state":"done","luts":17,"depth":3,"blif":"..."}
//! ```

use hyde_map::session::BudgetSpec;
use hyde_obs::json::{self, Json};
use std::fmt;

/// Cap on one request line (bytes, including the newline). A frame past
/// this is answered with `oversized-frame` and the connection closed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A structured protocol error: stable machine-readable `code`, human
/// `message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable lower-case error token (`bad-json`, `unknown-op`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// Shorthand constructor.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }

    /// Renders the error as a one-line JSON response.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}\n",
            self.code,
            json::escape(&self.message)
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Where a job's functions come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// A named circuit of the built-in benchmark suite.
    Suite {
        /// Suite circuit name (e.g. `misex1`).
        circuit: String,
    },
    /// An inline PLA text (the generic job source).
    Pla {
        /// PLA source text.
        text: String,
    },
}

impl JobKind {
    /// Stable kind token for journals and responses.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobKind::Suite { .. } => "suite",
            JobKind::Pla { .. } => "pla",
        }
    }
}

/// A validated job submission: everything needed to (re-)create the
/// typed [`hyde_map::Job`], journal-durable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Unique job id.
    pub id: String,
    /// Circuit/network name.
    pub name: String,
    /// Function source.
    pub kind: JobKind,
    /// Per-attempt resource budget.
    pub budget: BudgetSpec,
}

impl JobSpec {
    /// Resolves the spec into a runnable job. Deterministic: replaying
    /// the same spec yields the same job.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] (`unknown-job-kind` for a suite name
    /// that does not exist, `bad-field` for an unparsable PLA).
    pub fn resolve(&self) -> Result<hyde_map::Job, ProtoError> {
        let outputs = match &self.kind {
            JobKind::Suite { circuit } => hyde_circuits::suite()
                .into_iter()
                .find(|c| c.name == *circuit)
                .map(|c| c.outputs)
                .ok_or_else(|| {
                    ProtoError::new(
                        "unknown-job-kind",
                        format!("no suite circuit named '{circuit}'"),
                    )
                })?,
            JobKind::Pla { text } => hyde_logic::pla::Pla::parse(text)
                .map_err(|e| ProtoError::new("bad-field", format!("pla: {e}")))?
                .output_tables(),
        };
        let mut job = hyde_map::Job::new(&self.id, outputs).with_budget(self.budget);
        job.name = self.name.clone();
        Ok(job)
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a job.
    Submit(JobSpec),
    /// Query a job's state.
    Status {
        /// Job id.
        id: String,
    },
    /// Fetch a terminal job's result body.
    Result {
        /// Job id.
        id: String,
    },
    /// Cancel a queued job.
    Cancel {
        /// Job id.
        id: String,
    },
    /// Drain and stop the service.
    Shutdown,
}

fn str_field(doc: &Json, key: &str) -> Result<String, ProtoError> {
    match doc.get(key) {
        Some(v) => v
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ProtoError::new("bad-field", format!("'{key}' must be a string"))),
        None => Err(ProtoError::new(
            "missing-field",
            format!("request lacks '{key}'"),
        )),
    }
}

fn num_field(doc: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_num()
                .filter(|n| n.is_finite() && *n >= 0.0)
                .ok_or_else(|| {
                    ProtoError::new(
                        "bad-field",
                        format!("'{key}' must be a non-negative number"),
                    )
                })?;
            Ok(Some(n as u64))
        }
    }
}

/// Parses the optional `budget` object of a submission.
fn budget_field(doc: &Json) -> Result<BudgetSpec, ProtoError> {
    let Some(b) = doc.get("budget") else {
        return Ok(BudgetSpec::unlimited());
    };
    if !matches!(b, Json::Obj(_)) {
        return Err(ProtoError::new("bad-field", "'budget' must be an object"));
    }
    Ok(BudgetSpec {
        deadline_ms: num_field(b, "deadline_ms")?,
        bdd_nodes: num_field(b, "bdd_nodes")?.map(|n| n as usize),
        sat_conflicts: num_field(b, "sat_conflicts")?,
        candidates: num_field(b, "candidates")?.map(|n| n as usize),
    })
}

/// Parses a submission object (everything after `"op":"submit"`).
pub fn parse_submit(doc: &Json) -> Result<JobSpec, ProtoError> {
    let id = str_field(doc, "id")?;
    if id.is_empty() || id.len() > 256 {
        return Err(ProtoError::new("bad-field", "'id' must be 1..=256 chars"));
    }
    let kind = match doc.get("kind").and_then(Json::as_str) {
        Some("suite") => JobKind::Suite {
            circuit: str_field(doc, "circuit")?,
        },
        Some("pla") => JobKind::Pla {
            text: str_field(doc, "pla")?,
        },
        Some(other) => {
            return Err(ProtoError::new(
                "unknown-job-kind",
                format!("kind '{other}' is not 'suite' or 'pla'"),
            ))
        }
        None => return Err(ProtoError::new("missing-field", "request lacks 'kind'")),
    };
    let name = match doc.get("name").and_then(Json::as_str) {
        Some(n) => n.to_owned(),
        None => match &kind {
            JobKind::Suite { circuit } => circuit.clone(),
            JobKind::Pla { .. } => id.clone(),
        },
    };
    let spec = JobSpec {
        id,
        name,
        kind,
        budget: budget_field(doc)?,
    };
    // Validate eagerly: a submission that cannot resolve must be a
    // structured parse-time error, not a quarantined job later.
    spec.resolve()?;
    Ok(spec)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a structured [`ProtoError`] for every malformed input.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc =
        json::parse(line.trim_end()).map_err(|e| ProtoError::new("bad-json", e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(ProtoError::new("bad-json", "request must be an object"));
    }
    match doc.get("op").and_then(Json::as_str) {
        Some("submit") => Ok(Request::Submit(parse_submit(&doc)?)),
        Some("status") => Ok(Request::Status {
            id: str_field(&doc, "id")?,
        }),
        Some("result") => Ok(Request::Result {
            id: str_field(&doc, "id")?,
        }),
        Some("cancel") => Ok(Request::Cancel {
            id: str_field(&doc, "id")?,
        }),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => Err(ProtoError::new(
            "unknown-op",
            format!("op '{other}' is not submit/status/result/cancel/shutdown"),
        )),
        None => Err(ProtoError::new("missing-field", "request lacks 'op'")),
    }
}

/// Renders a budget spec as a JSON object (used by the journal).
pub fn budget_json(b: &BudgetSpec) -> String {
    let mut parts = Vec::new();
    if let Some(v) = b.deadline_ms {
        parts.push(format!("\"deadline_ms\":{v}"));
    }
    if let Some(v) = b.bdd_nodes {
        parts.push(format!("\"bdd_nodes\":{v}"));
    }
    if let Some(v) = b.sat_conflicts {
        parts.push(format!("\"sat_conflicts\":{v}"));
    }
    if let Some(v) = b.candidates {
        parts.push(format!("\"candidates\":{v}"));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders a rejection as a one-line JSON response.
pub fn rejected_json(r: &hyde_guard::Rejected) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"rejected\",\"reason\":\"{}\",\"retry_after_ms\":{}}}\n",
        r.reason.as_str(),
        r.retry_after.as_millis()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_with_defaults() {
        let req = parse_request(
            "{\"op\":\"submit\",\"id\":\"j1\",\"kind\":\"suite\",\"circuit\":\"misex1\"}",
        )
        .unwrap();
        let Request::Submit(spec) = req else {
            panic!("not a submit")
        };
        assert_eq!(spec.id, "j1");
        assert_eq!(spec.name, "misex1");
        assert_eq!(spec.budget, BudgetSpec::unlimited());
        assert!(spec.resolve().is_ok());
    }

    #[test]
    fn pla_submissions_resolve_inline_text() {
        let pla = ".i 2\n.o 1\n.p 2\n01 1\n10 1\n.e\n";
        let line = format!(
            "{{\"op\":\"submit\",\"id\":\"x\",\"kind\":\"pla\",\"pla\":\"{}\"}}",
            pla.replace('\n', "\\n")
        );
        let Request::Submit(spec) = parse_request(&line).unwrap() else {
            panic!("not a submit")
        };
        let job = spec.resolve().unwrap();
        assert_eq!(job.outputs.len(), 1);
        assert_eq!(job.outputs[0].vars(), 2);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "bad-json"),
            ("{", "bad-json"),
            ("[1,2]", "bad-json"),
            ("{\"op\":\"submit\"}", "missing-field"),
            ("{\"op\":\"submit\",\"id\":\"\",\"kind\":\"suite\",\"circuit\":\"x\"}", "bad-field"),
            ("{\"op\":\"submit\",\"id\":\"j\",\"kind\":\"blend\"}", "unknown-job-kind"),
            (
                "{\"op\":\"submit\",\"id\":\"j\",\"kind\":\"suite\",\"circuit\":\"nope\"}",
                "unknown-job-kind",
            ),
            (
                "{\"op\":\"submit\",\"id\":\"j\",\"kind\":\"pla\",\"pla\":\"garbage\"}",
                "bad-field",
            ),
            ("{\"op\":\"warp\"}", "unknown-op"),
            ("{\"id\":\"j\"}", "missing-field"),
            ("{\"op\":\"status\"}", "missing-field"),
            (
                "{\"op\":\"submit\",\"id\":\"j\",\"kind\":\"suite\",\"circuit\":\"misex1\",\"budget\":3}",
                "bad-field",
            ),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, *code, "{line} → {err}");
            // Every error renders as parsable single-line JSON.
            let rendered = err.to_json();
            assert!(rendered.ends_with('\n'));
            hyde_obs::json::parse(rendered.trim_end()).expect("error response is JSON");
        }
    }
}
