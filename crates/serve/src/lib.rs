//! `hyde-serve`: a crash-tolerant mapping service.
//!
//! The daemon the ROADMAP asks for, built on three layers:
//!
//! 1. **Facade** — jobs run through [`hyde_map::Session`], the same
//!    typed Job → JobResult path the CLI drivers use, so the server is
//!    a thin shell over one code path;
//! 2. **Supervision** — a bounded queue with budget-based admission
//!    control ([`queue`]), N workers running every job under
//!    `catch_unwind` with bounded retries, deterministic backoff and
//!    per-retry degradation-ladder stepping, and quarantine for jobs
//!    that exhaust their attempts ([`service`]);
//! 3. **Durability** — a line-JSON write-ahead journal fsynced on
//!    state transitions and replayed on startup ([`journal`]), so
//!    queued and in-flight jobs survive a process kill.
//!
//! The wire protocol is newline-delimited JSON over TCP with an HTTP
//! `/metrics` + `/healthz` subset on the same port ([`protocol`],
//! [`server`]); [`drill`] is the chaos-armed crash-recovery drill
//! behind `cargo xtask serve-drill`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drill;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;

pub use protocol::{JobKind, JobSpec, ProtoError, Request};
pub use server::Server;
pub use service::{JobState, MapService, ServeConfig, SubmitError};
