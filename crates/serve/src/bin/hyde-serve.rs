//! The `hyde-serve` daemon and its crash-recovery drill.
//!
//! Server mode binds the newline-JSON/HTTP front end and runs until
//! stdin reaches EOF or a client sends `{"op":"shutdown"}`, then drains
//! in-flight jobs and exits. Drill mode (`--drill <seed>`) runs the
//! supervised chaos drill in-process, then the out-of-process
//! kill/restart scenario: spawn a serving child, `SIGKILL` it mid-run,
//! restart it on the same journal, and require the replay to finish
//! every job with outputs byte-identical to the offline `Session` path.

use hyde_serve::drill::{
    drill_config, offline_job, offline_session, run_supervised_drill, tcp_request,
};
use hyde_serve::service::MapService;
use hyde_serve::Server;
use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Read as _};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
hyde-serve: crash-tolerant mapping service (newline-JSON over TCP + /metrics)

Usage: hyde-serve [OPTIONS]

Options:
  --addr <ADDR>     bind address (default 127.0.0.1:0)
  --workers <N>     worker threads (default 4)
  --journal <FILE>  write-ahead journal; replayed on startup so queued
                    and in-flight jobs survive a process kill
  --chaos <SEED>    arm the deterministic fault-injection layer
  --worker-faults   also arm the worker kill/stall sites (needs --chaos)
  --print-addr      print the bound address on stdout once listening
  --drill <SEED>    run the crash-recovery drill (in-process supervision
                    drill, then SIGKILL + journal-replay of a child
                    server) and write CHAOS_serve_s<SEED>.json
  --drill-out <FILE> drill artifact path
  --smoke           drill over the small suite instead of all 25 circuits
  -h, --help        this message

Protocol (one JSON object per line):
  {\"op\":\"submit\",\"id\":\"j1\",\"kind\":\"suite\",\"circuit\":\"misex1\"}
  {\"op\":\"submit\",\"id\":\"j2\",\"kind\":\"pla\",\"pla\":\".i 2\\n.o 1\\n...\"}
  {\"op\":\"status\",\"id\":\"j1\"}   {\"op\":\"result\",\"id\":\"j1\"}
  {\"op\":\"cancel\",\"id\":\"j1\"}   {\"op\":\"shutdown\"}";

struct Options {
    addr: String,
    workers: usize,
    journal: Option<PathBuf>,
    chaos: Option<u64>,
    worker_faults: bool,
    print_addr: bool,
    drill: Option<u64>,
    drill_out: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        journal: None,
        chaos: None,
        worker_faults: false,
        print_addr: false,
        drill: None,
        drill_out: None,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--addr" => o.addr = take("--addr")?,
            "--workers" => {
                o.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--journal" => o.journal = Some(PathBuf::from(take("--journal")?)),
            "--chaos" => {
                o.chaos = Some(
                    take("--chaos")?
                        .parse()
                        .map_err(|e| format!("--chaos: {e}"))?,
                )
            }
            "--worker-faults" => o.worker_faults = true,
            "--print-addr" => o.print_addr = true,
            "--drill" => {
                o.drill = Some(
                    take("--drill")?
                        .parse()
                        .map_err(|e| format!("--drill: {e}"))?,
                )
            }
            "--drill-out" => o.drill_out = Some(PathBuf::from(take("--drill-out")?)),
            "--smoke" => o.smoke = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}' (see --help)")),
        }
    }
    if o.worker_faults && o.chaos.is_none() {
        return Err("--worker-faults needs --chaos <SEED>".into());
    }
    if o.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(o)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hyde-serve: {e}");
            return ExitCode::from(2);
        }
    };
    hyde_obs::enable();
    // Injected worker kills are expected, supervised outcomes when
    // faults are armed — drop the default panic banner so drill output
    // stays readable (real panics still surface as quarantine errors).
    if opts.drill.is_some() || opts.worker_faults {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let result = match opts.drill {
        Some(seed) => run_drill(seed, &opts),
        None => run_server(&opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hyde-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_server(opts: &Options) -> Result<(), String> {
    let mut cfg = hyde_serve::ServeConfig::standard();
    cfg.workers = opts.workers;
    cfg.chaos = opts.chaos;
    cfg.worker_faults = opts.worker_faults;
    if opts.worker_faults {
        // Serving drills use the drill retry schedule so the offline
        // comparison path can reproduce it exactly.
        cfg.retry = drill_config(opts.chaos.unwrap_or_default(), opts.workers).retry;
    }
    let service = Arc::new(
        MapService::start(cfg, opts.journal.as_deref()).map_err(|e| format!("start: {e}"))?,
    );
    let server =
        Server::bind(opts.addr.as_str(), Arc::clone(&service)).map_err(|e| format!("bind: {e}"))?;
    if opts.print_addr {
        println!("{}", server.local_addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    // Run until stdin EOF (daemon convention: the supervisor owns our
    // stdin) or a client's shutdown request.
    let eof = Arc::new(AtomicBool::new(false));
    let eof2 = Arc::clone(&eof);
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = std::io::stdin().lock().read_to_end(&mut sink);
        eof2.store(true, Ordering::Relaxed);
    });
    while !eof.load(Ordering::Relaxed) && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    service.shutdown(Duration::from_secs(30));
    Ok(())
}

fn circuits_for(smoke: bool) -> Vec<hyde_circuits::Circuit> {
    if smoke {
        hyde_circuits::suite_small()
    } else {
        hyde_circuits::suite()
    }
}

fn run_drill(seed: u64, opts: &Options) -> Result<(), String> {
    let circuits = circuits_for(opts.smoke);
    let dir = PathBuf::from(format!("target/serve-drill/s{seed}"));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;

    // Phase A: in-process supervision drill (kills/stalls injected,
    // every job terminal, outputs byte-identical to the offline path).
    let inproc_journal = dir.join("inproc.jsonl");
    let _ = std::fs::remove_file(&inproc_journal);
    let summary = run_supervised_drill(
        seed,
        &circuits,
        opts.workers,
        Some(&inproc_journal),
        Duration::from_secs(900),
    )?;
    eprintln!(
        "serve-drill s{seed}: in-process ok={} quarantined={} retries={}",
        summary.ok, summary.quarantined, summary.retries
    );

    // Phase B: kill a serving child mid-run, restart on the same
    // journal, and require the replay to finish the remaining jobs.
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let recovered = kill_restart_scenario(seed, &circuits, &journal, opts.workers)?;
    eprintln!("serve-drill s{seed}: kill/restart recovered {recovered} job(s) from the journal");

    let json = hyde_bench::perf::chaos_to_json(&summary.run);
    hyde_bench::perf::validate_chaos_json(&json)?;
    let out = opts
        .drill_out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("CHAOS_serve_s{seed}.json")));
    std::fs::write(&out, &json).map_err(|e| format!("write {}: {e}", out.display()))?;
    eprintln!("serve-drill s{seed}: wrote {}", out.display());
    Ok(())
}

struct Child {
    proc: std::process::Child,
    addr: String,
}

fn spawn_server(seed: u64, journal: &std::path::Path, workers: usize) -> Result<Child, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut proc = std::process::Command::new(exe)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--chaos",
            &seed.to_string(),
            "--worker-faults",
            "--journal",
        ])
        .arg(journal)
        .arg("--print-addr")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn child: {e}"))?;
    let stdout = proc.stdout.take().ok_or("child stdout missing")?;
    let mut addr = String::new();
    BufReader::new(stdout)
        .read_line(&mut addr)
        .map_err(|e| format!("read child addr: {e}"))?;
    let addr = addr.trim().to_owned();
    if addr.is_empty() {
        let _ = proc.kill();
        return Err("child printed no address".into());
    }
    Ok(Child { proc, addr })
}

/// Polls every job's status once; returns `id → state token`.
fn poll_states(addr: &str, ids: &[String]) -> Result<HashMap<String, String>, String> {
    let mut states = HashMap::new();
    for id in ids {
        let resp = tcp_request(addr, &format!("{{\"op\":\"status\",\"id\":\"{id}\"}}"))?;
        let doc = hyde_obs::json::parse(resp.trim()).map_err(|e| format!("status {id}: {e}"))?;
        let state = doc
            .get("state")
            .and_then(|s| s.as_str())
            .unwrap_or("unknown")
            .to_owned();
        states.insert(id.clone(), state);
    }
    Ok(states)
}

fn terminal(state: &str) -> bool {
    matches!(state, "done" | "quarantined" | "cancelled")
}

fn kill_restart_scenario(
    seed: u64,
    circuits: &[hyde_circuits::Circuit],
    journal: &std::path::Path,
    workers: usize,
) -> Result<usize, String> {
    let ids: Vec<String> = circuits.iter().map(|c| c.name.clone()).collect();
    let mut child = spawn_server(seed, journal, workers)?;
    for c in circuits {
        let line = format!(
            "{{\"op\":\"submit\",\"id\":\"{0}\",\"kind\":\"suite\",\"circuit\":\"{0}\"}}",
            c.name
        );
        let resp = tcp_request(&child.addr, &line)?;
        if !resp.contains("\"ok\":true") {
            let _ = child.proc.kill();
            return Err(format!("submit {} rejected: {resp}", c.name));
        }
    }
    // Let a few jobs finish, then SIGKILL mid-run.
    let kill_after = (ids.len() / 8).max(1);
    let deadline = Instant::now() + Duration::from_secs(900);
    let before_kill;
    loop {
        let states = poll_states(&child.addr, &ids)?;
        let done = states.values().filter(|s| terminal(s)).count();
        if done >= kill_after {
            before_kill = states;
            break;
        }
        if Instant::now() > deadline {
            let _ = child.proc.kill();
            return Err("kill/restart: no progress before kill point".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    child.proc.kill().map_err(|e| format!("kill child: {e}"))?;
    let _ = child.proc.wait();
    let unfinished = before_kill.values().filter(|s| !terminal(s)).count();

    // Restart on the same journal: replay must recover the queue and
    // finish every remaining job.
    let mut child = spawn_server(seed, journal, workers)?;
    let deadline = Instant::now() + Duration::from_secs(900);
    loop {
        let states = poll_states(&child.addr, &ids)?;
        if states.values().all(|s| terminal(s)) {
            break;
        }
        if Instant::now() > deadline {
            let _ = child.proc.kill();
            return Err(format!(
                "kill/restart: jobs stuck after replay: {:?}",
                states
                    .iter()
                    .filter(|(_, s)| !terminal(s))
                    .collect::<Vec<_>>()
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // Byte-identity: every successful result must match the offline
    // session path, whatever the worker count or kill timing.
    let offline = offline_session(seed);
    for c in circuits {
        let resp = tcp_request(
            &child.addr,
            &format!("{{\"op\":\"result\",\"id\":\"{}\"}}", c.name),
        )?;
        let doc =
            hyde_obs::json::parse(resp.trim()).map_err(|e| format!("result {}: {e}", c.name))?;
        let state = doc.get("state").and_then(|s| s.as_str()).unwrap_or("");
        let reference = offline.run(&offline_job(c));
        match (state, &reference) {
            ("done", Ok(r)) => {
                let blif = doc
                    .get("blif")
                    .and_then(|b| b.as_str())
                    .ok_or_else(|| format!("{}: done result lacks blif", c.name))?;
                if blif != r.blif() {
                    let _ = child.proc.kill();
                    return Err(format!("{}: blif differs from offline path", c.name));
                }
            }
            ("quarantined", Err(_)) => {}
            (s, r) => {
                let _ = child.proc.kill();
                return Err(format!(
                    "{}: serve={s} vs offline={}",
                    c.name,
                    if r.is_ok() { "ok" } else { "quarantined" }
                ));
            }
        }
    }

    // Graceful stop: close the child's stdin (EOF → drain → exit).
    let _ = tcp_request(&child.addr, "{\"op\":\"shutdown\"}");
    drop(child.proc.stdin.take());
    let waited = Instant::now();
    loop {
        match child.proc.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) if waited.elapsed() > Duration::from_secs(60) => {
                let _ = child.proc.kill();
                break;
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
            Err(_) => break,
        }
    }
    Ok(unfinished)
}
