//! TCP front end: newline-delimited JSON on the same port as a
//! minimal HTTP subset for `GET /metrics` and `GET /healthz`.
//!
//! The skeleton follows `hyde_obs::serve::MetricsServer` — `std::net`
//! only, 2 s socket timeouts, bounded heads, stop-flag plus self-poke
//! shutdown — extended with one thread per connection so a slow poller
//! cannot wedge submissions.

use crate::protocol::{self, ProtoError, Request, MAX_LINE_BYTES};
use crate::service::{JobState, MapService, SubmitError};
use hyde_obs::json;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Cap on an HTTP request head.
const MAX_HTTP_HEAD: usize = 8 * 1024;

/// A running front end. Drop (or [`Server::shutdown`]) stops the
/// accept loop; the service itself is shut down separately.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and serves `service` in background threads.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<MapService>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let t_stop = Arc::clone(&stop);
        let t_req = Arc::clone(&shutdown_requested);
        let handle = std::thread::Builder::new()
            .name("hyde-serve-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if t_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let service = Arc::clone(&service);
                        let req = Arc::clone(&t_req);
                        let _ = std::thread::Builder::new()
                            .name("hyde-serve-conn".to_owned())
                            .spawn(move || handle_connection(stream, &service, &req));
                    }
                }
            })?;
        Ok(Server {
            local_addr,
            stop,
            shutdown_requested,
            handle: Some(handle),
        })
    }

    /// The bound address (port 0 resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a client asked the daemon to shut down.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = TcpStream::connect_timeout(&self.local_addr, IO_TIMEOUT);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_connection(stream: TcpStream, service: &MapService, shutdown_req: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let mut line: Vec<u8> = Vec::new();
        // Bounded read: never buffer more than the frame cap + 1.
        let complete = match read_limited_line(&mut reader, &mut line) {
            Ok(c) => c,
            Err(_) => return,
        };
        if line.is_empty() {
            return; // clean EOF between frames
        }
        let t0 = Instant::now();
        let _span = hyde_obs::span!("serve.request");
        hyde_obs::counter("serve.requests", 1);
        if line.starts_with(b"GET ") || line.starts_with(b"HEAD ") {
            handle_http(&mut reader, &mut stream, &line, service);
            hyde_obs::observe("serve.request_us", t0.elapsed().as_micros() as u64);
            return;
        }
        let response = if line.len() > MAX_LINE_BYTES {
            let _ = write_line(
                &mut stream,
                &ProtoError::new(
                    "oversized-frame",
                    format!("frame exceeds {MAX_LINE_BYTES} bytes"),
                )
                .to_json(),
            );
            hyde_obs::observe("serve.request_us", t0.elapsed().as_micros() as u64);
            return; // the rest of the stream is unframed; drop it
        } else if !complete {
            // EOF hit mid-line: answer (the client may have half-closed)
            // and drop the connection.
            let _ = write_line(
                &mut stream,
                &ProtoError::new("truncated-frame", "connection closed mid-frame").to_json(),
            );
            hyde_obs::observe("serve.request_us", t0.elapsed().as_micros() as u64);
            return;
        } else {
            match std::str::from_utf8(&line) {
                Ok(text) => dispatch(text, service, shutdown_req),
                Err(_) => ProtoError::new("bad-utf8", "request line is not valid UTF-8").to_json(),
            }
        };
        let ok = write_line(&mut stream, &response).is_ok();
        hyde_obs::observe("serve.request_us", t0.elapsed().as_micros() as u64);
        if !ok {
            return;
        }
    }
}

/// Reads one `\n`-terminated line, allowing at most `MAX_LINE_BYTES+1`
/// buffered bytes. Returns whether a full line (with newline) arrived.
fn read_limited_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
) -> std::io::Result<bool> {
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Ok(false),
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(true);
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Ok(true); // oversized; caller rejects
                }
            }
            Err(e) => {
                if line.is_empty() {
                    return Err(e);
                }
                return Ok(false);
            }
        }
    }
}

fn write_line(stream: &mut TcpStream, response: &str) -> std::io::Result<()> {
    stream.write_all(response.as_bytes())
}

/// Executes one parsed request line against the service.
fn dispatch(line: &str, service: &MapService, shutdown_req: &AtomicBool) -> String {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => return e.to_json(),
    };
    match request {
        Request::Submit(spec) => {
            let id = spec.id.clone();
            match service.submit(spec) {
                Ok(()) => format!(
                    "{{\"ok\":true,\"id\":\"{}\",\"state\":\"queued\"}}\n",
                    json::escape(&id)
                ),
                Err(SubmitError::Duplicate) => {
                    ProtoError::new("duplicate-id", format!("job '{id}' already exists")).to_json()
                }
                Err(SubmitError::Rejected(r)) => protocol::rejected_json(&r),
                Err(SubmitError::Journal(e)) => {
                    ProtoError::new("journal-error", e.to_string()).to_json()
                }
            }
        }
        Request::Status { id } => match service.state(&id) {
            Some(state) => state_json(&id, &state, false),
            None => unknown_id(&id),
        },
        Request::Result { id } => match service.state(&id) {
            Some(state) => state_json(&id, &state, true),
            None => unknown_id(&id),
        },
        Request::Cancel { id } => match service.cancel(&id) {
            Ok(true) => format!(
                "{{\"ok\":true,\"id\":\"{}\",\"state\":\"cancelled\"}}\n",
                json::escape(&id)
            ),
            Ok(false) => ProtoError::new(
                "not-cancellable",
                format!("job '{id}' is running or terminal"),
            )
            .to_json(),
            Err(()) => unknown_id(&id),
        },
        Request::Shutdown => {
            shutdown_req.store(true, Ordering::Relaxed);
            "{\"ok\":true,\"state\":\"shutting-down\"}\n".to_owned()
        }
    }
}

fn unknown_id(id: &str) -> String {
    ProtoError::new("unknown-id", format!("no job '{id}'")).to_json()
}

/// Renders a job state as a response line. `body` includes the result
/// payload (BLIF) for terminal `done` states.
fn state_json(id: &str, state: &JobState, body: bool) -> String {
    let id = json::escape(id);
    match state {
        JobState::Queued => format!("{{\"ok\":true,\"id\":\"{id}\",\"state\":\"queued\"}}\n"),
        JobState::Running { attempt } => {
            format!("{{\"ok\":true,\"id\":\"{id}\",\"state\":\"running\",\"attempt\":{attempt}}}\n")
        }
        JobState::Done {
            luts,
            depth,
            blif,
            attempts,
            degradations,
        } => {
            if body {
                format!(
                    "{{\"ok\":true,\"id\":\"{id}\",\"state\":\"done\",\"luts\":{luts},\
                     \"depth\":{depth},\"attempts\":{attempts},\"degradations\":{},\
                     \"blif\":\"{}\"}}\n",
                    degradations.len(),
                    json::escape(blif)
                )
            } else {
                format!(
                    "{{\"ok\":true,\"id\":\"{id}\",\"state\":\"done\",\"luts\":{luts},\
                     \"depth\":{depth},\"attempts\":{attempts}}}\n"
                )
            }
        }
        JobState::Quarantined { error, attempts } => format!(
            "{{\"ok\":true,\"id\":\"{id}\",\"state\":\"quarantined\",\"attempts\":{attempts},\
             \"error\":\"{}\"}}\n",
            json::escape(error)
        ),
        JobState::Cancelled => {
            format!("{{\"ok\":true,\"id\":\"{id}\",\"state\":\"cancelled\"}}\n")
        }
    }
}

/// Serves one HTTP request whose first line is already in `first`.
fn handle_http(
    reader: &mut BufReader<TcpStream>,
    stream: &mut TcpStream,
    first: &[u8],
    service: &MapService,
) {
    // Drain the head (bounded) so the client sees a clean exchange.
    let mut head_bytes = first.len();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(n) => {
                head_bytes += n;
                if line == "\r\n" || line == "\n" || head_bytes >= MAX_HTTP_HEAD {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let first = String::from_utf8_lossy(first);
    let path = first.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => {
            let report = hyde_obs::report();
            let hists = hyde_obs::histograms();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                hyde_obs::prom::render(&report, &hists),
            )
        }
        "/healthz" | "/health" => ("200 OK", "application/json", service.healthz_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}
