//! The crash-recovery drill (`cargo xtask serve-drill`).
//!
//! [`run_supervised_drill`] is the in-process half: submit a circuit
//! suite to a chaos-armed service (worker kills and stalls injected
//! mid-job), require every job to reach a terminal state with zero
//! process aborts, and check successful outputs byte-identical to the
//! offline [`Session`] path. The `hyde-serve --drill` binary adds the
//! out-of-process half: `SIGKILL` a serving child mid-run, restart it
//! on the same journal, and require the replay to finish the rest.
//!
//! Results are written as `CHAOS_serve_<name>.json` in the same
//! `hyde-chaos-v1` schema the bench chaos drill uses, with quarantined
//! jobs mapped to `panicked` status — `totals.failed` stays reserved
//! for typed mapping defects, which fail validation.

use crate::protocol::{JobKind, JobSpec};
use crate::service::{JobState, MapService, ServeConfig};
use hyde_bench::perf::{ChaosRun, ChaosSample, ChaosStatus};
use hyde_circuits::Circuit;
use hyde_guard::RetryPolicy;
use hyde_map::session::BudgetSpec;
use hyde_map::{FlowKind, Session};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Retry base delay used by drills: short enough to keep three seeds
/// fast, long enough to exercise the backoff path.
const DRILL_BASE_DELAY: Duration = Duration::from_millis(5);

/// The drill's service/session configuration for `seed` — shared by
/// the in-process drill, the drill daemon, and the offline comparison
/// path, so all three run the identical supervision schedule.
pub fn drill_config(seed: u64, workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        chaos: Some(seed),
        worker_faults: true,
        retry: RetryPolicy::standard().with_base_delay(DRILL_BASE_DELAY),
        ..ServeConfig::standard()
    }
}

/// The offline session equivalent of [`drill_config`] — the reference
/// the service outputs must byte-match.
pub fn offline_session(seed: u64) -> Session {
    let cfg = drill_config(seed, 1);
    Session::new(cfg.k, FlowKind::hyde(0xDA98))
        .with_retry(cfg.retry)
        .with_chaos(seed)
        .with_worker_faults(true)
}

/// Outcome of the in-process supervised drill.
#[derive(Debug)]
pub struct DrillSummary {
    /// Chaos-schema run record (one sample per circuit).
    pub run: ChaosRun,
    /// Jobs that mapped successfully.
    pub ok: usize,
    /// Jobs quarantined after exhausting retries.
    pub quarantined: usize,
    /// Jobs that hit a typed mapping defect (must be zero).
    pub failed: usize,
    /// Total retries the service took.
    pub retries: u64,
    /// Circuits whose service output differed from the offline session
    /// path (must be empty).
    pub mismatches: Vec<String>,
}

/// Runs the supervised in-process drill over `circuits`.
///
/// # Errors
///
/// Returns a description of the first violated invariant: a job stuck
/// non-terminal, a fate or byte mismatch against the offline path.
pub fn run_supervised_drill(
    seed: u64,
    circuits: &[Circuit],
    workers: usize,
    journal: Option<&Path>,
    timeout: Duration,
) -> Result<DrillSummary, String> {
    let service =
        MapService::start(drill_config(seed, workers), journal).map_err(|e| e.to_string())?;
    let ids: Vec<String> = circuits.iter().map(|c| c.name.clone()).collect();
    for c in circuits {
        service
            .submit(suite_spec(&c.name))
            .map_err(|e| format!("submit {}: {e:?}", c.name))?;
    }
    if !service.wait_terminal(&ids, timeout) {
        return Err(format!(
            "jobs not terminal after {}s (queue={}, running={})",
            timeout.as_secs(),
            service.queue_depth(),
            service.running_count()
        ));
    }
    let offline = offline_session(seed);
    let mut samples = Vec::with_capacity(circuits.len());
    let mut ok = 0usize;
    let mut quarantined = 0usize;
    let mut failed = 0usize;
    let mut retries = 0u64;
    let mut mismatches = Vec::new();
    for c in circuits {
        let state = service
            .state(&c.name)
            .ok_or_else(|| format!("{}: state lost", c.name))?;
        let reference = offline.run(&offline_job(c));
        let (status, degradations) = match state {
            JobState::Done {
                luts,
                blif,
                attempts,
                degradations,
                ..
            } => {
                ok += 1;
                retries += u64::from(attempts.saturating_sub(1));
                match &reference {
                    Ok(r) if r.blif() == blif => {}
                    Ok(_) => mismatches.push(format!("{}: blif differs from offline", c.name)),
                    Err(_) => mismatches.push(format!("{}: offline quarantined, serve ok", c.name)),
                }
                (ChaosStatus::Ok { luts }, degradations)
            }
            JobState::Quarantined {
                error, attempts, ..
            } => {
                quarantined += 1;
                retries += u64::from(attempts.saturating_sub(1));
                let degradations = match &reference {
                    Err(e) => e.degradations.clone(),
                    Ok(_) => {
                        mismatches.push(format!("{}: offline ok, serve quarantined", c.name));
                        Vec::new()
                    }
                };
                (ChaosStatus::Panicked { message: error }, degradations)
            }
            other => {
                failed += 1;
                (
                    ChaosStatus::Failed {
                        error: format!("non-terminal state {}", other.as_str()),
                    },
                    Vec::new(),
                )
            }
        };
        samples.push(ChaosSample {
            name: c.name.clone(),
            status,
            degradations,
        });
    }
    service.shutdown(Duration::from_secs(5));
    let run = ChaosRun {
        name: format!("serve_s{seed}"),
        seed,
        k: 5,
        samples,
    };
    let summary = DrillSummary {
        run,
        ok,
        quarantined,
        failed,
        retries,
        mismatches,
    };
    if summary.failed > 0 {
        return Err(format!("{} job(s) ended non-terminal", summary.failed));
    }
    if !summary.mismatches.is_empty() {
        return Err(format!("determinism broken: {:?}", summary.mismatches));
    }
    Ok(summary)
}

/// A suite-kind spec for one circuit (id = circuit name).
pub fn suite_spec(circuit: &str) -> JobSpec {
    JobSpec {
        id: circuit.to_owned(),
        name: circuit.to_owned(),
        kind: JobKind::Suite {
            circuit: circuit.to_owned(),
        },
        budget: BudgetSpec::unlimited(),
    }
}

/// The offline job equivalent of [`suite_spec`].
pub fn offline_job(c: &Circuit) -> hyde_map::Job {
    hyde_map::Job::new(&c.name, c.outputs.clone())
}

/// One request/response exchange over a fresh TCP connection — the
/// drill's (deliberately stateless) protocol client.
///
/// # Errors
///
/// Returns connect/read/write failures as strings.
pub fn tcp_request(addr: &str, line: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    Ok(response)
}
