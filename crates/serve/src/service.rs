//! The supervised mapping service: bounded queue, N worker threads
//! running [`hyde_map::Session`] jobs, a deadline watchdog, and the
//! write-ahead journal.
//!
//! Supervision invariants:
//!
//! * a worker thread never dies: every job runs through the session's
//!   `catch_unwind` (plus a belt-and-braces one around the whole job
//!   block), so panics become typed quarantine records;
//! * every admitted job reaches a terminal state (`done`,
//!   `quarantined`, `cancelled`) or survives in the journal as pending;
//! * the journal record for a state transition is durable (fsynced)
//!   before the transition is observable to clients;
//! * shutdown drains in-flight jobs under a deadline; whatever is
//!   still queued stays journaled for the next start.

use crate::journal::{replay, Journal, JournalEvent, Terminal};
use crate::protocol::JobSpec;
use crate::queue::JobQueue;
use hyde_guard::{AdmissionLimits, DegradationEvent, Rejected, RetryPolicy};
use hyde_map::session::AttemptOutcome;
use hyde_map::{FlowKind, Session};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker thread count.
    pub workers: usize,
    /// LUT size jobs are mapped to.
    pub k: usize,
    /// Retry policy every job runs under.
    pub retry: RetryPolicy,
    /// Admission caps for the job queue.
    pub limits: AdmissionLimits,
    /// Chaos seed arming the deterministic fault layer (flow sites, and
    /// — with `worker_faults` — the kill/stall sites).
    pub chaos: Option<u64>,
    /// Arms the `serve.kill:*`/`serve.stall:*` worker-fault sites.
    pub worker_faults: bool,
}

impl ServeConfig {
    /// Production-shaped defaults: 4 workers, k=5, standard retries and
    /// limits, no chaos.
    pub fn standard() -> Self {
        ServeConfig {
            workers: 4,
            k: 5,
            retry: RetryPolicy::standard(),
            limits: AdmissionLimits::standard(),
            chaos: None,
            worker_faults: false,
        }
    }
}

/// Grace the watchdog grants past a job's deadline before counting an
/// overrun (the in-band budget deadline is what actually terminates the
/// attempt; the watchdog is detection, not enforcement).
const WATCHDOG_GRACE: Duration = Duration::from_millis(250);

/// Client-visible job state.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is on attempt `attempt`.
    Running {
        /// 1-based attempt in flight.
        attempt: u32,
    },
    /// Mapped, verified, terminal.
    Done {
        /// LUT count.
        luts: usize,
        /// Depth in LUT levels.
        depth: usize,
        /// The mapped network.
        blif: String,
        /// Attempts consumed.
        attempts: u32,
        /// Degradation events of the successful attempt.
        degradations: Vec<DegradationEvent>,
    },
    /// Retries exhausted; terminal typed failure.
    Quarantined {
        /// Terminal error text.
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Cancelled while queued; terminal.
    Cancelled,
}

impl JobState {
    /// Stable state token.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Done { .. } => "done",
            JobState::Quarantined { .. } => "quarantined",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Quarantined { .. } | JobState::Cancelled
        )
    }
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// A job with this id already exists.
    Duplicate,
    /// Admission control rejected the job (backpressure).
    Rejected(Rejected),
    /// The journal write failed — the job was NOT accepted (no ack
    /// without durability).
    Journal(std::io::Error),
}

struct RunInfo {
    since: Instant,
    deadline_ms: Option<u64>,
    flagged: bool,
}

struct Inner {
    cfg: ServeConfig,
    queue: JobQueue,
    states: Mutex<HashMap<String, JobState>>,
    journal: Mutex<Option<Journal>>,
    running: Mutex<HashMap<String, RunInfo>>,
    submit_lock: Mutex<()>,
    session: Session,
    stop: AtomicBool,
}

/// A running mapping service.
pub struct MapService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    watchdog: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MapService {
    /// Starts the service: opens and replays the journal (if a path is
    /// given), re-enqueues recovered pending jobs, and spawns the
    /// worker pool and watchdog.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O failures.
    pub fn start(cfg: ServeConfig, journal_path: Option<&Path>) -> std::io::Result<MapService> {
        let mut session = Session::new(cfg.k, FlowKind::hyde(0xDA98))
            .with_retry(cfg.retry)
            .with_worker_faults(cfg.worker_faults);
        if let Some(seed) = cfg.chaos {
            session = session.with_chaos(seed);
        }
        let mut states = HashMap::new();
        let queue = JobQueue::new(cfg.limits);
        let mut journal = None;
        if let Some(path) = journal_path {
            let (j, events, _skipped) = Journal::open(path)?;
            let rec = replay(&events);
            for (id, term) in rec.terminal {
                states.insert(id, terminal_state(term));
            }
            for id in rec.cancelled {
                states.insert(id, JobState::Cancelled);
            }
            hyde_obs::counter("serve.recovered", rec.pending.len() as u64);
            for spec in rec.pending {
                states.insert(spec.id.clone(), JobState::Queued);
                queue.requeue(spec);
            }
            journal = Some(j);
        }
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            queue,
            states: Mutex::new(states),
            journal: Mutex::new(journal),
            running: Mutex::new(HashMap::new()),
            submit_lock: Mutex::new(()),
            session,
            stop: AtomicBool::new(false),
        });
        // `workers == 0` is honored: an accept-only service that queues
        // and journals but never runs — tests use it to pin jobs queued.
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("hyde-serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        let wd_inner = Arc::clone(&inner);
        let watchdog = std::thread::Builder::new()
            .name("hyde-serve-watchdog".to_owned())
            .spawn(move || watchdog_loop(&wd_inner))?;
        Ok(MapService {
            inner,
            workers: Mutex::new(workers),
            watchdog: Mutex::new(Some(watchdog)),
        })
    }

    /// Submits a job: duplicate check, admission check, durable journal
    /// record, then enqueue — in that order, so no accepted job can be
    /// lost and no rejected job can leak into the journal.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] distinguishes duplicates, backpressure and
    /// journal failures.
    pub fn submit(&self, spec: JobSpec) -> Result<(), SubmitError> {
        let _g = self.inner.submit_lock.lock().expect("submit lock");
        {
            let states = self.inner.states.lock().expect("states mutex");
            if states.contains_key(&spec.id) {
                return Err(SubmitError::Duplicate);
            }
        }
        if let Err(r) = self.inner.queue.would_admit(&spec) {
            hyde_obs::counter("serve.rejected", 1);
            return Err(SubmitError::Rejected(r));
        }
        if let Some(j) = self.inner.journal.lock().expect("journal mutex").as_mut() {
            j.append(&JournalEvent::Submitted { spec: spec.clone() })
                .map_err(SubmitError::Journal)?;
        }
        self.inner
            .states
            .lock()
            .expect("states mutex")
            .insert(spec.id.clone(), JobState::Queued);
        self.inner.queue.requeue(spec);
        hyde_obs::counter("serve.submitted", 1);
        Ok(())
    }

    /// The current state of a job, if known.
    pub fn state(&self, id: &str) -> Option<JobState> {
        self.inner
            .states
            .lock()
            .expect("states mutex")
            .get(id)
            .cloned()
    }

    /// Cancels a queued job. `Ok(true)` = cancelled now; `Ok(false)` =
    /// known but not cancellable (running or terminal); `Err(())` =
    /// unknown id.
    #[allow(clippy::result_unit_err)]
    pub fn cancel(&self, id: &str) -> Result<bool, ()> {
        if self.inner.queue.cancel(id) {
            if let Some(j) = self.inner.journal.lock().expect("journal mutex").as_mut() {
                let _ = j.append(&JournalEvent::Cancelled { id: id.to_owned() });
            }
            self.inner
                .states
                .lock()
                .expect("states mutex")
                .insert(id.to_owned(), JobState::Cancelled);
            hyde_obs::counter("serve.cancelled", 1);
            return Ok(true);
        }
        match self.state(id) {
            Some(_) => Ok(false),
            None => Err(()),
        }
    }

    /// Queued job count.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Jobs currently on a worker.
    pub fn running_count(&self) -> usize {
        self.inner.running.lock().expect("running mutex").len()
    }

    /// Blocks until every id in `ids` is terminal, or `timeout`
    /// elapses. Returns whether all became terminal.
    pub fn wait_terminal(&self, ids: &[String], timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let states = self.inner.states.lock().expect("states mutex");
                if ids
                    .iter()
                    .all(|id| states.get(id).is_some_and(JobState::is_terminal))
                {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The service-level `/healthz` body.
    pub fn healthz_json(&self) -> String {
        let (done, quarantined, cancelled) = {
            let states = self.inner.states.lock().expect("states mutex");
            let done = states
                .values()
                .filter(|s| matches!(s, JobState::Done { .. }))
                .count();
            let q = states
                .values()
                .filter(|s| matches!(s, JobState::Quarantined { .. }))
                .count();
            let c = states
                .values()
                .filter(|s| matches!(s, JobState::Cancelled))
                .count();
            (done, q, c)
        };
        format!(
            "{{\"status\": \"ok\", \"workers\": {}, \"queue_depth\": {}, \"running\": {}, \
             \"done\": {done}, \"quarantined\": {quarantined}, \"cancelled\": {cancelled}}}\n",
            self.inner.cfg.workers,
            self.queue_depth(),
            self.running_count()
        )
    }

    /// Graceful shutdown: stop admitting, let workers drain their
    /// in-flight jobs until `drain` elapses, then detach whatever is
    /// left (its journal records keep it recoverable).
    pub fn shutdown(&self, drain: Duration) {
        self.inner.queue.close();
        self.inner.stop.store(true, Ordering::Relaxed);
        let deadline = Instant::now() + drain;
        let mut workers = self.workers.lock().expect("workers mutex");
        while Instant::now() < deadline {
            if workers.iter().all(|h| h.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for h in workers.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            }
            // An unfinished worker is mid-job past the drain deadline:
            // detach it; the job's journal records keep it recoverable.
        }
        if let Some(wd) = self.watchdog.lock().expect("watchdog mutex").take() {
            let _ = wd.join();
        }
    }
}

impl Drop for MapService {
    fn drop(&mut self) {
        self.inner.queue.close();
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(wd) = self.watchdog.lock().expect("watchdog mutex").take() {
            let _ = wd.join();
        }
    }
}

fn terminal_state(term: Terminal) -> JobState {
    match term {
        Terminal::Done {
            luts,
            depth,
            blif,
            attempts,
        } => JobState::Done {
            luts,
            depth,
            blif,
            attempts,
            // Degradation detail does not survive a restart; the counts
            // in the journal's retried events do.
            degradations: Vec::new(),
        },
        Terminal::Quarantined { error, attempts } => JobState::Quarantined { error, attempts },
    }
}

fn watchdog_loop(inner: &Inner) {
    while !inner.stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
        let mut running = inner.running.lock().expect("running mutex");
        for info in running.values_mut() {
            if info.flagged {
                continue;
            }
            if let Some(ms) = info.deadline_ms {
                if info.since.elapsed() > Duration::from_millis(ms) + WATCHDOG_GRACE {
                    info.flagged = true;
                    hyde_obs::counter("serve.watchdog.overruns", 1);
                }
            }
        }
    }
}

fn worker_loop(inner: &Inner) {
    while let Some((spec, enqueued)) = inner.queue.pop() {
        // Belt and braces: the session already isolates each attempt,
        // but nothing in this block may kill the worker either.
        let outcome = catch_unwind(AssertUnwindSafe(|| run_one(inner, &spec, enqueued)));
        if outcome.is_err() {
            let mut states = inner.states.lock().expect("states mutex");
            states.insert(
                spec.id.clone(),
                JobState::Quarantined {
                    error: "internal: job runner panicked outside the session".into(),
                    attempts: 0,
                },
            );
            hyde_obs::counter("serve.quarantined", 1);
        }
        inner
            .running
            .lock()
            .expect("running mutex")
            .remove(&spec.id);
    }
}

fn run_one(inner: &Inner, spec: &JobSpec, enqueued: Instant) {
    let _span = hyde_obs::span!("serve.job");
    hyde_obs::observe("serve.queue_wait_us", enqueued.elapsed().as_micros() as u64);
    let t0 = Instant::now();
    inner.running.lock().expect("running mutex").insert(
        spec.id.clone(),
        RunInfo {
            since: t0,
            deadline_ms: spec.budget.deadline_ms,
            flagged: false,
        },
    );
    inner
        .states
        .lock()
        .expect("states mutex")
        .insert(spec.id.clone(), JobState::Running { attempt: 1 });
    journal_append(
        inner,
        &JournalEvent::Started {
            id: spec.id.clone(),
            attempt: 1,
        },
    );
    let job = match spec.resolve() {
        Ok(job) => job,
        Err(e) => {
            // Specs are validated at submit time; hitting this means a
            // hand-edited journal. Quarantine, don't die.
            finish(inner, spec, t0, Err((e.to_string(), 0)));
            return;
        }
    };
    let retry = *inner.session.retry();
    let result = inner.session.run_with(&job, &mut |rec| {
        if !matches!(rec.outcome, AttemptOutcome::Ok) && retry.retries_remaining(rec.attempt) {
            journal_append(
                inner,
                &JournalEvent::Retried {
                    id: spec.id.clone(),
                    attempt: rec.attempt,
                    outcome: rec.outcome.as_str().to_owned(),
                },
            );
            hyde_obs::counter("serve.retries", 1);
            inner.states.lock().expect("states mutex").insert(
                spec.id.clone(),
                JobState::Running {
                    attempt: rec.attempt + 1,
                },
            );
            if let Some(info) = inner
                .running
                .lock()
                .expect("running mutex")
                .get_mut(&spec.id)
            {
                // Restart the watchdog clock for the new attempt.
                info.since = Instant::now();
                info.flagged = false;
            }
        }
    });
    match result {
        Ok(res) => {
            let blif = res.blif();
            finish(
                inner,
                spec,
                t0,
                Ok((
                    res.report.luts,
                    res.report.depth,
                    blif,
                    res.attempts.len() as u32,
                    res.degradations,
                )),
            );
        }
        Err(err) => {
            let attempts = err.attempts.len() as u32;
            finish(inner, spec, t0, Err((err.to_string(), attempts)));
        }
    }
}

type DoneBody = (usize, usize, String, u32, Vec<DegradationEvent>);

fn finish(inner: &Inner, spec: &JobSpec, t0: Instant, outcome: Result<DoneBody, (String, u32)>) {
    let (event, state) = match outcome {
        Ok((luts, depth, blif, attempts, degradations)) => (
            JournalEvent::Completed {
                id: spec.id.clone(),
                outcome: Terminal::Done {
                    luts,
                    depth,
                    blif: blif.clone(),
                    attempts,
                },
            },
            JobState::Done {
                luts,
                depth,
                blif,
                attempts,
                degradations,
            },
        ),
        Err((error, attempts)) => (
            JournalEvent::Completed {
                id: spec.id.clone(),
                outcome: Terminal::Quarantined {
                    error: error.clone(),
                    attempts,
                },
            },
            JobState::Quarantined { error, attempts },
        ),
    };
    // Journal first (durability), then flip the visible state.
    journal_append(inner, &event);
    let quarantined = matches!(state, JobState::Quarantined { .. });
    inner
        .states
        .lock()
        .expect("states mutex")
        .insert(spec.id.clone(), state);
    if quarantined {
        hyde_obs::counter("serve.quarantined", 1);
    } else {
        hyde_obs::counter("serve.completed", 1);
    }
    hyde_obs::observe("serve.job_wall_us", t0.elapsed().as_micros() as u64);
}

fn journal_append(inner: &Inner, ev: &JournalEvent) {
    if let Some(j) = inner.journal.lock().expect("journal mutex").as_mut() {
        // Journal write failures after admission are logged as dropped
        // durability, not job failures: the in-memory run proceeds.
        let _ = j.append(ev);
    }
}
