//! End-to-end tests for `hyde-serve`: the TCP protocol surface, the
//! malformed-request corpus, admission backpressure, and journal-based
//! recovery after a mid-run shutdown.

use hyde_guard::{AdmissionLimits, RetryPolicy};
use hyde_serve::drill::{offline_job, run_supervised_drill, suite_spec};
use hyde_serve::{JobState, MapService, ServeConfig, Server, SubmitError};
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

static TEMP_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hyde-serve-test-{tag}-{}-{n}", std::process::id()))
}

fn quiet_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        ..ServeConfig::standard()
    }
}

fn start_server(cfg: ServeConfig) -> (Arc<MapService>, Server) {
    let service = Arc::new(MapService::start(cfg, None).expect("service start"));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind");
    (service, server)
}

/// One request/response exchange on a fresh connection.
fn request(addr: &std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).unwrap();
    response
}

fn poll_until(
    addr: &std::net::SocketAddr,
    id: &str,
    want: &str,
    timeout: Duration,
) -> Option<String> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let resp = request(addr, &format!("{{\"op\":\"status\",\"id\":\"{id}\"}}"));
        if resp.contains(&format!("\"state\":\"{want}\"")) {
            return Some(resp);
        }
        if std::time::Instant::now() > deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submit_status_result_over_tcp_matches_offline_session() {
    let (service, server) = start_server(quiet_cfg(2));
    let addr = server.local_addr();
    let resp = request(
        &addr,
        "{\"op\":\"submit\",\"id\":\"j1\",\"kind\":\"suite\",\"circuit\":\"misex1\"}",
    );
    assert!(resp.contains("\"ok\":true"), "submit failed: {resp}");
    assert!(
        poll_until(&addr, "j1", "done", Duration::from_secs(120)).is_some(),
        "job never finished"
    );
    let resp = request(&addr, "{\"op\":\"result\",\"id\":\"j1\"}");
    let doc = hyde_obs::json::parse(resp.trim()).expect("result json");
    let blif = doc.get("blif").and_then(|b| b.as_str()).expect("blif");
    // The served output must byte-match the plain offline session.
    let offline = hyde_map::Session::new(5, hyde_map::FlowKind::hyde(0xDA98));
    let circuit = hyde_circuits::suite()
        .into_iter()
        .find(|c| c.name == "misex1")
        .unwrap();
    let reference = offline.run(&offline_job(&circuit)).expect("offline map");
    assert_eq!(blif, reference.blif());
    server.shutdown();
    service.shutdown(Duration::from_secs(10));
}

#[test]
fn duplicate_unknown_and_cancel_paths() {
    // Zero workers: jobs stay queued so cancellation is deterministic.
    let (service, server) = start_server(quiet_cfg(0));
    let addr = server.local_addr();
    let submit = "{\"op\":\"submit\",\"id\":\"dup\",\"kind\":\"suite\",\"circuit\":\"rd73\"}";
    assert!(request(&addr, submit).contains("\"ok\":true"));
    let resp = request(&addr, submit);
    assert!(resp.contains("duplicate-id"), "want duplicate-id: {resp}");
    let resp = request(&addr, "{\"op\":\"status\",\"id\":\"ghost\"}");
    assert!(resp.contains("unknown-id"), "want unknown-id: {resp}");
    let resp = request(&addr, "{\"op\":\"cancel\",\"id\":\"dup\"}");
    assert!(resp.contains("\"state\":\"cancelled\""), "cancel: {resp}");
    // Terminal jobs are not cancellable.
    let resp = request(&addr, "{\"op\":\"cancel\",\"id\":\"dup\"}");
    assert!(resp.contains("not-cancellable"), "re-cancel: {resp}");
    server.shutdown();
    service.shutdown(Duration::from_secs(5));
}

#[test]
fn admission_backpressure_is_a_typed_rejection() {
    let cfg = ServeConfig {
        workers: 0,
        limits: AdmissionLimits {
            max_depth: 1,
            max_pending_nodes: u64::MAX,
        },
        ..ServeConfig::standard()
    };
    let (service, server) = start_server(cfg);
    let addr = server.local_addr();
    assert!(request(
        &addr,
        "{\"op\":\"submit\",\"id\":\"a\",\"kind\":\"suite\",\"circuit\":\"rd73\"}"
    )
    .contains("\"ok\":true"));
    let resp = request(
        &addr,
        "{\"op\":\"submit\",\"id\":\"b\",\"kind\":\"suite\",\"circuit\":\"rd84\"}",
    );
    assert!(resp.contains("\"error\":\"rejected\""), "reject: {resp}");
    assert!(resp.contains("\"reason\":\"queue-full\""), "reason: {resp}");
    assert!(resp.contains("retry_after_ms"), "hint: {resp}");
    server.shutdown();
    service.shutdown(Duration::from_secs(5));
}

/// Malformed frames get structured errors, and the server survives the
/// whole corpus: a well-formed request still works afterwards.
#[test]
fn malformed_request_corpus_over_tcp() {
    let (service, server) = start_server(quiet_cfg(1));
    let addr = server.local_addr();
    let corpus: &[(&[u8], &str)] = &[
        (b"{\"op\":", "bad-json"),
        (b"not json at all", "bad-json"),
        (b"{}", "missing-field"),
        (b"{\"op\":\"warp\"}", "unknown-op"),
        (b"{\"op\":\"submit\",\"id\":\"x\"}", "missing-field"),
        (
            b"{\"op\":\"submit\",\"id\":\"x\",\"kind\":\"quantum\"}",
            "unknown-job-kind",
        ),
        (
            b"{\"op\":\"submit\",\"id\":\"x\",\"kind\":\"suite\",\"circuit\":\"nope\"}",
            "unknown-job-kind",
        ),
        (
            b"{\"op\":\"submit\",\"id\":\"\",\"kind\":\"suite\",\"circuit\":\"rd73\"}",
            "bad-field",
        ),
        (b"{\"op\":\"status\"}", "missing-field"),
        (b"\xff\xfe{\"op\":\"status\"}", "bad-utf8"),
    ];
    for (bytes, want) in corpus {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(bytes).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(
            response.contains(want),
            "corpus {:?}: want {want}, got {response}",
            String::from_utf8_lossy(bytes)
        );
        // Every error is itself a parsable single-line JSON object.
        hyde_obs::json::parse(response.trim()).expect("error response parses");
    }

    // Truncated frame: half-close mid-line.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"{\"op\":\"stat").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).unwrap();
    assert!(response.contains("truncated-frame"), "got {response}");

    // Oversized frame: a line past the cap is rejected, not buffered.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let big = vec![b'x'; hyde_serve::protocol::MAX_LINE_BYTES + 10];
    stream.write_all(&big).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    BufReader::new(stream).read_line(&mut response).unwrap();
    assert!(response.contains("oversized-frame"), "got {response}");

    // The server is still healthy after the whole corpus.
    let resp = request(&addr, "{\"op\":\"status\",\"id\":\"ghost\"}");
    assert!(resp.contains("unknown-id"));
    server.shutdown();
    service.shutdown(Duration::from_secs(5));
}

/// The parser never panics on arbitrary input: sweep the corpus plus
/// mutations through `parse_request` under `catch_unwind`.
#[test]
fn parser_never_panics_on_corpus_mutations() {
    let seeds = [
        "{\"op\":\"submit\",\"id\":\"x\",\"kind\":\"suite\",\"circuit\":\"rd73\"}",
        "{\"op\":\"submit\",\"id\":\"x\",\"kind\":\"pla\",\"pla\":\".i 1\\n.o 1\\n1 1\\n.e\"}",
        "{\"op\":\"status\",\"id\":\"x\"}",
        "{\"op\":\"cancel\",\"id\":\"x\"}",
        "{\"op\":\"shutdown\"}",
        "[1,2,3]",
        "\"just a string\"",
        "{\"op\":{\"nested\":true}}",
    ];
    for seed in seeds {
        for cut in 0..=seed.len() {
            let truncated = &seed[..cut];
            let r = std::panic::catch_unwind(|| {
                let _ = hyde_serve::protocol::parse_request(truncated);
            });
            assert!(r.is_ok(), "parser panicked on {truncated:?}");
        }
        let noisy = seed.replace('"', "'");
        assert!(std::panic::catch_unwind(|| {
            let _ = hyde_serve::protocol::parse_request(&noisy);
        })
        .is_ok());
    }
}

/// HTTP endpoints share the port: `/metrics` renders Prometheus text,
/// `/healthz` reports worker and queue gauges.
#[test]
fn http_metrics_and_healthz_share_the_port() {
    let (service, server) = start_server(quiet_cfg(1));
    let addr = server.local_addr();
    let get = |path: &str| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    };
    let health = get("/healthz");
    assert!(health.contains("200 OK"), "healthz: {health}");
    assert!(health.contains("\"workers\": 1"), "healthz: {health}");
    let metrics = get("/metrics");
    assert!(metrics.contains("200 OK"), "metrics: {metrics}");
    let missing = get("/nope");
    assert!(missing.contains("404"), "404: {missing}");
    server.shutdown();
    service.shutdown(Duration::from_secs(5));
}

/// Shutdown mid-run journals the queue; a restart on the same journal
/// replays it and finishes every job with offline-identical output.
#[test]
fn journal_replay_recovers_a_mid_run_shutdown() {
    let journal = temp_path("replay");
    let circuits = hyde_circuits::suite_small();
    let cfg = ServeConfig {
        workers: 1,
        retry: RetryPolicy::single_attempt(),
        ..ServeConfig::standard()
    };
    let service = MapService::start(cfg.clone(), Some(&journal)).expect("start");
    for c in &circuits {
        service.submit(suite_spec(&c.name)).expect("submit");
    }
    // Give the worker a moment, then stop without draining: the rest of
    // the queue must survive in the journal.
    std::thread::sleep(Duration::from_millis(50));
    service.shutdown(Duration::from_millis(200));
    drop(service);

    let service = MapService::start(cfg, Some(&journal)).expect("restart");
    let ids: Vec<String> = circuits.iter().map(|c| c.name.clone()).collect();
    assert!(
        service.wait_terminal(&ids, Duration::from_secs(300)),
        "replayed jobs did not finish (queue={}, running={})",
        service.queue_depth(),
        service.running_count()
    );
    let offline = hyde_map::Session::new(5, hyde_map::FlowKind::hyde(0xDA98));
    for c in &circuits {
        match service.state(&c.name) {
            Some(JobState::Done { blif, .. }) => {
                let reference = offline.run(&offline_job(c)).expect("offline");
                assert_eq!(blif, reference.blif(), "{} differs after replay", c.name);
            }
            other => panic!("{}: unexpected state {other:?}", c.name),
        }
    }
    // Submitting a replayed id again is still a duplicate.
    assert!(matches!(
        service.submit(suite_spec(&circuits[0].name)),
        Err(SubmitError::Duplicate)
    ));
    service.shutdown(Duration::from_secs(5));
    let _ = std::fs::remove_file(&journal);
}

/// The in-process chaos drill holds on the small suite: every job
/// terminal, zero typed failures, outputs byte-identical to offline.
#[test]
fn supervised_drill_small_suite() {
    let summary = run_supervised_drill(
        42,
        &hyde_circuits::suite_small(),
        4,
        None,
        Duration::from_secs(300),
    )
    .expect("drill");
    assert_eq!(summary.failed, 0);
    assert!(summary.mismatches.is_empty());
    assert_eq!(
        summary.ok + summary.quarantined,
        hyde_circuits::suite_small().len()
    );
}
