//! Shard determinism: the merged snapshot of a [`Collector`] must be a
//! pure function of the recorded data, independent of how many threads
//! recorded it. One collector is fed a synthetic workload from a single
//! thread, another the same workload from eight threads concurrently;
//! every exported artifact — the Chrome trace, the `ObsReport` JSON, and
//! the Prometheus exposition — must come out byte-identical.

use hyde_obs::{Collector, Event, EventPhase};

/// Span names used by the synthetic workload (taxonomy names, though the
/// collector itself does not care).
const SPAN_NAMES: [&str; 4] = ["map.outputs", "decompose.step", "sat.solve", "hyper.fold"];
const COUNTER_NAMES: [&str; 3] = ["bdd.nodes", "sat.conflicts", "decompose.steps"];
const FAMILY_NAMES: [&str; 2] = ["bench.circuit_wall_us", "obs.serve.request_us"];

const TRACKS: u32 = 8;
const SPANS_PER_TRACK: usize = 50;
const COUNTS_PER_TRACK: u64 = 20;

/// Per-track event streams with globally distinct, interleaved
/// timestamps: track t's i-th span begins at `i*100 + t*10` and ends 5ns
/// later, so the merged order mixes all eight tracks.
fn event_workload() -> Vec<(u32, Vec<Event>)> {
    (0..TRACKS)
        .map(|track| {
            let mut events = Vec::new();
            for i in 0..SPANS_PER_TRACK {
                let name = SPAN_NAMES[(track as usize + i) % SPAN_NAMES.len()];
                let base = (i as u64) * 100 + u64::from(track) * 10;
                events.push(Event {
                    name,
                    track,
                    ts_ns: base,
                    phase: EventPhase::Begin,
                    chunk: false,
                });
                events.push(Event {
                    name,
                    track,
                    ts_ns: base + 5,
                    phase: EventPhase::End,
                    chunk: false,
                });
            }
            (track, events)
        })
        .collect()
}

/// The counter/histogram workload one track contributes. The multiset of
/// `(name, value)` pairs is what matters; which thread (and therefore
/// which lane) records them must not.
fn record_aggregates(c: &Collector, track: u32) {
    for i in 0..COUNTS_PER_TRACK {
        c.add_counter(
            COUNTER_NAMES[track as usize % COUNTER_NAMES.len()],
            u64::from(track) * 31 + i,
        );
        c.observe(
            FAMILY_NAMES[track as usize % FAMILY_NAMES.len()],
            (u64::from(track) + 1) * 1000 + i * 17,
        );
    }
}

/// Renders every artifact the collector exports, for byte comparison.
fn artifacts(c: &Collector) -> (String, String, String) {
    let report = c.report();
    let hists = c.histograms();
    (
        hyde_obs::chrome::export(&c.events()),
        report.to_json(""),
        hyde_obs::prom::render(&report, &hists),
    )
}

#[test]
fn one_vs_eight_threads_is_byte_identical() {
    let single = Collector::new();
    for (track, events) in event_workload() {
        for e in events {
            single.push_raw(e);
        }
        record_aggregates(&single, track);
    }

    let sharded = Collector::new();
    std::thread::scope(|s| {
        for (track, events) in event_workload() {
            let sharded = &sharded;
            s.spawn(move || {
                for e in events {
                    sharded.push_raw(e);
                }
                record_aggregates(sharded, track);
            });
        }
    });

    let (chrome_1, report_1, prom_1) = artifacts(&single);
    let (chrome_8, report_8, prom_8) = artifacts(&sharded);
    assert_eq!(
        chrome_1, chrome_8,
        "Chrome trace differs across thread counts"
    );
    assert_eq!(
        report_1, report_8,
        "ObsReport JSON differs across thread counts"
    );
    assert_eq!(
        prom_1, prom_8,
        "Prometheus exposition differs across thread counts"
    );

    // Sanity: the workload actually recorded something on every surface.
    assert_eq!(
        single.events().len(),
        (TRACKS as usize) * SPANS_PER_TRACK * 2
    );
    assert_eq!(single.report().counters.len(), COUNTER_NAMES.len());
    assert_eq!(single.histograms().values.len(), FAMILY_NAMES.len());
    assert_eq!(single.dropped(), 0);
}

#[test]
fn scraped_exposition_matches_flushed_report_counters_exactly() {
    // End-to-end: record through the *global* collector, scrape the
    // endpoint over TCP, and hold every counter sample to the flushed
    // report's numbers.
    hyde_obs::reset();
    hyde_obs::enable();
    {
        let _span = hyde_obs::span!("map.outputs");
        hyde_obs::counter("bdd.nodes", 123);
        hyde_obs::counter("bdd.nodes", 77);
        hyde_obs::counter("sat.conflicts", 9);
        hyde_obs::observe("bench.circuit_wall_us", 4200);
    }
    let server = hyde_obs::serve::MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral");
    let body = http_get(server.local_addr(), "/metrics");
    server.shutdown();

    let report = hyde_obs::report();
    hyde_obs::disable();

    let samples = hyde_obs::prom::parse(&body).expect("scrape parses");
    for c in &report.counters {
        // The scrape happened before this flush, but counters only grow
        // via explicit calls and none ran in between — except the
        // endpoint's own obs.serve.* bookkeeping, which the scrape
        // cannot observe mid-request; skip it.
        if c.name.starts_with("obs.serve.") {
            continue;
        }
        let sum = samples
            .iter()
            .find(|s| {
                s.metric == "hyde_counter_total" && s.label("counter") == Some(c.name.as_str())
            })
            .unwrap_or_else(|| panic!("scrape is missing counter `{}`", c.name));
        assert_eq!(sum.value, c.sum as f64, "sum mismatch for `{}`", c.name);
        let calls = samples
            .iter()
            .find(|s| {
                s.metric == "hyde_counter_calls_total"
                    && s.label("counter") == Some(c.name.as_str())
            })
            .unwrap_or_else(|| panic!("scrape is missing call count for `{}`", c.name));
        assert_eq!(
            calls.value, c.count as f64,
            "count mismatch for `{}`",
            c.name
        );
    }
    assert!(
        samples.iter().any(|s| s.metric == "hyde_observed_bucket"
            && s.label("family") == Some("bench.circuit_wall_us")),
        "scrape is missing the observed-value histogram"
    );
}

/// Minimal HTTP GET returning the response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has head/body split");
    assert!(head.contains("200"), "{head}");
    body.to_owned()
}
