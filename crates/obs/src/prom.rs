//! Prometheus text-exposition rendering of the collected telemetry.
//!
//! Dependency-free implementation of the [text format 0.0.4]: counters
//! render as `hyde_counter_total{counter="..."}` series, span and
//! observation histograms render as native Prometheus histograms with a
//! fixed coarse `le` boundary ladder cumulated from the log-linear
//! buckets ([`crate::histogram`]), and report-level scalars (dropped
//! events, threads observed, unclosed spans) render as gauges. The
//! counter series are rendered straight from the flushed [`ObsReport`],
//! so a scrape and a report built at the same instant agree exactly.
//!
//! [`parse`] is the inverse used by the integration tests: it reads an
//! exposition back into `(metric, labels, value)` samples.
//!
//! [text format 0.0.4]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::{Histogram, HistogramSet, ObsReport};
use std::fmt::Write as _;

/// `le` boundary ladder for duration histograms, nanoseconds
/// (1µs … 10s). Rendered in seconds per Prometheus convention.
const DURATION_BOUNDS_NS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// `le` boundary ladder for unitless value/delta histograms (powers of
/// ten up to 10^9).
const VALUE_BOUNDS: &[u64] = &[
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders an `f64` without scientific notation or trailing zeros drift
/// (fixed 9 decimal places covers nanosecond precision in seconds).
fn fsec(ns: u64) -> String {
    format!("{:.9}", ns as f64 / 1e9)
}

/// Writes one histogram family as cumulative `_bucket`/`_sum`/`_count`
/// series. `render` maps a raw bound (and the sum, which shares the
/// unit) to its rendered value.
fn write_hist(
    out: &mut String,
    metric: &str,
    label_key: &str,
    label_val: &str,
    h: &Histogram,
    bounds: &[u64],
    render: impl Fn(u64) -> String,
) {
    let lv = escape_label(label_val);
    for &b in bounds {
        let _ = writeln!(
            out,
            "{metric}_bucket{{{label_key}=\"{lv}\",le=\"{}\"}} {}",
            render(b),
            h.count_le(b)
        );
    }
    let _ = writeln!(
        out,
        "{metric}_bucket{{{label_key}=\"{lv}\",le=\"+Inf\"}} {}",
        h.count()
    );
    let _ = writeln!(
        out,
        "{metric}_sum{{{label_key}=\"{lv}\"}} {}",
        render(h.sum())
    );
    let _ = writeln!(out, "{metric}_count{{{label_key}=\"{lv}\"}} {}", h.count());
}

/// Renders the full telemetry state as Prometheus exposition text.
/// Counters come from `report` (the flushed view); histogram buckets
/// come from the matching [`HistogramSet`] snapshot.
pub fn render(report: &ObsReport, hists: &HistogramSet) -> String {
    let mut out = String::with_capacity(4096);

    let _ = writeln!(
        out,
        "# HELP hyde_counter_total Sum of a hyde-obs counter family."
    );
    let _ = writeln!(out, "# TYPE hyde_counter_total counter");
    for c in &report.counters {
        let _ = writeln!(
            out,
            "hyde_counter_total{{counter=\"{}\"}} {}",
            escape_label(&c.name),
            c.sum
        );
    }
    let _ = writeln!(
        out,
        "# HELP hyde_counter_calls_total Increment calls of a counter family."
    );
    let _ = writeln!(out, "# TYPE hyde_counter_calls_total counter");
    for c in &report.counters {
        let _ = writeln!(
            out,
            "hyde_counter_calls_total{{counter=\"{}\"}} {}",
            escape_label(&c.name),
            c.count
        );
    }

    let _ = writeln!(
        out,
        "# HELP hyde_span_duration_seconds Span latency by taxonomy name."
    );
    let _ = writeln!(out, "# TYPE hyde_span_duration_seconds histogram");
    for (name, h) in &hists.spans {
        write_hist(
            &mut out,
            "hyde_span_duration_seconds",
            "span",
            name,
            h,
            DURATION_BOUNDS_NS,
            fsec,
        );
    }

    let _ = writeln!(
        out,
        "# HELP hyde_counter_delta Per-call delta distribution of a counter family."
    );
    let _ = writeln!(out, "# TYPE hyde_counter_delta histogram");
    for (name, h) in &hists.counters {
        write_hist(
            &mut out,
            "hyde_counter_delta",
            "counter",
            name,
            h,
            VALUE_BOUNDS,
            |b| b.to_string(),
        );
    }

    let _ = writeln!(
        out,
        "# HELP hyde_observed Explicit observe() families (unit in the name)."
    );
    let _ = writeln!(out, "# TYPE hyde_observed histogram");
    for (name, h) in &hists.values {
        write_hist(
            &mut out,
            "hyde_observed",
            "family",
            name,
            h,
            VALUE_BOUNDS,
            |b| b.to_string(),
        );
    }

    let _ = writeln!(
        out,
        "# HELP hyde_obs_dropped_events_total Events dropped at the buffer cap."
    );
    let _ = writeln!(out, "# TYPE hyde_obs_dropped_events_total counter");
    let _ = writeln!(
        out,
        "hyde_obs_dropped_events_total {}",
        report.dropped_events
    );
    let _ = writeln!(
        out,
        "# HELP hyde_obs_threads_observed Distinct tracks that recorded events."
    );
    let _ = writeln!(out, "# TYPE hyde_obs_threads_observed gauge");
    let _ = writeln!(out, "hyde_obs_threads_observed {}", report.threads_observed);
    let _ = writeln!(
        out,
        "# HELP hyde_obs_unclosed_spans Spans still open at snapshot time."
    );
    let _ = writeln!(out, "# TYPE hyde_obs_unclosed_spans gauge");
    let _ = writeln!(out, "hyde_obs_unclosed_spans {}", report.unclosed_spans);
    let _ = writeln!(
        out,
        "# HELP hyde_obs_wall_seconds Wall-clock extent of the trace."
    );
    let _ = writeln!(out, "# TYPE hyde_obs_wall_seconds gauge");
    let _ = writeln!(
        out,
        "hyde_obs_wall_seconds {}",
        fsec(report.wall_us * 1_000)
    );
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (e.g. `hyde_counter_total`).
    pub metric: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Looks up a label value.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses exposition text back into samples (comments skipped). Used by
/// the scrape-endpoint tests to verify the payload round-trips.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
        let (head, value) = line.rsplit_once(' ').ok_or_else(|| err("missing value"))?;
        let value: f64 = value.parse().map_err(|_| err("bad value"))?;
        let (metric, labels) = if let Some(open) = head.find('{') {
            let close = head.rfind('}').ok_or_else(|| err("unclosed labels"))?;
            let mut labels = Vec::new();
            let body = &head[open + 1..close];
            let mut rest = body;
            while !rest.is_empty() {
                let eq = rest.find('=').ok_or_else(|| err("label missing ="))?;
                let key = rest[..eq].trim().to_owned();
                let after = &rest[eq + 1..];
                if !after.starts_with('"') {
                    return Err(err("label value not quoted"));
                }
                let mut val = String::new();
                let mut chars = after[1..].char_indices();
                let mut consumed = None;
                while let Some((i, ch)) = chars.next() {
                    match ch {
                        '\\' => {
                            if let Some((_, esc)) = chars.next() {
                                val.push(match esc {
                                    'n' => '\n',
                                    other => other,
                                });
                            }
                        }
                        '"' => {
                            consumed = Some(i);
                            break;
                        }
                        _ => val.push(ch),
                    }
                }
                let end = consumed.ok_or_else(|| err("unterminated label value"))?;
                labels.push((key, val));
                rest = after[1 + end + 1..].trim_start_matches(',').trim_start();
            }
            (head[..open].to_owned(), labels)
        } else {
            (head.to_owned(), Vec::new())
        };
        if metric.is_empty() {
            return Err(err("empty metric name"));
        }
        samples.push(Sample {
            metric,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report;
    use crate::{CounterAgg, Event, EventPhase};
    use std::collections::BTreeMap;

    fn sample_state() -> (ObsReport, HistogramSet) {
        let events = vec![
            Event {
                name: "x",
                track: 0,
                ts_ns: 0,
                phase: EventPhase::Begin,
                chunk: false,
            },
            Event {
                name: "x",
                track: 0,
                ts_ns: 3_000_000,
                phase: EventPhase::End,
                chunk: false,
            },
        ];
        let mut counters = BTreeMap::new();
        counters.insert("bdd.cache_hits", CounterAgg { count: 4, sum: 400 });
        let mut hists = HistogramSet::default();
        let mut h = Histogram::new();
        h.record(3_000_000);
        hists.spans.insert("x".to_owned(), h);
        let mut v = Histogram::new();
        v.record(42);
        hists.values.insert("lat_us".to_owned(), v);
        (report::build(&events, &counters, &hists, 0), hists)
    }

    #[test]
    fn render_parse_round_trip_matches_report() {
        let (rep, hists) = sample_state();
        let text = render(&rep, &hists);
        let samples = parse(&text).expect("exposition parses");

        let ctr = samples
            .iter()
            .find(|s| {
                s.metric == "hyde_counter_total" && s.label("counter") == Some("bdd.cache_hits")
            })
            .expect("counter series present");
        assert_eq!(ctr.value, 400.0);

        let count = samples
            .iter()
            .find(|s| {
                s.metric == "hyde_span_duration_seconds_count" && s.label("span") == Some("x")
            })
            .expect("span histogram count");
        assert_eq!(count.value, 1.0);

        // Cumulative buckets are monotone and end at the total count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| {
                s.metric == "hyde_span_duration_seconds_bucket" && s.label("span") == Some("x")
            })
            .collect();
        assert!(!buckets.is_empty());
        let mut last = -1.0;
        for b in &buckets {
            assert!(b.value >= last, "buckets must be cumulative");
            last = b.value;
        }
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value, 1.0);

        let fam = samples
            .iter()
            .find(|s| s.metric == "hyde_observed_sum" && s.label("family") == Some("lat_us"))
            .expect("observe family");
        assert_eq!(fam.value, 42.0);
    }

    #[test]
    fn label_escaping_round_trips() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
        let text = "m{k=\"a\\\"b\\\\c\"} 1\n";
        let samples = parse(text).expect("parses");
        assert_eq!(samples[0].label("k"), Some("a\"b\\c"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("novalue").is_err());
        assert!(parse("m{k=unquoted} 1").is_err());
        assert!(parse("m 1\n# comment\nm2 2").unwrap().len() == 2);
    }
}
