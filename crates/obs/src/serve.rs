//! Dependency-free metrics scrape endpoint over `std::net::TcpListener`.
//!
//! [`MetricsServer::bind`] spawns one background thread serving a
//! minimal HTTP/1.1 subset — enough for Prometheus and `curl`:
//!
//! * `GET /metrics` — the [`crate::prom`] exposition of the global
//!   collector (counters from the flushed [`crate::ObsReport`],
//!   histogram buckets from the lane snapshot);
//! * `GET /healthz` — a JSON liveness snapshot: uptime, circuits
//!   mapped, degradations taken, BDD GC runs, dropped events.
//!
//! `hyde-bench --serve-metrics <addr>` owns one of these today; the
//! ROADMAP's `hyde-serve` daemon is the intended long-term owner, which
//! is why the server lives here as a reusable module. The listener is
//! intentionally single-threaded: scrapes are rare (seconds apart) and
//! cheap, and one thread keeps the shutdown story trivial — set a flag,
//! poke the socket, join.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout: a stalled scraper must not wedge the
/// serving thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running scrape endpoint. Dropping (or [`MetricsServer::shutdown`])
/// stops the serving thread.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// starts serving in a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("hyde-obs-serve".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        handle_connection(stream, started);
                    }
                }
            })?;
        Ok(MetricsServer {
            local_addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock accept() with a throwaway connection; if it fails
            // the listener is already gone and join returns regardless.
            let _ = TcpStream::connect_timeout(&self.local_addr, IO_TIMEOUT);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads the request head and writes the routed response. All errors are
/// swallowed: a broken scrape must never take the host process down.
fn handle_connection(mut stream: TcpStream, started: Instant) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let t0 = Instant::now();
    let _span = crate::span!("obs.serve.request");
    crate::counter("obs.serve.requests", 1);

    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => {
            let report = crate::report();
            let hists = crate::histograms();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::prom::render(&report, &hists),
            )
        }
        "/healthz" | "/health" => ("200 OK", "application/json", healthz_json(started)),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    crate::observe("obs.serve.request_us", t0.elapsed().as_micros() as u64);
}

/// The `/healthz` snapshot: liveness plus the handful of run-level
/// indicators an operator checks first.
fn healthz_json(started: Instant) -> String {
    let report = crate::report();
    let circuits: u64 = ["bench.circuit", "bench.chaos_circuit", "lint.circuit"]
        .iter()
        .filter_map(|name| report.phase(name))
        .map(|p| p.count)
        .sum();
    let degradations: u64 = report
        .counters
        .iter()
        // sa:allow(SA006): a report-filter prefix, not a counter increment
        .filter(|c| c.name.starts_with("guard.degrade."))
        .map(|c| c.sum)
        .sum();
    let gc_runs = report.counter("bdd.gc.runs").map_or(0, |c| c.sum);
    format!(
        "{{\"status\": \"ok\", \"uptime_s\": {:.3}, \"tracing_enabled\": {}, \
         \"circuits_mapped\": {circuits}, \"degradations\": {degradations}, \
         \"gc_runs\": {gc_runs}, \"dropped_events\": {}, \"threads_observed\": {}}}\n",
        started.elapsed().as_secs_f64(),
        crate::enabled(),
        report.dropped_events,
        report.threads_observed
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal HTTP GET against the server, returning (status line, body).
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has head/body split");
        let status = head.lines().next().unwrap_or_default().to_owned();
        (status, body.to_owned())
    }

    #[test]
    fn serves_metrics_and_healthz_on_ephemeral_port() {
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        let samples = crate::prom::parse(&body).expect("exposition parses");
        assert!(samples
            .iter()
            .any(|s| s.metric == "hyde_obs_dropped_events_total"));

        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        let doc = crate::json::parse(&body).expect("healthz is JSON");
        assert_eq!(doc.get("status").unwrap().as_str().unwrap(), "ok");

        let (status, _) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        server.shutdown();
    }
}
