//! `hyde-obs` — structured tracing and metrics for the HYDE pipeline.
//!
//! The decomposition pipeline is instrumented with named **spans** (RAII
//! guards opened by [`span!`]), **counters** ([`counter`]) and
//! **histogram observations** ([`observe`]). All are inert until tracing
//! is activated ([`enable`], or `HYDE_TRACE` via [`init_from_env`]): a
//! deactivated span costs one relaxed atomic load, and building the
//! crate without the `rt` feature compiles the instrumentation out
//! entirely.
//!
//! Recording is **sharded**: the collector owns a fixed set of lanes
//! (each a small mutex-guarded buffer) and every track maps to one lane
//! ([`worker_track`] pins `hyde_core::parallel` workers to stable
//! lanes), so eight workers recording under `HYDE_THREADS=8` never
//! contend on a single global lock. Lanes are drained on flush: events
//! are merged by timestamp (stable, so per-track order is preserved)
//! and counter/histogram families are merged by name — both merges are
//! deterministic in lane order.
//!
//! Collected data feeds four consumers:
//!
//! * [`report`] — an aggregated [`ObsReport`] (per-phase invocation
//!   counts, total/self time, p50/p95/p99 latency, counter sums)
//!   embedded in `BENCH_<name>.json` by `hyde-bench`;
//! * [`chrome_trace`] — Chrome trace-event JSON loadable in
//!   `chrome://tracing` / Perfetto, with one track per worker thread so
//!   the `hyde_core::parallel` fan-outs are visible;
//! * [`folded_stacks`] — collapsed-stack text consumable by flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope);
//! * [`prom`]/[`serve`] — Prometheus text-format exposition of all
//!   counters and histograms over a `std::net::TcpListener` scrape
//!   endpoint (`hyde-bench --serve-metrics`).
//!
//! Span names are `&'static str` in a `area.verb` style; the canonical
//! taxonomy is documented in DESIGN.md ("Observability"). Worker threads
//! spawned by `hyde_core::parallel` register a stable track per worker
//! index ([`worker_track`]); every other thread gets its own track on
//! first use, with the first recording thread named `main`.
//!
//! This crate is self-contained (std only) to respect the workspace's
//! offline-build rule, and sits below every pipeline crate in the
//! dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod folded;
pub mod histogram;
pub mod json;
pub mod prom;
pub mod report;
pub mod serve;

pub use histogram::Histogram;
pub use report::{CounterStat, HistStat, ObsReport, PhaseStat};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Whether a trace event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Span begin.
    Begin,
    /// Span end.
    End,
}

/// One raw trace event. Within a track (one thread at a time) begins and
/// ends nest properly by RAII construction; across tracks the flush
/// merge orders events by timestamp.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Span name (static taxonomy name).
    pub name: &'static str,
    /// Track (thread lane) the event belongs to.
    pub track: u32,
    /// Nanoseconds since the collector's epoch.
    pub ts_ns: u64,
    /// Begin or end.
    pub phase: EventPhase,
    /// Marks per-worker chunk spans whose *count* legitimately varies
    /// with `HYDE_THREADS` (the logical span structure excludes them;
    /// see [`span_signature`]).
    pub chunk: bool,
}

/// Aggregated value of one named counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterAgg {
    /// Number of [`counter`] calls.
    pub count: u64,
    /// Sum of the deltas.
    pub sum: u64,
}

/// Cap on buffered events across all lanes; beyond it events are counted
/// as dropped rather than silently growing without bound (~1M events
/// ≈ 40 MB). Histograms and counters keep aggregating past the cap, so
/// percentiles stay trustworthy even on truncated traces.
const MAX_EVENTS: usize = 1 << 20;

/// Number of shard lanes. Tracks map onto lanes by [`lane_for_track`];
/// with up to 8 workers plus the main thread every recorder gets a
/// private lane, and larger fan-outs wrap with low collision odds.
const LANE_COUNT: usize = 64;

/// One shard: the only mutex in the hot path, shared by the (usually
/// single) track that maps to it.
#[derive(Default)]
struct Lane {
    events: Vec<Event>,
    counters: BTreeMap<&'static str, CounterAgg>,
    span_hists: BTreeMap<&'static str, Histogram>,
    counter_hists: BTreeMap<&'static str, Histogram>,
    value_hists: BTreeMap<&'static str, Histogram>,
}

/// Deterministic lane assignment: the main track gets lane 0, every
/// other track spreads over the remaining lanes. A pure function of the
/// track id so replayed event streams ([`Collector::push_raw`]) land
/// identically regardless of which thread pushes them.
fn lane_for_track(track: u32) -> usize {
    if track == MAIN_TRACK {
        0
    } else {
        1 + (track as usize - 1) % (LANE_COUNT - 1)
    }
}

/// Merged histogram families drained from all lanes, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSet {
    /// Span-duration histograms (nanoseconds), per span name.
    pub spans: BTreeMap<String, Histogram>,
    /// Per-call delta histograms, per counter name.
    pub counters: BTreeMap<String, Histogram>,
    /// Explicit [`observe`] families (unit by naming convention).
    pub values: BTreeMap<String, Histogram>,
}

/// Process-wide monotonic epoch all timestamps derive from. Never
/// resets; collectors subtract their own epoch offset, so timestamps can
/// be taken without holding any lock.
fn process_now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// An event/counter/histogram sink. The process-wide singleton behind
/// [`span!`] and [`counter`] is one of these; tests build private
/// collectors to exercise the exporters without touching global state.
pub struct Collector {
    lanes: Vec<Mutex<Lane>>,
    /// Offset of this collector's epoch from the process epoch.
    epoch_ns: AtomicU64,
    /// Events admitted toward [`MAX_EVENTS`] since the last reset.
    admitted: AtomicUsize,
    dropped: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Creates an empty collector anchored at the current instant.
    pub fn new() -> Self {
        Collector {
            lanes: (0..LANE_COUNT)
                .map(|_| Mutex::new(Lane::default()))
                .collect(),
            epoch_ns: AtomicU64::new(process_now_ns()),
            admitted: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn lane(&self, track: u32) -> MutexGuard<'_, Lane> {
        // A panicking span guard must not wedge every later record.
        self.lanes[lane_for_track(track)]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Nanoseconds since this collector's epoch.
    fn now_ns(&self) -> u64 {
        process_now_ns().saturating_sub(self.epoch_ns.load(Ordering::Relaxed))
    }

    /// Reserves one slot against the global event cap; on failure the
    /// event is dropped (and tallied) instead of recorded.
    fn admit(&self) -> bool {
        if self.admitted.fetch_add(1, Ordering::Relaxed) < MAX_EVENTS {
            true
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Clears all recorded data and re-anchors the epoch.
    pub fn reset(&self) {
        self.epoch_ns.store(process_now_ns(), Ordering::Relaxed);
        self.admitted.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        for lane in &self.lanes {
            let mut g = lane
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *g = Lane::default();
        }
    }

    /// Records a span-begin event, returning its timestamp so the
    /// matching end can compute the duration without re-reading state.
    fn record_begin(&self, name: &'static str, track: u32, chunk: bool) -> u64 {
        let ts_ns = self.now_ns();
        let admit = self.admit();
        let mut lane = self.lane(track);
        if admit {
            lane.events.push(Event {
                name,
                track,
                ts_ns,
                phase: EventPhase::Begin,
                chunk,
            });
        }
        ts_ns
    }

    /// Records a span-end event and feeds the duration into the span's
    /// latency histogram. The histogram records even when the event
    /// buffer is capped — the always-on signal survives truncation.
    fn record_end(&self, name: &'static str, track: u32, chunk: bool, begin_ns: u64) {
        let ts_ns = self.now_ns();
        let admit = self.admit();
        let mut lane = self.lane(track);
        if admit {
            lane.events.push(Event {
                name,
                track,
                ts_ns,
                phase: EventPhase::End,
                chunk,
            });
        }
        lane.span_hists
            .entry(name)
            .or_default()
            .record(ts_ns.saturating_sub(begin_ns));
    }

    /// Appends a pre-built event verbatim (exporter tests and tools).
    /// The event lands on the lane its track maps to, so replayed
    /// streams shard identically regardless of the pushing thread.
    pub fn push_raw(&self, event: Event) {
        if self.admit() {
            self.lane(event.track).events.push(event);
        }
    }

    /// Adds `delta` to the named counter and its delta histogram.
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        let mut lane = self.lane(current_track());
        let c = lane.counters.entry(name).or_default();
        c.count += 1;
        c.sum += delta;
        lane.counter_hists.entry(name).or_default().record(delta);
    }

    /// Records `value` into the named histogram family.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.lane(current_track())
            .value_hists
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Snapshot of the recorded events: lanes drained in index order,
    /// stably merged by timestamp (per-track order is preserved because
    /// a track's events live on one lane in program order).
    pub fn events(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            let g = lane
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            all.extend_from_slice(&g.events);
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Snapshot of the counters, merged across lanes by name.
    pub fn counters(&self) -> BTreeMap<&'static str, CounterAgg> {
        let mut merged: BTreeMap<&'static str, CounterAgg> = BTreeMap::new();
        for lane in &self.lanes {
            let g = lane
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (name, c) in &g.counters {
                let m = merged.entry(name).or_default();
                m.count += c.count;
                m.sum += c.sum;
            }
        }
        merged
    }

    /// Snapshot of all histogram families, merged across lanes. Merge is
    /// element-wise bucket addition — associative and commutative, so
    /// the result is independent of lane order.
    pub fn histograms(&self) -> HistogramSet {
        let mut set = HistogramSet::default();
        let merge_into = |dst: &mut BTreeMap<String, Histogram>,
                          src: &BTreeMap<&'static str, Histogram>| {
            for (name, h) in src {
                dst.entry((*name).to_owned()).or_default().merge(h);
            }
        };
        for lane in &self.lanes {
            let g = lane
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            merge_into(&mut set.spans, &g.span_hists);
            merge_into(&mut set.counters, &g.counter_hists);
            merge_into(&mut set.values, &g.value_hists);
        }
        set
    }

    /// Events dropped after the buffer cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Builds the aggregated [`ObsReport`] from the current contents.
    pub fn report(&self) -> ObsReport {
        report::build(
            &self.events(),
            &self.counters(),
            &self.histograms(),
            self.dropped(),
        )
    }
}

// ---------------------------------------------------------------------
// Global collector, activation flag and track registry.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Whether tracing is active. Inlined to one relaxed load (and to
/// constant `false` when the `rt` feature is off, which dead-codes every
/// instrumentation site).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "rt") && ENABLED.load(Ordering::Relaxed)
}

/// Activates span/counter collection.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Deactivates collection (recorded data is kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded events/counters/histograms, re-anchors the trace
/// epoch, and releases all track assignments (the next thread to record
/// claims the main track afresh).
pub fn reset() {
    global().reset();
    TRACK_EPOCH.fetch_add(1, Ordering::Relaxed);
    NEXT_AUTO_TRACK.store(AUTO_TRACK_BASE, Ordering::Relaxed);
    MAIN_CLAIMED.store(false, Ordering::Relaxed);
}

/// Track id of the main (first-recording) thread.
pub const MAIN_TRACK: u32 = 0;
/// Worker tracks are `WORKER_TRACK_BASE + worker_index`.
pub const WORKER_TRACK_BASE: u32 = 1;
/// First track id handed to unregistered non-main threads.
const AUTO_TRACK_BASE: u32 = 512;

static MAIN_CLAIMED: AtomicBool = AtomicBool::new(false);
static NEXT_AUTO_TRACK: AtomicU32 = AtomicU32::new(AUTO_TRACK_BASE);
/// Bumped by [`reset`] so cached per-thread track ids from an earlier
/// trace are discarded; without this, the second trace in one process
/// (from a fresh thread, as in the test harness) could never claim the
/// main track again.
static TRACK_EPOCH: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// `(epoch, track)` — the track is only valid while the epoch matches
    /// [`TRACK_EPOCH`].
    static TRACK: std::cell::Cell<(u32, u32)> = const { std::cell::Cell::new((0, u32::MAX)) };
}

/// Registers the current thread as parallel worker `index`, pinning it to
/// the stable track `WORKER_TRACK_BASE + index` — and thereby to that
/// track's collector lane, so repeated fan-outs land on one lane per
/// worker. Called by `hyde_core::parallel` at worker start; only
/// top-level fan-outs (spawned from the main track) should register, so
/// nested fan-outs fall back to auto tracks.
pub fn worker_track(index: usize) {
    let epoch = TRACK_EPOCH.load(Ordering::Relaxed);
    TRACK.with(|t| t.set((epoch, WORKER_TRACK_BASE + index as u32)));
}

/// Track id of the current thread, assigning one on first use (the first
/// thread to record becomes [`MAIN_TRACK`]).
pub fn current_track() -> u32 {
    let epoch = TRACK_EPOCH.load(Ordering::Relaxed);
    TRACK.with(|t| {
        let (e, cur) = t.get();
        if cur != u32::MAX && e == epoch {
            return cur;
        }
        let id = if !MAIN_CLAIMED.swap(true, Ordering::Relaxed) {
            MAIN_TRACK
        } else {
            NEXT_AUTO_TRACK.fetch_add(1, Ordering::Relaxed)
        };
        t.set((epoch, id));
        id
    })
}

/// Human-readable name of a track (Chrome metadata / folded-stack root).
pub fn track_name(track: u32) -> String {
    if track == MAIN_TRACK {
        "main".to_owned()
    } else if (WORKER_TRACK_BASE..AUTO_TRACK_BASE).contains(&track) {
        format!("worker-{}", track - WORKER_TRACK_BASE)
    } else {
        format!("thread-{track}")
    }
}

/// RAII span guard: records a begin event on construction (when tracing
/// is active) and the matching end event — plus the span's latency
/// histogram sample — on drop.
#[must_use = "a span guard measures the scope it lives in; bind it to a named local"]
pub struct SpanGuard {
    open: Option<(&'static str, u32, bool, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, track, chunk, begin_ns)) = self.open.take() {
            global().record_end(name, track, chunk, begin_ns);
        }
    }
}

fn enter_impl(name: &'static str, chunk: bool) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let track = current_track();
    let begin_ns = global().record_begin(name, track, chunk);
    SpanGuard {
        open: Some((name, track, chunk, begin_ns)),
    }
}

/// Opens a span on the current thread's track. Prefer the [`span!`]
/// macro at call sites.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    enter_impl(name, false)
}

/// Opens a *chunk* span: a per-worker slice of a parallel fan-out whose
/// count varies with `HYDE_THREADS` (excluded from [`span_signature`]).
#[inline]
pub fn enter_chunk(name: &'static str) -> SpanGuard {
    enter_impl(name, true)
}

/// Adds `delta` to a named metric. A no-op until tracing is activated.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        global().add_counter(name, delta);
    }
}

/// Records `value` into a named histogram family (unit by naming
/// convention, e.g. `*_us`). A no-op until tracing is activated.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        global().observe(name, value);
    }
}

/// Opens an RAII span: `let _obs = hyde_obs::span!("varpart.select_best");`.
///
/// Bind the guard to a named local — `let _ = span!(...)` drops it
/// immediately and measures nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter($name)
    };
}

// ---------------------------------------------------------------------
// Global snapshots and exporters.
// ---------------------------------------------------------------------

/// Snapshot of the globally recorded events.
pub fn events() -> Vec<Event> {
    global().events()
}

/// Aggregated report of everything recorded since the last [`reset`].
pub fn report() -> ObsReport {
    global().report()
}

/// Snapshot of the globally recorded histogram families.
pub fn histograms() -> HistogramSet {
    global().histograms()
}

/// Events dropped globally since the last [`reset`] (event cap hit).
pub fn dropped() -> u64 {
    global().dropped()
}

/// Chrome trace-event JSON of everything recorded since the last
/// [`reset`] (load in `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn chrome_trace() -> String {
    chrome::export(&global().events())
}

/// Collapsed-stack text of everything recorded since the last [`reset`]
/// (pipe into `flamegraph.pl` or load in speedscope).
pub fn folded_stacks() -> String {
    folded::export(&global().events())
}

/// Logical span structure: `(name, count)` per non-chunk span name,
/// sorted by name. Identical across `HYDE_THREADS` settings for a
/// deterministic pipeline — chunk spans (whose count tracks the worker
/// count by design) are excluded.
pub fn span_signature() -> Vec<(String, u64)> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in global().events() {
        if e.phase == EventPhase::Begin && !e.chunk {
            *counts.entry(e.name).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .map(|(name, n)| (name.to_owned(), n))
        .collect()
}

/// Writes both export formats: Chrome trace JSON at `path` and collapsed
/// stacks at `path` with a `.folded` extension appended (or swapped in
/// for a `.json` extension). Returns the folded path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(path: &str) -> std::io::Result<String> {
    let folded_path = if let Some(stem) = path.strip_suffix(".json") {
        format!("{stem}.folded")
    } else {
        format!("{path}.folded")
    };
    std::fs::write(path, chrome_trace())?;
    std::fs::write(&folded_path, folded_stacks())?;
    Ok(folded_path)
}

/// Environment-variable activation: when `HYDE_TRACE=<path>` is set,
/// enables collection and returns the path the caller should pass to
/// [`write_artifacts`] on exit. Binaries call this once at startup.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("HYDE_TRACE").ok().filter(|p| !p.is_empty())?;
    reset();
    enable();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_and_resets() {
        let c = Collector::new();
        c.push_raw(Event {
            name: "a",
            track: 0,
            ts_ns: 1,
            phase: EventPhase::Begin,
            chunk: false,
        });
        c.add_counter("x", 5);
        c.add_counter("x", 7);
        c.observe("y", 42);
        assert_eq!(c.events().len(), 1);
        let counters = c.counters();
        assert_eq!(counters["x"], CounterAgg { count: 2, sum: 12 });
        let hists = c.histograms();
        assert_eq!(hists.counters["x"].count(), 2);
        assert_eq!(hists.values["y"].sum(), 42);
        c.reset();
        assert!(c.events().is_empty());
        assert!(c.counters().is_empty());
        assert!(c.histograms().values.is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn track_names_are_stable() {
        assert_eq!(track_name(MAIN_TRACK), "main");
        assert_eq!(track_name(WORKER_TRACK_BASE), "worker-0");
        assert_eq!(track_name(WORKER_TRACK_BASE + 7), "worker-7");
        assert_eq!(track_name(900), "thread-900");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        // The global flag defaults to off; a span guard must be free.
        let before = events().len();
        {
            let _g = span!("test.noop");
        }
        counter("test.noop", 1);
        observe("test.noop", 1);
        assert_eq!(events().len(), before);
    }

    #[test]
    fn buffer_cap_counts_drops() {
        let c = Collector::new();
        let e = Event {
            name: "x",
            track: 0,
            ts_ns: 0,
            phase: EventPhase::Begin,
            chunk: false,
        };
        for _ in 0..MAX_EVENTS {
            c.push_raw(e);
        }
        c.push_raw(e);
        c.push_raw(e);
        assert_eq!(c.dropped(), 2);
        assert_eq!(c.events().len(), MAX_EVENTS);
    }

    #[test]
    fn lanes_shard_by_track_and_merge_by_timestamp() {
        let c = Collector::new();
        // Interleave three tracks pushed out of timestamp order across
        // calls; the drained stream must come back time-sorted with
        // per-track order intact.
        let mk = |track: u32, ts_ns: u64, phase: EventPhase| Event {
            name: "s",
            track,
            ts_ns,
            phase,
            chunk: false,
        };
        c.push_raw(mk(1, 10, EventPhase::Begin));
        c.push_raw(mk(0, 5, EventPhase::Begin));
        c.push_raw(mk(2, 7, EventPhase::Begin));
        c.push_raw(mk(1, 20, EventPhase::End));
        c.push_raw(mk(2, 8, EventPhase::End));
        c.push_raw(mk(0, 30, EventPhase::End));
        let ts: Vec<u64> = c.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![5, 7, 8, 10, 20, 30]);
    }

    #[test]
    fn lane_assignment_is_deterministic_and_in_range() {
        assert_eq!(lane_for_track(MAIN_TRACK), 0);
        for track in 1..2048u32 {
            let lane = lane_for_track(track);
            assert!((1..LANE_COUNT).contains(&lane), "track {track} → {lane}");
            assert_eq!(lane, lane_for_track(track), "must be pure");
        }
        // The first LANE_COUNT-1 worker tracks get distinct lanes.
        let mut seen = std::collections::BTreeSet::new();
        for w in 0..(LANE_COUNT as u32 - 1) {
            assert!(seen.insert(lane_for_track(WORKER_TRACK_BASE + w)));
        }
    }

    #[test]
    fn histograms_merge_across_lanes() {
        let c = Collector::new();
        // Same family observed from different tracks (lanes): the
        // snapshot must present one merged histogram.
        for track in [1u32, 2, 3] {
            c.push_raw(Event {
                name: "h",
                track,
                ts_ns: 0,
                phase: EventPhase::Begin,
                chunk: false,
            });
        }
        c.observe("lat_us", 10);
        c.observe("lat_us", 1000);
        let set = c.histograms();
        assert_eq!(set.values["lat_us"].count(), 2);
        assert_eq!(set.values["lat_us"].sum(), 1010);
    }
}
