//! `hyde-obs` — structured tracing and metrics for the HYDE pipeline.
//!
//! The decomposition pipeline is instrumented with named **spans** (RAII
//! guards opened by [`span!`]) and **counters** ([`counter`]). Both are
//! inert until tracing is activated ([`enable`], or `HYDE_TRACE` via
//! [`init_from_env`]): a deactivated span costs one relaxed atomic load,
//! and building the crate without the `rt` feature compiles the
//! instrumentation out entirely.
//!
//! Collected data feeds three consumers:
//!
//! * [`report`] — an aggregated [`ObsReport`] (per-phase invocation
//!   counts, total/self time, counter sums) embedded in
//!   `BENCH_<name>.json` by `hyde-bench`;
//! * [`chrome_trace`] — Chrome trace-event JSON loadable in
//!   `chrome://tracing` / Perfetto, with one track per worker thread so
//!   the `hyde_core::parallel` fan-outs are visible;
//! * [`folded_stacks`] — collapsed-stack text consumable by flamegraph
//!   tooling (`flamegraph.pl`, inferno, speedscope).
//!
//! Span names are `&'static str` in a `area.verb` style; the canonical
//! taxonomy is documented in DESIGN.md ("Observability"). Worker threads
//! spawned by `hyde_core::parallel` register a stable track per worker
//! index ([`worker_track`]); every other thread gets its own track on
//! first use, with the first recording thread named `main`.
//!
//! This crate is self-contained (std only) to respect the workspace's
//! offline-build rule, and sits below every pipeline crate in the
//! dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod folded;
pub mod json;
pub mod report;

pub use report::{CounterStat, ObsReport, PhaseStat};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Whether a trace event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// Span begin.
    Begin,
    /// Span end.
    End,
}

/// One raw trace event. Events are recorded in per-process order; within
/// a track (one thread at a time) begins and ends nest properly by RAII
/// construction.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Span name (static taxonomy name).
    pub name: &'static str,
    /// Track (thread lane) the event belongs to.
    pub track: u32,
    /// Nanoseconds since the collector's epoch.
    pub ts_ns: u64,
    /// Begin or end.
    pub phase: EventPhase,
    /// Marks per-worker chunk spans whose *count* legitimately varies
    /// with `HYDE_THREADS` (the logical span structure excludes them;
    /// see [`span_signature`]).
    pub chunk: bool,
}

/// Aggregated value of one named counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterAgg {
    /// Number of [`counter`] calls.
    pub count: u64,
    /// Sum of the deltas.
    pub sum: u64,
}

/// Cap on buffered events; beyond it events are counted as dropped
/// rather than silently growing without bound (~1M events ≈ 40 MB).
const MAX_EVENTS: usize = 1 << 20;

struct Inner {
    epoch: Instant,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, CounterAgg>,
    dropped: u64,
}

/// An event/counter sink. The process-wide singleton behind [`span!`]
/// and [`counter`] is one of these; tests build private collectors to
/// exercise the exporters without touching global state.
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// Creates an empty collector anchored at the current instant.
    pub fn new() -> Self {
        Collector {
            inner: Mutex::new(Inner {
                epoch: Instant::now(),
                events: Vec::new(),
                counters: BTreeMap::new(),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking span guard must not wedge every later record.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Clears all recorded data and re-anchors the epoch.
    pub fn reset(&self) {
        let mut g = self.lock();
        g.epoch = Instant::now();
        g.events.clear();
        g.counters.clear();
        g.dropped = 0;
    }

    fn record(&self, name: &'static str, track: u32, phase: EventPhase, chunk: bool) {
        let mut g = self.lock();
        // Timestamp under the lock: the event vector stays time-ordered.
        let ts_ns = g.epoch.elapsed().as_nanos() as u64;
        if g.events.len() >= MAX_EVENTS {
            g.dropped += 1;
            return;
        }
        g.events.push(Event {
            name,
            track,
            ts_ns,
            phase,
            chunk,
        });
    }

    /// Appends a pre-built event verbatim (exporter tests and tools).
    pub fn push_raw(&self, event: Event) {
        let mut g = self.lock();
        if g.events.len() >= MAX_EVENTS {
            g.dropped += 1;
            return;
        }
        g.events.push(event);
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        let mut g = self.lock();
        let c = g.counters.entry(name).or_default();
        c.count += 1;
        c.sum += delta;
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.clone()
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> BTreeMap<&'static str, CounterAgg> {
        self.lock().counters.clone()
    }

    /// Events dropped after the buffer cap was reached.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Builds the aggregated [`ObsReport`] from the current contents.
    pub fn report(&self) -> ObsReport {
        let g = self.lock();
        report::build(&g.events, &g.counters, g.dropped)
    }
}

// ---------------------------------------------------------------------
// Global collector, activation flag and track registry.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Whether tracing is active. Inlined to one relaxed load (and to
/// constant `false` when the `rt` feature is off, which dead-codes every
/// instrumentation site).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "rt") && ENABLED.load(Ordering::Relaxed)
}

/// Activates span/counter collection.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Deactivates collection (recorded data is kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded events/counters, re-anchors the trace epoch, and
/// releases all track assignments (the next thread to record claims the
/// main track afresh).
pub fn reset() {
    global().reset();
    TRACK_EPOCH.fetch_add(1, Ordering::Relaxed);
    NEXT_AUTO_TRACK.store(AUTO_TRACK_BASE, Ordering::Relaxed);
    MAIN_CLAIMED.store(false, Ordering::Relaxed);
}

/// Track id of the main (first-recording) thread.
pub const MAIN_TRACK: u32 = 0;
/// Worker tracks are `WORKER_TRACK_BASE + worker_index`.
pub const WORKER_TRACK_BASE: u32 = 1;
/// First track id handed to unregistered non-main threads.
const AUTO_TRACK_BASE: u32 = 512;

static MAIN_CLAIMED: AtomicBool = AtomicBool::new(false);
static NEXT_AUTO_TRACK: AtomicU32 = AtomicU32::new(AUTO_TRACK_BASE);
/// Bumped by [`reset`] so cached per-thread track ids from an earlier
/// trace are discarded; without this, the second trace in one process
/// (from a fresh thread, as in the test harness) could never claim the
/// main track again.
static TRACK_EPOCH: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// `(epoch, track)` — the track is only valid while the epoch matches
    /// [`TRACK_EPOCH`].
    static TRACK: std::cell::Cell<(u32, u32)> = const { std::cell::Cell::new((0, u32::MAX)) };
}

/// Registers the current thread as parallel worker `index`, pinning it to
/// the stable track `WORKER_TRACK_BASE + index` so repeated fan-outs land
/// on one lane per worker. Called by `hyde_core::parallel` at worker
/// start; only top-level fan-outs (spawned from the main track) should
/// register, so nested fan-outs fall back to auto tracks.
pub fn worker_track(index: usize) {
    let epoch = TRACK_EPOCH.load(Ordering::Relaxed);
    TRACK.with(|t| t.set((epoch, WORKER_TRACK_BASE + index as u32)));
}

/// Track id of the current thread, assigning one on first use (the first
/// thread to record becomes [`MAIN_TRACK`]).
pub fn current_track() -> u32 {
    let epoch = TRACK_EPOCH.load(Ordering::Relaxed);
    TRACK.with(|t| {
        let (e, cur) = t.get();
        if cur != u32::MAX && e == epoch {
            return cur;
        }
        let id = if !MAIN_CLAIMED.swap(true, Ordering::Relaxed) {
            MAIN_TRACK
        } else {
            NEXT_AUTO_TRACK.fetch_add(1, Ordering::Relaxed)
        };
        t.set((epoch, id));
        id
    })
}

/// Human-readable name of a track (Chrome metadata / folded-stack root).
pub fn track_name(track: u32) -> String {
    if track == MAIN_TRACK {
        "main".to_owned()
    } else if (WORKER_TRACK_BASE..AUTO_TRACK_BASE).contains(&track) {
        format!("worker-{}", track - WORKER_TRACK_BASE)
    } else {
        format!("thread-{track}")
    }
}

/// RAII span guard: records a begin event on construction (when tracing
/// is active) and the matching end event on drop.
#[must_use = "a span guard measures the scope it lives in; bind it to a named local"]
pub struct SpanGuard {
    open: Option<(&'static str, u32, bool)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, track, chunk)) = self.open.take() {
            global().record(name, track, EventPhase::End, chunk);
        }
    }
}

fn enter_impl(name: &'static str, chunk: bool) -> SpanGuard {
    if !enabled() {
        return SpanGuard { open: None };
    }
    let track = current_track();
    global().record(name, track, EventPhase::Begin, chunk);
    SpanGuard {
        open: Some((name, track, chunk)),
    }
}

/// Opens a span on the current thread's track. Prefer the [`span!`]
/// macro at call sites.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    enter_impl(name, false)
}

/// Opens a *chunk* span: a per-worker slice of a parallel fan-out whose
/// count varies with `HYDE_THREADS` (excluded from [`span_signature`]).
#[inline]
pub fn enter_chunk(name: &'static str) -> SpanGuard {
    enter_impl(name, true)
}

/// Adds `delta` to a named metric. A no-op until tracing is activated.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        global().add_counter(name, delta);
    }
}

/// Opens an RAII span: `let _obs = hyde_obs::span!("varpart.select_best");`.
///
/// Bind the guard to a named local — `let _ = span!(...)` drops it
/// immediately and measures nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::enter($name)
    };
}

// ---------------------------------------------------------------------
// Global snapshots and exporters.
// ---------------------------------------------------------------------

/// Snapshot of the globally recorded events.
pub fn events() -> Vec<Event> {
    global().events()
}

/// Aggregated report of everything recorded since the last [`reset`].
pub fn report() -> ObsReport {
    global().report()
}

/// Chrome trace-event JSON of everything recorded since the last
/// [`reset`] (load in `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn chrome_trace() -> String {
    chrome::export(&global().events())
}

/// Collapsed-stack text of everything recorded since the last [`reset`]
/// (pipe into `flamegraph.pl` or load in speedscope).
pub fn folded_stacks() -> String {
    folded::export(&global().events())
}

/// Logical span structure: `(name, count)` per non-chunk span name,
/// sorted by name. Identical across `HYDE_THREADS` settings for a
/// deterministic pipeline — chunk spans (whose count tracks the worker
/// count by design) are excluded.
pub fn span_signature() -> Vec<(String, u64)> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for e in global().events() {
        if e.phase == EventPhase::Begin && !e.chunk {
            *counts.entry(e.name).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .map(|(name, n)| (name.to_owned(), n))
        .collect()
}

/// Writes both export formats: Chrome trace JSON at `path` and collapsed
/// stacks at `path` with a `.folded` extension appended (or swapped in
/// for a `.json` extension). Returns the folded path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(path: &str) -> std::io::Result<String> {
    let folded_path = if let Some(stem) = path.strip_suffix(".json") {
        format!("{stem}.folded")
    } else {
        format!("{path}.folded")
    };
    std::fs::write(path, chrome_trace())?;
    std::fs::write(&folded_path, folded_stacks())?;
    Ok(folded_path)
}

/// Environment-variable activation: when `HYDE_TRACE=<path>` is set,
/// enables collection and returns the path the caller should pass to
/// [`write_artifacts`] on exit. Binaries call this once at startup.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("HYDE_TRACE").ok().filter(|p| !p.is_empty())?;
    reset();
    enable();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_records_and_resets() {
        let c = Collector::new();
        c.push_raw(Event {
            name: "a",
            track: 0,
            ts_ns: 1,
            phase: EventPhase::Begin,
            chunk: false,
        });
        c.add_counter("x", 5);
        c.add_counter("x", 7);
        assert_eq!(c.events().len(), 1);
        let counters = c.counters();
        assert_eq!(counters["x"], CounterAgg { count: 2, sum: 12 });
        c.reset();
        assert!(c.events().is_empty());
        assert!(c.counters().is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn track_names_are_stable() {
        assert_eq!(track_name(MAIN_TRACK), "main");
        assert_eq!(track_name(WORKER_TRACK_BASE), "worker-0");
        assert_eq!(track_name(WORKER_TRACK_BASE + 7), "worker-7");
        assert_eq!(track_name(900), "thread-900");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        // The global flag defaults to off; a span guard must be free.
        let before = events().len();
        {
            let _g = span!("test.noop");
        }
        counter("test.noop", 1);
        assert_eq!(events().len(), before);
    }

    #[test]
    fn buffer_cap_counts_drops() {
        let c = Collector::new();
        let e = Event {
            name: "x",
            track: 0,
            ts_ns: 0,
            phase: EventPhase::Begin,
            chunk: false,
        };
        for _ in 0..MAX_EVENTS {
            c.push_raw(e);
        }
        c.push_raw(e);
        c.push_raw(e);
        assert_eq!(c.dropped(), 2);
        assert_eq!(c.events().len(), MAX_EVENTS);
    }
}
