//! Collapsed-stack ("folded") exporter for flamegraph tooling.
//!
//! Emits the line format consumed by Brendan Gregg's `flamegraph.pl`,
//! inferno and speedscope: one `frame;frame;...;frame weight` line per
//! distinct stack, where the weight is **self time** in microseconds —
//! time spent in exactly that stack, excluding child spans. Each track
//! is rooted at its track name (`main`, `worker-3`, ...) so per-worker
//! flame shapes stay distinguishable in one graph.

use crate::{track_name, Event, EventPhase};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders `events` as collapsed-stack text, one weighted stack per
/// line, sorted lexicographically by stack path.
pub fn export(events: &[Event]) -> String {
    // Per-track replay: stack of (name, self_ns accumulated so far) plus
    // the timestamp of the last push/pop, which delimits self-time runs.
    struct TrackState {
        stack: Vec<&'static str>,
        last_ts: u64,
        root: String,
    }
    let mut tracks: BTreeMap<u32, TrackState> = BTreeMap::new();
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();

    for e in events {
        let state = tracks.entry(e.track).or_insert_with(|| TrackState {
            stack: Vec::new(),
            last_ts: e.ts_ns,
            root: track_name(e.track),
        });
        // Attribute the elapsed run to the stack that was live during it.
        let elapsed = e.ts_ns.saturating_sub(state.last_ts);
        if elapsed > 0 && !state.stack.is_empty() {
            let mut path = String::with_capacity(16 + state.stack.len() * 24);
            path.push_str(&state.root);
            for frame in &state.stack {
                path.push(';');
                path.push_str(frame);
            }
            *weights.entry(path).or_default() += elapsed;
        }
        state.last_ts = e.ts_ns;
        match e.phase {
            EventPhase::Begin => state.stack.push(e.name),
            EventPhase::End => {
                // Tolerate stray ends (truncated traces) rather than panic.
                state.stack.pop();
            }
        }
    }

    let mut out = String::with_capacity(weights.len() * 48);
    for (path, ns) in &weights {
        // flamegraph.pl weights are integers; microsecond granularity.
        let us = ns / 1_000;
        if us > 0 {
            let _ = writeln!(out, "{path} {us}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, track: u32, ts_ns: u64, phase: EventPhase) -> Event {
        Event {
            name,
            track,
            ts_ns,
            phase,
            chunk: false,
        }
    }

    #[test]
    fn attributes_self_time_excluding_children() {
        // outer: 0..10µs, inner: 2µs..6µs → outer self 6µs, inner self 4µs.
        let events = vec![
            ev("outer", 0, 0, EventPhase::Begin),
            ev("inner", 0, 2_000_000, EventPhase::Begin),
            ev("inner", 0, 6_000_000, EventPhase::End),
            ev("outer", 0, 10_000_000, EventPhase::End),
        ];
        let text = export(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["main;outer 6000", "main;outer;inner 4000"]);
    }

    #[test]
    fn separates_tracks_by_root_frame() {
        let events = vec![
            ev("work", 1, 0, EventPhase::Begin),
            ev("work", 1, 1_000_000, EventPhase::End),
            ev("work", 2, 0, EventPhase::Begin),
            ev("work", 2, 2_000_000, EventPhase::End),
        ];
        let text = export(&events);
        assert!(text.contains("worker-0;work 1000"));
        assert!(text.contains("worker-1;work 2000"));
    }

    #[test]
    fn empty_input_exports_empty() {
        assert_eq!(export(&[]), "");
    }
}
