//! Dependency-free log-linear latency histogram.
//!
//! Fixed bucket layout in the HdrHistogram family: values below
//! [`LINEAR_BUCKETS`] get one bucket each (exact), every octave above is
//! split into [`SUB_BUCKETS`] equal sub-buckets, so relative error is
//! bounded by `1 / SUB_BUCKETS` (12.5%) across the full `u64` range. The
//! layout is a compile-time constant — no rescaling, no allocation after
//! construction — which makes [`Histogram::merge`] a plain element-wise
//! add: associative, commutative, and therefore independent of the lane
//! order the sharded collector drains in.
//!
//! Values are unitless `u64`s; by convention span durations are recorded
//! in nanoseconds and explicit [`crate::observe`] families carry their
//! unit in the name (`*_us`, `*_bytes`, ...).

/// Number of exact one-value buckets at the bottom of the range.
pub const LINEAR_BUCKETS: usize = 8;
/// Sub-buckets per octave above the linear range (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3;
/// Octaves covered above the linear range: values `8..=u64::MAX` span
/// exponents 3..=63.
const OCTAVES: usize = 61;
/// Total bucket count of the fixed layout.
pub const NUM_BUCKETS: usize = LINEAR_BUCKETS + OCTAVES * SUB_BUCKETS;

/// A fixed-layout log-linear histogram of `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of `v` in the fixed layout.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS here
    let sub = (v >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
    LINEAR_BUCKETS + (octave - SUB_BITS) as usize * SUB_BUCKETS + sub as usize
}

/// Smallest value that lands in bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    if idx < LINEAR_BUCKETS {
        return idx as u64;
    }
    let group = (idx - LINEAR_BUCKETS) / SUB_BUCKETS;
    let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
    ((LINEAR_BUCKETS + sub) as u64) << group
}

/// Largest value that lands in bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    if idx + 1 < NUM_BUCKETS {
        bucket_low(idx + 1) - 1
    } else {
        u64::MAX
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every recorded value of `other` into `self`. Element-wise,
    /// so merging is associative and commutative — lane drain order
    /// cannot change the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Value at quantile `q` in `[0, 1]`: the bucket midpoint at the
    /// nearest-rank position, clamped to the recorded min/max so exact
    /// extremes survive bucketing. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let mid = bucket_low(idx) + (bucket_high(idx) - bucket_low(idx)) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(low, high_inclusive, count)` in ascending
    /// value order — the exposition-format and debugging view.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(idx, &n)| (bucket_low(idx), bucket_high(idx), n))
    }

    /// Number of recorded values whose bucket lies entirely at or below
    /// `bound` (a conservative cumulative count for `le` buckets in the
    /// Prometheus exposition).
    pub fn count_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(idx, _)| bucket_high(*idx) <= bound)
            .map(|(_, &n)| n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consistent() {
        // Every boundary value maps into the bucket whose range covers it.
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_low(idx);
            let hi = bucket_high(idx);
            assert_eq!(bucket_index(lo), idx, "low of bucket {idx}");
            assert_eq!(bucket_index(hi), idx, "high of bucket {idx}");
            assert!(lo <= hi);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / low <= 1/SUB_BUCKETS above the linear range.
        for v in [8u64, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let idx = bucket_index(v);
            let width = bucket_high(idx) - bucket_low(idx);
            assert!(
                (width as f64) <= bucket_low(idx) as f64 / SUB_BUCKETS as f64 * 2.0,
                "bucket for {v} too wide: [{}, {}]",
                bucket_low(idx),
                bucket_high(idx)
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for v in 0..8u64 {
            let q = (v as f64 + 1.0) / 8.0;
            assert_eq!(h.quantile(q), Some(v));
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000); // 1ms .. 1s in us
        }
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // 12.5% relative-error bound from the bucket layout.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.125, "{p50}");
        assert!((p95 as f64 - 950_000.0).abs() / 950_000.0 < 0.125, "{p95}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.125, "{p99}");
        assert_eq!(h.quantile(0.0), Some(h.min().unwrap()));
        assert_eq!(h.quantile(1.0), Some(1_000_000));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500_000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 50, 999, 1 << 30]);
        let b = mk(&[3, 3, 3, 70_000]);
        let c = mk(&[u64::MAX, 0, 12]);

        // (a+b)+c == a+(b+c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a+b == b+a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Merged equals recording everything into one histogram.
        let all = mk(&[1, 50, 999, 1 << 30, 3, 3, 3, 70_000, u64::MAX, 0, 12]);
        assert_eq!(ab_c, all);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn cumulative_le_is_monotone_and_conservative() {
        let mut h = Histogram::new();
        for v in [5u64, 100, 10_000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(4), 0);
        assert_eq!(h.count_le(5), 1);
        let mut last = 0;
        for bound in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX] {
            let c = h.count_le(bound);
            assert!(c >= last, "cumulative counts must be monotone");
            last = c;
        }
        assert_eq!(h.count_le(u64::MAX), 4);
    }
}
