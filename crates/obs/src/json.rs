//! Minimal JSON parser used to validate emitted trace files.
//!
//! The workspace serializes JSON by hand (offline-build rule: no serde);
//! this module closes the loop by *parsing* it back, so the trace
//! validator and the integration tests can assert structure rather than
//! grepping strings. It is a straightforward recursive-descent parser
//! over the full JSON grammar — small, strict, and plenty fast for
//! multi-megabyte trace files.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; trace files stay well within range).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: trace files never emit them,
                        // but accept them for completeness.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bytes[self.pos..].starts_with(b"\\u") {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid \\u escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise; the
                    // input is a &str so sequences are always valid.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => out.push_str(s),
                            Err(_) => return Err(self.err("invalid UTF-8 sequence")),
                        }
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes a string for embedding inside a JSON string literal (shared by
/// the exporters; names in this codebase are ASCII but the escape is
/// complete for control characters, quotes and backslashes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c\nd"}],"e":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str().unwrap(), "c\nd");
        assert_eq!(v.get("e").unwrap(), &Json::Obj(BTreeMap::new()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""A\t\\ é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\t\\ é");
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let quoted = format!("\"{}\"", escape(s));
        assert_eq!(parse(&quoted).unwrap().as_str().unwrap(), s);
    }
}
