//! Chrome trace-event JSON exporter and validator.
//!
//! Emits the subset of the [trace-event format] that `chrome://tracing`
//! and Perfetto load directly: an object with a `traceEvents` array of
//! `"M"` (metadata: thread names), `"B"` (begin) and `"E"` (end) events.
//! All events share one `pid`; each HYDE track becomes a `tid`, so the
//! main thread and every parallel worker render as separate lanes.
//! Timestamps are microseconds since the trace epoch with nanosecond
//! fraction preserved.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{self, Json};
use crate::{track_name, Event, EventPhase};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Process id used for all emitted events (single-process tracer).
const PID: u32 = 1;

/// Renders `events` as a Chrome trace-event JSON document.
pub fn export(events: &[Event]) -> String {
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    // ~120 bytes per event line.
    let mut out = String::with_capacity(64 + events.len() * 120 + tracks.len() * 96);
    out.push_str("{\n  \"traceEvents\": [\n");
    let mut first = true;
    for &track in &tracks {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "    {{\"ph\": \"M\", \"pid\": {PID}, \"tid\": {track}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            json::escape(&track_name(track))
        );
    }
    for e in events {
        push_sep(&mut out, &mut first);
        let ph = match e.phase {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
        };
        let us_whole = e.ts_ns / 1_000;
        let ns_frac = e.ts_ns % 1_000;
        let _ = write!(
            out,
            "    {{\"ph\": \"{ph}\", \"pid\": {PID}, \"tid\": {}, \"ts\": {us_whole}.{ns_frac:03}, \
             \"cat\": \"hyde\", \"name\": \"{}\"}}",
            e.track,
            json::escape(e.name)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Structural summary produced by [`validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total events in the file (including metadata).
    pub events: usize,
    /// Distinct tracks (tids) that carry begin/end events.
    pub tracks: usize,
    /// Completed spans (matched begin/end pairs).
    pub spans: usize,
    /// Deepest nesting observed on any track.
    pub max_depth: usize,
    /// Span names seen, with completed-span counts.
    pub span_counts: BTreeMap<String, usize>,
    /// Wall-clock extent of the trace in microseconds (last ts − first ts).
    pub wall_us: f64,
    /// Fraction of `wall_us` covered by top-level spans on the busiest
    /// track (the acceptance criterion's coverage figure).
    pub coverage: f64,
}

/// Parses and structurally validates a Chrome trace-event JSON document:
/// well-formed JSON, a `traceEvents` array, every `B` matched by an `E`
/// with the same name on the same track (proper nesting), monotone
/// timestamps per track.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;

    struct TrackState {
        stack: Vec<(String, f64)>,
        last_ts: f64,
        top_level_us: f64,
        first_ts: Option<f64>,
    }
    let mut tracks: BTreeMap<i64, TrackState> = BTreeMap::new();
    let mut spans = 0usize;
    let mut max_depth = 0usize;
    let mut span_counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut min_ts = f64::INFINITY;
    let mut max_ts = f64::NEG_INFINITY;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing \"tid\""))? as i64;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing \"ts\""))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let state = tracks.entry(tid).or_insert_with(|| TrackState {
            stack: Vec::new(),
            last_ts: f64::NEG_INFINITY,
            top_level_us: 0.0,
            first_ts: None,
        });
        if ts < state.last_ts {
            return Err(format!(
                "event {i}: timestamp {ts} goes backwards on track {tid}"
            ));
        }
        state.last_ts = ts;
        state.first_ts.get_or_insert(ts);
        min_ts = min_ts.min(ts);
        max_ts = max_ts.max(ts);
        match ph {
            "B" => {
                state.stack.push((name.to_owned(), ts));
                max_depth = max_depth.max(state.stack.len());
            }
            "E" => {
                let (open_name, begin_ts) = state.stack.pop().ok_or_else(|| {
                    format!("event {i}: end \"{name}\" on track {tid} with empty stack")
                })?;
                if open_name != name {
                    return Err(format!(
                        "event {i}: end \"{name}\" does not match open span \"{open_name}\" \
                         on track {tid}"
                    ));
                }
                spans += 1;
                *span_counts.entry(open_name).or_default() += 1;
                if state.stack.is_empty() {
                    state.top_level_us += ts - begin_ts;
                }
            }
            other => return Err(format!("event {i}: unsupported phase \"{other}\"")),
        }
    }

    for (tid, state) in &tracks {
        if let Some((name, _)) = state.stack.first() {
            return Err(format!("track {tid}: span \"{name}\" never ended"));
        }
    }

    let wall_us = if max_ts > min_ts {
        max_ts - min_ts
    } else {
        0.0
    };
    let coverage = if wall_us > 0.0 {
        tracks
            .values()
            .map(|s| s.top_level_us / wall_us)
            .fold(0.0f64, f64::max)
            .min(1.0)
    } else {
        0.0
    };

    Ok(TraceSummary {
        events: events.len(),
        tracks: tracks.len(),
        spans,
        max_depth,
        span_counts,
        wall_us,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, track: u32, ts_ns: u64, phase: EventPhase) -> Event {
        Event {
            name,
            track,
            ts_ns,
            phase,
            chunk: false,
        }
    }

    #[test]
    fn export_validate_round_trip() {
        let events = vec![
            ev("pipeline", 0, 0, EventPhase::Begin),
            ev("varpart.select_best", 0, 1_000, EventPhase::Begin),
            ev("varpart.score", 1, 1_500, EventPhase::Begin),
            ev("varpart.score", 1, 4_500, EventPhase::End),
            ev("varpart.select_best", 0, 5_000, EventPhase::End),
            ev("pipeline", 0, 9_000, EventPhase::End),
        ];
        let text = export(&events);
        let summary = validate(&text).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.tracks, 2);
        assert_eq!(summary.max_depth, 2);
        assert_eq!(summary.span_counts["varpart.select_best"], 1);
        assert!((summary.wall_us - 9.0).abs() < 1e-9);
        // "pipeline" covers the full extent of the trace on track 0.
        assert!(summary.coverage > 0.99, "coverage = {}", summary.coverage);
    }

    #[test]
    fn export_names_worker_tracks() {
        let events = vec![
            ev("a", 0, 0, EventPhase::Begin),
            ev("a", 0, 10, EventPhase::End),
            ev("b", 1, 0, EventPhase::Begin),
            ev("b", 1, 10, EventPhase::End),
        ];
        let text = export(&events);
        assert!(text.contains("\"name\": \"main\""));
        assert!(text.contains("\"name\": \"worker-0\""));
    }

    #[test]
    fn validate_rejects_unbalanced_and_mismatched() {
        let unbalanced = export(&[ev("a", 0, 0, EventPhase::Begin)]);
        assert!(validate(&unbalanced).unwrap_err().contains("never ended"));

        let mismatched = export(&[
            ev("a", 0, 0, EventPhase::Begin),
            ev("b", 0, 5, EventPhase::End),
        ]);
        assert!(validate(&mismatched)
            .unwrap_err()
            .contains("does not match"));

        let stray = export(&[ev("a", 0, 0, EventPhase::End)]);
        assert!(validate(&stray).unwrap_err().contains("empty stack"));
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
    }
}
