//! Aggregated metrics report ([`ObsReport`]) built from raw trace data.
//!
//! Where the Chrome/folded exporters preserve the full event timeline,
//! the report collapses it into stable per-phase aggregates suitable for
//! embedding in `BENCH_<name>.json`: invocation count, total (inclusive)
//! and self (exclusive) time per span name, plus every named counter.
//! Phases sort by total time descending so the JSON reads as a profile.

use crate::{CounterAgg, Event, EventPhase};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate timing for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name (taxonomy name, e.g. `varpart.select_best`).
    pub name: String,
    /// Number of completed invocations.
    pub count: u64,
    /// Inclusive time across all invocations, microseconds.
    pub total_us: u64,
    /// Exclusive (self) time across all invocations, microseconds.
    pub self_us: u64,
}

/// Aggregate of one named counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Counter name (e.g. `bdd.unique_probes`).
    pub name: String,
    /// Number of `counter` calls.
    pub count: u64,
    /// Sum of deltas.
    pub sum: u64,
}

/// Stable, serializable snapshot of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Wall-clock extent of the trace (first event to last), microseconds.
    pub wall_us: u64,
    /// Distinct tracks (threads) that recorded events.
    pub threads_observed: usize,
    /// Events dropped after the buffer cap was reached.
    pub dropped_events: u64,
    /// Spans still open at snapshot time (closed at the last timestamp
    /// for aggregation purposes, but reported so truncation is visible).
    pub unclosed_spans: u64,
    /// Per-span aggregates, sorted by `total_us` descending.
    pub phases: Vec<PhaseStat>,
    /// Counter aggregates, sorted by name.
    pub counters: Vec<CounterStat>,
}

impl ObsReport {
    /// Looks up a phase aggregate by span name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Looks up a counter aggregate by name.
    pub fn counter(&self, name: &str) -> Option<&CounterStat> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Hand-rolled JSON rendering. `indent` is prepended to every line so
    /// the report can be nested inside a larger document (hyde-bench
    /// embeds it under an `"obs"` key).
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::with_capacity(256 + self.phases.len() * 96);
        let _ = writeln!(out, "{indent}{{");
        let _ = writeln!(out, "{indent}  \"wall_us\": {},", self.wall_us);
        let _ = writeln!(
            out,
            "{indent}  \"threads_observed\": {},",
            self.threads_observed
        );
        let _ = writeln!(
            out,
            "{indent}  \"dropped_events\": {},",
            self.dropped_events
        );
        let _ = writeln!(
            out,
            "{indent}  \"unclosed_spans\": {},",
            self.unclosed_spans
        );
        let _ = writeln!(out, "{indent}  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}, \
                 \"self_us\": {}}}{comma}",
                crate::json::escape(&p.name),
                p.count,
                p.total_us,
                p.self_us
            );
        }
        let _ = writeln!(out, "{indent}  ],");
        let _ = writeln!(out, "{indent}  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}}}{comma}",
                crate::json::escape(&c.name),
                c.count,
                c.sum
            );
        }
        let _ = writeln!(out, "{indent}  ]");
        let _ = write!(out, "{indent}}}");
        out
    }
}

/// Builds the report from raw events and counter aggregates.
pub(crate) fn build(
    events: &[Event],
    counters: &BTreeMap<&'static str, CounterAgg>,
    dropped: u64,
) -> ObsReport {
    struct Agg {
        count: u64,
        total_ns: u64,
        self_ns: u64,
    }
    let mut aggs: BTreeMap<&'static str, Agg> = BTreeMap::new();
    // Per-track replay stack: (name, begin_ts, child_time_ns).
    let mut stacks: BTreeMap<u32, Vec<(&'static str, u64, u64)>> = BTreeMap::new();
    let mut tracks: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    let mut unclosed = 0u64;

    for e in events {
        tracks.insert(e.track);
        min_ts = min_ts.min(e.ts_ns);
        max_ts = max_ts.max(e.ts_ns);
        let stack = stacks.entry(e.track).or_default();
        match e.phase {
            EventPhase::Begin => stack.push((e.name, e.ts_ns, 0)),
            EventPhase::End => {
                if let Some((name, begin, child_ns)) = stack.pop() {
                    let total = e.ts_ns.saturating_sub(begin);
                    let agg = aggs.entry(name).or_insert(Agg {
                        count: 0,
                        total_ns: 0,
                        self_ns: 0,
                    });
                    agg.count += 1;
                    agg.total_ns += total;
                    agg.self_ns += total.saturating_sub(child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += total;
                    }
                }
            }
        }
    }
    // Close leftover spans at the trace's end so their time is not lost,
    // but surface the truncation in the report.
    for stack in stacks.values_mut() {
        while let Some((name, begin, child_ns)) = stack.pop() {
            unclosed += 1;
            let total = max_ts.saturating_sub(begin);
            let agg = aggs.entry(name).or_insert(Agg {
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            agg.count += 1;
            agg.total_ns += total;
            agg.self_ns += total.saturating_sub(child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.2 += total;
            }
        }
    }

    let mut phases: Vec<PhaseStat> = aggs
        .into_iter()
        .map(|(name, a)| PhaseStat {
            name: name.to_owned(),
            count: a.count,
            total_us: a.total_ns / 1_000,
            self_us: a.self_ns / 1_000,
        })
        .collect();
    phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

    let counters = counters
        .iter()
        .map(|(name, c)| CounterStat {
            name: (*name).to_owned(),
            count: c.count,
            sum: c.sum,
        })
        .collect();

    ObsReport {
        wall_us: if max_ts > min_ts {
            (max_ts - min_ts) / 1_000
        } else {
            0
        },
        threads_observed: tracks.len(),
        dropped_events: dropped,
        unclosed_spans: unclosed,
        phases,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, track: u32, ts_ns: u64, phase: EventPhase) -> Event {
        Event {
            name,
            track,
            ts_ns,
            phase,
            chunk: false,
        }
    }

    #[test]
    fn aggregates_total_and_self_time() {
        let events = vec![
            ev("outer", 0, 0, EventPhase::Begin),
            ev("inner", 0, 2_000_000, EventPhase::Begin),
            ev("inner", 0, 6_000_000, EventPhase::End),
            ev("outer", 0, 10_000_000, EventPhase::End),
        ];
        let report = build(&events, &BTreeMap::new(), 0);
        assert_eq!(report.wall_us, 10_000);
        assert_eq!(report.threads_observed, 1);
        assert_eq!(report.unclosed_spans, 0);
        let outer = report.phase("outer").unwrap();
        assert_eq!(
            (outer.count, outer.total_us, outer.self_us),
            (1, 10_000, 6_000)
        );
        let inner = report.phase("inner").unwrap();
        assert_eq!(
            (inner.count, inner.total_us, inner.self_us),
            (1, 4_000, 4_000)
        );
        // Sorted by total_us descending: outer first.
        assert_eq!(report.phases[0].name, "outer");
    }

    #[test]
    fn closes_unclosed_spans_and_counts_them() {
        let events = vec![
            ev("a", 0, 0, EventPhase::Begin),
            ev("b", 0, 1_000_000, EventPhase::Begin),
            ev("b", 0, 3_000_000, EventPhase::End),
        ];
        let report = build(&events, &BTreeMap::new(), 0);
        assert_eq!(report.unclosed_spans, 1);
        let a = report.phase("a").unwrap();
        // Closed at the trace end (3ms).
        assert_eq!(a.total_us, 3_000);
        assert_eq!(a.self_us, 1_000);
    }

    #[test]
    fn report_json_parses_and_contains_fields() {
        let events = vec![
            ev("x", 0, 0, EventPhase::Begin),
            ev("x", 0, 5_000_000, EventPhase::End),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("bdd.unique_probes", CounterAgg { count: 2, sum: 99 });
        let report = build(&events, &counters, 1);
        let text = report.to_json("");
        let doc = crate::json::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("dropped_events").unwrap().as_num().unwrap(), 1.0);
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str().unwrap(), "x");
        let counters = doc.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters[0].get("sum").unwrap().as_num().unwrap(), 99.0);
    }

    #[test]
    fn multi_invocation_counts_accumulate() {
        let events = vec![
            ev("p", 0, 0, EventPhase::Begin),
            ev("p", 0, 1_000_000, EventPhase::End),
            ev("p", 0, 2_000_000, EventPhase::Begin),
            ev("p", 0, 4_000_000, EventPhase::End),
        ];
        let report = build(&events, &BTreeMap::new(), 0);
        let p = report.phase("p").unwrap();
        assert_eq!((p.count, p.total_us), (2, 3_000));
    }
}
