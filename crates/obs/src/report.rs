//! Aggregated metrics report ([`ObsReport`]) built from raw trace data.
//!
//! Where the Chrome/folded exporters preserve the full event timeline,
//! the report collapses it into stable per-phase aggregates suitable for
//! embedding in `BENCH_<name>.json`: invocation count, total (inclusive)
//! and self (exclusive) time per span name, p50/p95/p99 latency from the
//! sharded histograms, plus every named counter and explicit histogram
//! family. Phases sort by total time descending so the JSON reads as a
//! profile.
//!
//! Percentile fields are *additive*: they appear only when histogram
//! data exists, and v2 readers that predate them ignore unknown keys, so
//! the `obs` section stays consumable by older tooling.

use crate::{CounterAgg, Event, EventPhase, Histogram, HistogramSet};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate timing for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name (taxonomy name, e.g. `varpart.select_best`).
    pub name: String,
    /// Number of completed invocations.
    pub count: u64,
    /// Inclusive time across all invocations, microseconds.
    pub total_us: u64,
    /// Exclusive (self) time across all invocations, microseconds.
    pub self_us: u64,
    /// Median invocation latency, microseconds (histogram-derived).
    pub p50_us: Option<f64>,
    /// 95th-percentile invocation latency, microseconds.
    pub p95_us: Option<f64>,
    /// 99th-percentile invocation latency, microseconds.
    pub p99_us: Option<f64>,
}

/// Aggregate of one named counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Counter name (e.g. `bdd.unique_probes`).
    pub name: String,
    /// Number of `counter` calls.
    pub count: u64,
    /// Sum of deltas.
    pub sum: u64,
    /// Median per-call delta (histogram-derived).
    pub p50: Option<u64>,
    /// 95th-percentile per-call delta.
    pub p95: Option<u64>,
    /// 99th-percentile per-call delta.
    pub p99: Option<u64>,
}

/// Aggregate of one explicit [`crate::observe`] histogram family.
#[derive(Debug, Clone, PartialEq)]
pub struct HistStat {
    /// Family name; unit by naming convention (e.g. `bench.circuit_wall_us`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median recorded value.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// Stable, serializable snapshot of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Wall-clock extent of the trace (first event to last), microseconds.
    pub wall_us: u64,
    /// Distinct tracks (threads) that recorded events.
    pub threads_observed: usize,
    /// Events dropped after the buffer cap was reached.
    pub dropped_events: u64,
    /// Spans still open at snapshot time (closed at the last timestamp
    /// for aggregation purposes, but reported so truncation is visible).
    pub unclosed_spans: u64,
    /// Per-span aggregates, sorted by `total_us` descending.
    pub phases: Vec<PhaseStat>,
    /// Counter aggregates, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Explicit histogram families, sorted by name.
    pub hists: Vec<HistStat>,
}

/// Fixed-precision float used in the JSON output so rendering is
/// byte-deterministic.
fn f3(v: f64) -> String {
    format!("{v:.3}")
}

impl ObsReport {
    /// Looks up a phase aggregate by span name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Looks up a counter aggregate by name.
    pub fn counter(&self, name: &str) -> Option<&CounterStat> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Looks up an explicit histogram family by name.
    pub fn hist(&self, name: &str) -> Option<&HistStat> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Hand-rolled JSON rendering. `indent` is prepended to every line so
    /// the report can be nested inside a larger document (hyde-bench
    /// embeds it under an `"obs"` key).
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::with_capacity(256 + self.phases.len() * 128);
        let _ = writeln!(out, "{indent}{{");
        let _ = writeln!(out, "{indent}  \"wall_us\": {},", self.wall_us);
        let _ = writeln!(
            out,
            "{indent}  \"threads_observed\": {},",
            self.threads_observed
        );
        let _ = writeln!(
            out,
            "{indent}  \"dropped_events\": {},",
            self.dropped_events
        );
        let _ = writeln!(
            out,
            "{indent}  \"unclosed_spans\": {},",
            self.unclosed_spans
        );
        let _ = writeln!(out, "{indent}  \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            let comma = if i + 1 < self.phases.len() { "," } else { "" };
            let mut pct = String::new();
            if let (Some(p50), Some(p95), Some(p99)) = (p.p50_us, p.p95_us, p.p99_us) {
                let _ = write!(
                    pct,
                    ", \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}",
                    f3(p50),
                    f3(p95),
                    f3(p99)
                );
            }
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"count\": {}, \"total_us\": {}, \
                 \"self_us\": {}{pct}}}{comma}",
                crate::json::escape(&p.name),
                p.count,
                p.total_us,
                p.self_us
            );
        }
        let _ = writeln!(out, "{indent}  ],");
        let _ = writeln!(out, "{indent}  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let mut pct = String::new();
            if let (Some(p50), Some(p95), Some(p99)) = (c.p50, c.p95, c.p99) {
                let _ = write!(pct, ", \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}");
            }
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}{pct}}}{comma}",
                crate::json::escape(&c.name),
                c.count,
                c.sum
            );
        }
        let _ = writeln!(out, "{indent}  ],");
        let _ = writeln!(out, "{indent}  \"hists\": [");
        for (i, h) in self.hists.iter().enumerate() {
            let comma = if i + 1 < self.hists.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{comma}",
                crate::json::escape(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
        }
        let _ = writeln!(out, "{indent}  ]");
        let _ = write!(out, "{indent}}}");
        out
    }
}

/// Quantile triple of a histogram, in the histogram's raw unit.
fn quantiles(h: &Histogram) -> Option<(u64, u64, u64)> {
    Some((h.quantile(0.50)?, h.quantile(0.95)?, h.quantile(0.99)?))
}

/// Builds the report from raw events, counter aggregates and the merged
/// histogram families.
pub(crate) fn build(
    events: &[Event],
    counters: &BTreeMap<&'static str, CounterAgg>,
    hists: &HistogramSet,
    dropped: u64,
) -> ObsReport {
    struct Agg {
        count: u64,
        total_ns: u64,
        self_ns: u64,
    }
    let mut aggs: BTreeMap<&'static str, Agg> = BTreeMap::new();
    // Per-track replay stack: (name, begin_ts, child_time_ns).
    let mut stacks: BTreeMap<u32, Vec<(&'static str, u64, u64)>> = BTreeMap::new();
    let mut tracks: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    let mut unclosed = 0u64;

    for e in events {
        tracks.insert(e.track);
        min_ts = min_ts.min(e.ts_ns);
        max_ts = max_ts.max(e.ts_ns);
        let stack = stacks.entry(e.track).or_default();
        match e.phase {
            EventPhase::Begin => stack.push((e.name, e.ts_ns, 0)),
            EventPhase::End => {
                if let Some((name, begin, child_ns)) = stack.pop() {
                    let total = e.ts_ns.saturating_sub(begin);
                    let agg = aggs.entry(name).or_insert(Agg {
                        count: 0,
                        total_ns: 0,
                        self_ns: 0,
                    });
                    agg.count += 1;
                    agg.total_ns += total;
                    agg.self_ns += total.saturating_sub(child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += total;
                    }
                }
            }
        }
    }
    // Close leftover spans at the trace's end so their time is not lost,
    // but surface the truncation in the report.
    for stack in stacks.values_mut() {
        while let Some((name, begin, child_ns)) = stack.pop() {
            unclosed += 1;
            let total = max_ts.saturating_sub(begin);
            let agg = aggs.entry(name).or_insert(Agg {
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            agg.count += 1;
            agg.total_ns += total;
            agg.self_ns += total.saturating_sub(child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.2 += total;
            }
        }
    }

    let mut phases: Vec<PhaseStat> = aggs
        .into_iter()
        .map(|(name, a)| {
            let pct = hists.spans.get(name).and_then(quantiles);
            PhaseStat {
                name: name.to_owned(),
                count: a.count,
                total_us: a.total_ns / 1_000,
                self_us: a.self_ns / 1_000,
                p50_us: pct.map(|(p, _, _)| p as f64 / 1_000.0),
                p95_us: pct.map(|(_, p, _)| p as f64 / 1_000.0),
                p99_us: pct.map(|(_, _, p)| p as f64 / 1_000.0),
            }
        })
        .collect();
    phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

    let counters = counters
        .iter()
        .map(|(name, c)| {
            let pct = hists.counters.get(*name).and_then(quantiles);
            CounterStat {
                name: (*name).to_owned(),
                count: c.count,
                sum: c.sum,
                p50: pct.map(|(p, _, _)| p),
                p95: pct.map(|(_, p, _)| p),
                p99: pct.map(|(_, _, p)| p),
            }
        })
        .collect();

    let hist_stats = hists
        .values
        .iter()
        .filter(|(_, h)| h.count() > 0)
        .map(|(name, h)| {
            let (p50, p95, p99) = quantiles(h).unwrap_or((0, 0, 0));
            HistStat {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                min: h.min().unwrap_or(0),
                max: h.max().unwrap_or(0),
                p50,
                p95,
                p99,
            }
        })
        .collect();

    ObsReport {
        wall_us: if max_ts > min_ts {
            (max_ts - min_ts) / 1_000
        } else {
            0
        },
        threads_observed: tracks.len(),
        dropped_events: dropped,
        unclosed_spans: unclosed,
        phases,
        counters,
        hists: hist_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, track: u32, ts_ns: u64, phase: EventPhase) -> Event {
        Event {
            name,
            track,
            ts_ns,
            phase,
            chunk: false,
        }
    }

    fn no_hists() -> HistogramSet {
        HistogramSet::default()
    }

    #[test]
    fn aggregates_total_and_self_time() {
        let events = vec![
            ev("outer", 0, 0, EventPhase::Begin),
            ev("inner", 0, 2_000_000, EventPhase::Begin),
            ev("inner", 0, 6_000_000, EventPhase::End),
            ev("outer", 0, 10_000_000, EventPhase::End),
        ];
        let report = build(&events, &BTreeMap::new(), &no_hists(), 0);
        assert_eq!(report.wall_us, 10_000);
        assert_eq!(report.threads_observed, 1);
        assert_eq!(report.unclosed_spans, 0);
        let outer = report.phase("outer").unwrap();
        assert_eq!(
            (outer.count, outer.total_us, outer.self_us),
            (1, 10_000, 6_000)
        );
        // No histogram data supplied: percentile fields stay absent.
        assert_eq!(outer.p50_us, None);
        let inner = report.phase("inner").unwrap();
        assert_eq!(
            (inner.count, inner.total_us, inner.self_us),
            (1, 4_000, 4_000)
        );
        // Sorted by total_us descending: outer first.
        assert_eq!(report.phases[0].name, "outer");
    }

    #[test]
    fn closes_unclosed_spans_and_counts_them() {
        let events = vec![
            ev("a", 0, 0, EventPhase::Begin),
            ev("b", 0, 1_000_000, EventPhase::Begin),
            ev("b", 0, 3_000_000, EventPhase::End),
        ];
        let report = build(&events, &BTreeMap::new(), &no_hists(), 0);
        assert_eq!(report.unclosed_spans, 1);
        let a = report.phase("a").unwrap();
        // Closed at the trace end (3ms).
        assert_eq!(a.total_us, 3_000);
        assert_eq!(a.self_us, 1_000);
    }

    #[test]
    fn report_json_parses_and_contains_fields() {
        let events = vec![
            ev("x", 0, 0, EventPhase::Begin),
            ev("x", 0, 5_000_000, EventPhase::End),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("bdd.unique_probes", CounterAgg { count: 2, sum: 99 });
        let report = build(&events, &counters, &no_hists(), 1);
        let text = report.to_json("");
        let doc = crate::json::parse(&text).expect("report JSON parses");
        assert_eq!(doc.get("dropped_events").unwrap().as_num().unwrap(), 1.0);
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str().unwrap(), "x");
        let counters = doc.get("counters").unwrap().as_arr().unwrap();
        assert_eq!(counters[0].get("sum").unwrap().as_num().unwrap(), 99.0);
        // The hists section is always present (possibly empty).
        assert!(doc.get("hists").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn percentiles_surface_when_histograms_exist() {
        let events = vec![
            ev("x", 0, 0, EventPhase::Begin),
            ev("x", 0, 5_000_000, EventPhase::End),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("c", CounterAgg { count: 3, sum: 30 });
        let mut hists = HistogramSet::default();
        let mut span_h = Histogram::new();
        span_h.record(5_000_000); // 5ms in ns
        hists.spans.insert("x".to_owned(), span_h);
        let mut ctr_h = Histogram::new();
        for d in [5u64, 10, 15] {
            ctr_h.record(d);
        }
        hists.counters.insert("c".to_owned(), ctr_h);
        let mut val_h = Histogram::new();
        for v in [100u64, 200, 300, 400] {
            val_h.record(v);
        }
        hists.values.insert("lat_us".to_owned(), val_h);

        let report = build(&events, &counters, &hists, 0);
        let x = report.phase("x").unwrap();
        assert_eq!(x.p50_us, Some(5_000.0));
        let c = report.counter("c").unwrap();
        assert_eq!(c.p50, Some(10));
        let h = report.hist("lat_us").unwrap();
        assert_eq!((h.count, h.min, h.max), (4, 100, 400));
        assert!(h.p50 >= 100 && h.p50 <= 400);

        // JSON round-trip: the new keys parse and old keys are intact
        // (a v2 reader keyed on name/count/sum sees the same values).
        let doc = crate::json::parse(&report.to_json("")).expect("parses");
        let phases = doc.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("p50_us").unwrap().as_num().unwrap(), 5000.0);
        assert_eq!(phases[0].get("count").unwrap().as_num().unwrap(), 1.0);
        let hists_arr = doc.get("hists").unwrap().as_arr().unwrap();
        assert_eq!(
            hists_arr[0].get("name").unwrap().as_str().unwrap(),
            "lat_us"
        );
    }

    #[test]
    fn multi_invocation_counts_accumulate() {
        let events = vec![
            ev("p", 0, 0, EventPhase::Begin),
            ev("p", 0, 1_000_000, EventPhase::End),
            ev("p", 0, 2_000_000, EventPhase::Begin),
            ev("p", 0, 4_000_000, EventPhase::End),
        ];
        let report = build(&events, &BTreeMap::new(), &no_hists(), 0);
        let p = report.phase("p").unwrap();
        assert_eq!((p.count, p.total_us), (2, 3_000));
    }
}
