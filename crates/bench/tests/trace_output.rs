//! End-to-end checks on the hyde-obs trace artifacts.
//!
//! Traces a small circuit through the real mapping flow and holds the
//! exported Chrome trace to the acceptance bar: parseable JSON, balanced
//! begin/end per track, canonical phase names, and a *logical* span
//! structure that does not depend on `HYDE_THREADS` (chunk spans carry
//! the thread-dependent fan-out and are excluded from the signature).
//!
//! The tests share the global collector and the `HYDE_THREADS` variable,
//! so they serialize on [`ENV_LOCK`].

use hyde_bench::perf::run_bench_observed;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs the traced flow on rd73 with the given worker count and returns
/// (chrome trace JSON, folded stacks, logical span signature).
fn traced_run(threads: usize) -> (String, String, Vec<(String, u64)>) {
    std::env::set_var("HYDE_THREADS", threads.to_string());
    let circuits = vec![hyde_circuits::rd73()];
    let run = run_bench_observed("trace_test", &circuits, 5).expect("flow maps rd73");
    assert_eq!(run.samples.len(), 1);
    let chrome = hyde_obs::chrome_trace();
    let folded = hyde_obs::folded_stacks();
    let signature = hyde_obs::span_signature();
    std::env::remove_var("HYDE_THREADS");
    (chrome, folded, signature)
}

#[test]
fn chrome_trace_is_valid_and_names_canonical_phases() {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (chrome, folded, _) = traced_run(1);

    // validate() parses the JSON and replays every track's begin/end
    // stack, so passing implies both well-formedness and balance.
    let summary = hyde_obs::chrome::validate(&chrome).expect("trace validates");
    assert!(summary.spans > 0);
    assert!(summary.tracks >= 1);
    assert!(summary.coverage >= 0.90, "coverage {:.2}", summary.coverage);

    // Canonical phases from the span taxonomy must appear by name.
    for phase in [
        "bench.circuit",
        "map.outputs",
        "map.cluster",
        "map.cover",
        "map.verify",
        "hyper.fold",
        "hyper.decompose",
        "decompose.step",
        "chart.build",
        "encoding.encode",
        "varpart.select_best",
    ] {
        assert!(
            summary.span_counts.contains_key(phase),
            "phase '{phase}' missing from trace; have {:?}",
            summary.span_counts.keys().collect::<Vec<_>>()
        );
    }

    // The flamegraph export covers the same run: rooted at a track name,
    // every line "path;frames weight" with a positive integer weight.
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("line has a weight");
        assert!(path.starts_with("main") || path.starts_with("worker-"));
        assert!(weight.parse::<u64>().expect("integer weight") > 0);
    }
}

#[test]
fn worker_tracks_appear_and_balance_at_eight_threads() {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (chrome, _, _) = traced_run(8);
    let summary = hyde_obs::chrome::validate(&chrome).expect("trace validates");
    // main + one track per worker that recorded anything. rd73's seven
    // candidate partitions fan out over >= 2 workers even on small runs.
    assert!(
        summary.tracks >= 2,
        "expected worker tracks, got {}",
        summary.tracks
    );
    assert!(chrome.contains("\"worker-0\""));
}

#[test]
fn span_structure_is_thread_count_invariant() {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (_, _, sig1) = traced_run(1);
    let (_, _, sig8) = traced_run(8);
    assert_eq!(
        sig1, sig8,
        "logical span structure must not depend on HYDE_THREADS"
    );
    assert!(!sig1.is_empty());
}

#[test]
fn obs_report_embeds_phase_breakdown() {
    let _guard = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var("HYDE_THREADS", "1");
    let circuits = vec![hyde_circuits::rd73()];
    let run = run_bench_observed("trace_test", &circuits, 5).expect("flow maps rd73");
    std::env::remove_var("HYDE_THREADS");
    let obs = run.obs.as_ref().expect("observed run carries a report");
    assert!(obs.wall_us > 0);
    assert_eq!(obs.unclosed_spans, 0);
    assert!(obs.phase("map.outputs").is_some());
    assert!(obs.counter("varpart.candidates").is_some());
    // The serialized form must survive the crate's own JSON parser and
    // appear under "obs" in the bench document.
    let json = hyde_bench::perf::to_json(&run, None);
    hyde_obs::json::parse(&json).expect("bench JSON with obs section parses");
    assert!(json.contains("\"obs\": {"));
}
