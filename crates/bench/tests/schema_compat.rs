//! Schema-compatibility checks for the `hyde-bench-v3` document (S6 of
//! the telemetry PR): the v3 obs section adds percentile and histogram
//! keys *additively*, so a reader written against v2 — one that only
//! knows `name`/`count`/`total_us`/`self_us` and `name`/`count`/`sum` —
//! must read a v3 document unchanged, and the schema validator must keep
//! accepting all three tags.

use hyde_bench::perf::{run_bench_observed, to_json, validate_json, SCHEMA};
use hyde_obs::json::{self, Json};

/// A v2-era reader: extracts only the keys the v2 schema documented,
/// ignoring everything it does not know. Returns
/// `(phases as (name, count, self_us), counters as (name, count, sum))`.
#[allow(clippy::type_complexity)]
fn v2_read_obs(doc: &Json) -> (Vec<(String, u64, u64)>, Vec<(String, u64, u64)>) {
    let obs = doc.get("obs").expect("document has an obs section");
    let phases = obs
        .get("phases")
        .and_then(Json::as_arr)
        .expect("obs.phases")
        .iter()
        .map(|p| {
            (
                p.get("name")
                    .and_then(Json::as_str)
                    .expect("name")
                    .to_owned(),
                p.get("count").and_then(Json::as_num).expect("count") as u64,
                p.get("self_us").and_then(Json::as_num).expect("self_us") as u64,
            )
        })
        .collect();
    let counters = obs
        .get("counters")
        .and_then(Json::as_arr)
        .expect("obs.counters")
        .iter()
        .map(|c| {
            (
                c.get("name")
                    .and_then(Json::as_str)
                    .expect("name")
                    .to_owned(),
                c.get("count").and_then(Json::as_num).expect("count") as u64,
                c.get("sum").and_then(Json::as_num).expect("sum") as u64,
            )
        })
        .collect();
    (phases, counters)
}

#[test]
fn v3_obs_section_round_trips_through_a_v2_reader() {
    std::env::set_var("HYDE_THREADS", "1");
    let circuits = vec![hyde_circuits::rd73()];
    let run = run_bench_observed("schema_compat", &circuits, 5).expect("flow maps rd73");
    std::env::remove_var("HYDE_THREADS");

    let text = to_json(&run, None);
    assert!(text.contains(&format!("\"schema\": \"{SCHEMA}\"")));
    validate_json(&text).expect("v3 document validates");

    let doc = json::parse(&text).expect("v3 document parses");
    let (phases, counters) = v2_read_obs(&doc);
    assert!(
        phases
            .iter()
            .any(|(name, count, _)| name == "map.outputs" && *count > 0),
        "v2 reader sees the phase rows: {phases:?}"
    );
    assert!(
        counters
            .iter()
            .any(|(name, _, sum)| name == "varpart.candidates" && *sum > 0),
        "v2 reader sees the counter rows: {counters:?}"
    );

    // The same section does carry the v3 additions the v2 reader skipped.
    let obs = doc.get("obs").expect("obs");
    let has_percentiles = obs
        .get("phases")
        .and_then(Json::as_arr)
        .expect("phases")
        .iter()
        .any(|p| p.get("p95_us").is_some());
    assert!(has_percentiles, "a traced run reports span percentiles");
    assert!(
        obs.get("hists").and_then(Json::as_arr).is_some(),
        "v3 has a hists array"
    );
}

#[test]
fn validator_accepts_all_schema_generations() {
    let stub = |tag: &str| {
        format!(
            "{{\"schema\": \"{tag}\", \"name\": \"t\", \"k\": 5, \"threads\": 1, \
             \"circuits\": [{{\"name\": \"rd73\", \"inputs\": 7, \"outputs\": 3, \
             \"wall_ms\": 1.0, \"luts\": 6, \"depth\": 2, \"bdd_nodes\": 10}}], \
             \"totals\": {{\"wall_ms\": 1.0, \"luts\": 6, \"bdd_nodes\": 10}}}}"
        )
    };
    for tag in ["hyde-bench-v1", "hyde-bench-v2", "hyde-bench-v3"] {
        validate_json(&stub(tag)).unwrap_or_else(|e| panic!("{tag} rejected: {e}"));
    }
    assert!(validate_json(&stub("hyde-bench-v99")).is_err());
}
