//! End-to-end performance measurement with JSON output (`hyde-bench`).
//!
//! Unlike the table binaries (which reproduce the paper's numbers), this
//! module measures *runtime*: per-circuit wall time of the HYDE flow, LUT
//! counts, and the BDD kernel footprint (allocated nodes, unique-table
//! probes, operation-cache hit rate). Results serialize to a
//! `BENCH_<name>.json` trajectory file so successive PRs can prove their
//! speedups against a recorded baseline on the same machine.
//!
//! The JSON is hand-rolled (the build is offline, no serde); the schema is
//! deliberately flat and versioned by the `schema` field.

use hyde_circuits::Circuit;
use hyde_core::CoreError;
use hyde_guard::RetryPolicy;
use hyde_map::flow::FlowKind;
use hyde_map::session::{BudgetSpec, Job, JobErrorKind, Session};
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag written into every benchmark JSON. v3 added percentile
/// fields (`p50_us`/`p95_us`/`p99_us`) and the `"hists"` families inside
/// the `"obs"` section — additive keys, so v2 readers still parse it.
pub const SCHEMA: &str = "hyde-bench-v3";

/// v2 schema tag (added the optional `"obs"` section), still accepted on
/// *read* (`--baseline` files and perf-diff inputs).
pub const SCHEMA_V2: &str = "hyde-bench-v2";

/// v1 schema tag, still accepted on *read* (`--baseline` files and
/// the PR 3 `BENCH_hot_path.json` artifact predate the obs section).
pub const SCHEMA_V1: &str = "hyde-bench-v1";

/// Per-circuit measurement.
#[derive(Debug, Clone)]
pub struct CircuitSample {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Wall-clock milliseconds of the end-to-end HYDE flow.
    pub wall_ms: f64,
    /// LUTs in the mapped network.
    pub luts: usize,
    /// Logic depth in LUT levels.
    pub depth: usize,
    /// BDD nodes allocated while building every output of the circuit in
    /// one shared manager (kernel footprint metric).
    pub bdd_nodes: usize,
    /// Operation-cache hit rate across every BDD manager this circuit's
    /// measurement created and dropped — the mapping flow's managers (when
    /// budget degradation reaches the BDD rung) plus the kernel build —
    /// measured by delta-ing [`hyde_bdd::global_stats`] around both.
    /// `None` only when no cached BDD operations ran at all.
    pub bdd_cache_hit_rate: Option<f64>,
    /// Unique-table probes across those same managers (`Some(0)` when no
    /// unique table was ever touched).
    pub bdd_unique_probes: Option<u64>,
}

/// One full benchmark run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Run label (`BENCH_<name>.json`).
    pub name: String,
    /// LUT size the flow targeted.
    pub k: usize,
    /// Worker threads the parallel fan-out loops used.
    pub threads: usize,
    /// Per-circuit samples, in suite order.
    pub samples: Vec<CircuitSample>,
    /// Per-phase observability breakdown, when the run was traced
    /// (see [`run_bench_observed`]); serialized under `"obs"`.
    pub obs: Option<hyde_obs::ObsReport>,
}

impl BenchRun {
    /// Total flow wall time in milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.samples.iter().map(|s| s.wall_ms).sum()
    }

    /// Total LUT count.
    pub fn total_luts(&self) -> usize {
        self.samples.iter().map(|s| s.luts).sum()
    }

    /// Total BDD nodes allocated by the kernel measurement.
    pub fn total_bdd_nodes(&self) -> usize {
        self.samples.iter().map(|s| s.bdd_nodes).sum()
    }
}

/// Builds every output of `c` in one BDD manager from its ISOP cover —
/// each cube is an AND of literals, each output an OR of its cubes — and
/// reports the kernel footprint in allocated nodes.
///
/// The symbolic construction matters: the old kernel used `from_fn`,
/// whose `mk` path never consults the operation cache, so the reported
/// hit rate was a constant, misleading `0.000`. Driving `and`/`or`/`not`
/// through the cached apply path produces real cache traffic, and the
/// manager's stats flush into [`hyde_bdd::global_stats`] when it drops
/// at the end of this function, landing inside the caller's telemetry
/// window.
fn bdd_kernel(c: &Circuit) -> usize {
    use hyde_logic::{Literal, SopCover};
    let mut bdd = hyde_bdd::Bdd::with_capacity(c.inputs, 1 << 12);
    for f in &c.outputs {
        let mut acc = bdd.zero();
        for cube in SopCover::isop(f).iter() {
            let mut term = bdd.one();
            for var in 0..c.inputs {
                let lit = match cube.literal(var) {
                    Literal::DontCare => continue,
                    Literal::Positive => bdd.var(var),
                    Literal::Negative => {
                        let v = bdd.var(var);
                        bdd.not(v)
                    }
                };
                term = bdd.and(term, lit);
            }
            acc = bdd.or(acc, term);
        }
    }
    bdd.len()
}

/// Telemetry deltas of [`hyde_bdd::global_stats`] across one circuit's
/// flow: `(cache hit rate, unique probes)`.
fn flow_bdd_telemetry(
    before: &hyde_bdd::BddStats,
    after: &hyde_bdd::BddStats,
) -> (Option<f64>, Option<u64>) {
    let lookups = after.cache_lookups.saturating_sub(before.cache_lookups);
    let hits = after.cache_hits.saturating_sub(before.cache_hits);
    let probes = after.unique_probes.saturating_sub(before.unique_probes);
    let rate = (lookups > 0).then(|| hits as f64 / lookups as f64);
    (rate, Some(probes))
}

/// Describes a [`hyde_guard::Budget`] as a serializable
/// [`BudgetSpec`]: an absolute deadline becomes the milliseconds still
/// remaining, restarted at each attempt.
fn budget_spec(budget: &hyde_guard::Budget) -> BudgetSpec {
    BudgetSpec {
        deadline_ms: budget
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64),
        bdd_nodes: budget.bdd_nodes,
        sat_conflicts: budget.sat_conflicts,
        candidates: budget.candidates,
    }
}

/// The single-attempt batch [`Session`] the bench drivers run on — the
/// same supervised path `hyde-serve` uses, minus retries, so a
/// panicking circuit (a bug, or a chaos-injected fault) becomes a typed
/// error instead of aborting the whole batch.
fn batch_session(k: usize) -> Session {
    Session::new(k, FlowKind::hyde(0xDA98)).with_retry(RetryPolicy::single_attempt())
}

/// Runs the HYDE flow (k-input LUTs) over `circuits`, measuring each.
///
/// # Errors
///
/// Propagates the first mapping failure. A panicking circuit surfaces as
/// [`CoreError::Verification`] rather than aborting the process.
pub fn run_bench(name: &str, circuits: &[Circuit], k: usize) -> Result<BenchRun, CoreError> {
    run_bench_budgeted(name, circuits, k, hyde_guard::Budget::unlimited())
}

/// Like [`run_bench`], but with a resource [`hyde_guard::Budget`] on the
/// flow: exhaustion degrades down the hyde-map fallback ladder (recorded
/// as `DegradationEvent`s) instead of failing the run.
pub fn run_bench_budgeted(
    name: &str,
    circuits: &[Circuit],
    k: usize,
    budget: hyde_guard::Budget,
) -> Result<BenchRun, CoreError> {
    let session = batch_session(k);
    let spec = budget_spec(&budget);
    let mut samples = Vec::with_capacity(circuits.len());
    for c in circuits {
        let _obs = hyde_obs::span!("bench.circuit");
        let stats_before = hyde_bdd::global_stats();
        let start = Instant::now();
        let job = Job::new(&c.name, c.outputs.clone()).with_budget(spec);
        let report = match session.run(&job) {
            Ok(result) => result.report,
            Err(e) => {
                return Err(match e.kind {
                    JobErrorKind::Panicked(msg) => {
                        CoreError::Verification(format!("circuit '{}' panicked: {msg}", c.name))
                    }
                    JobErrorKind::Mapping(msg) => CoreError::Verification(msg),
                    JobErrorKind::OutOfBudget(ob) => CoreError::OutOfBudget(ob),
                })
            }
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        hyde_obs::observe("bench.circuit_wall_us", (wall_ms * 1e3) as u64);
        let bdd_nodes = bdd_kernel(c);
        let stats_after = hyde_bdd::global_stats();
        let (bdd_cache_hit_rate, bdd_unique_probes) =
            flow_bdd_telemetry(&stats_before, &stats_after);
        samples.push(CircuitSample {
            name: c.name.clone(),
            inputs: c.inputs,
            outputs: c.output_count(),
            wall_ms,
            luts: report.luts,
            depth: report.depth,
            bdd_nodes,
            bdd_cache_hit_rate,
            bdd_unique_probes,
        });
    }
    Ok(BenchRun {
        name: name.to_owned(),
        k,
        threads: hyde_core::parallel::thread_count(),
        samples,
        obs: None,
    })
}

/// Like [`run_bench`], but with span/counter collection active for the
/// duration of the run: the returned [`BenchRun`] carries the aggregated
/// [`hyde_obs::ObsReport`] and the raw events stay in the global
/// collector, so the caller can also export Chrome-trace/folded
/// artifacts with [`hyde_obs::write_artifacts`].
///
/// # Errors
///
/// Propagates the first mapping failure.
pub fn run_bench_observed(
    name: &str,
    circuits: &[Circuit],
    k: usize,
) -> Result<BenchRun, CoreError> {
    run_bench_observed_budgeted(name, circuits, k, hyde_guard::Budget::unlimited())
}

/// [`run_bench_observed`] with a resource [`hyde_guard::Budget`] on the
/// flow (see [`run_bench_budgeted`]).
///
/// # Errors
///
/// Propagates the first mapping failure.
pub fn run_bench_observed_budgeted(
    name: &str,
    circuits: &[Circuit],
    k: usize,
    budget: hyde_guard::Budget,
) -> Result<BenchRun, CoreError> {
    hyde_obs::reset();
    hyde_obs::enable();
    let result = run_bench_budgeted(name, circuits, k, budget);
    hyde_obs::disable();
    let mut run = result?;
    run.obs = Some(hyde_obs::report());
    Ok(run)
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push_str("null");
    }
}

/// Serializes a run to the benchmark JSON schema. When `baseline` is given
/// (the verbatim JSON object of an earlier run), it is embedded under
/// `"baseline"` and the end-to-end speedup over it is recorded.
pub fn to_json(run: &BenchRun, baseline: Option<&str>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(s, "  \"name\": \"{}\",", run.name);
    let _ = writeln!(s, "  \"k\": {},", run.k);
    let _ = writeln!(s, "  \"threads\": {},", run.threads);
    s.push_str("  \"circuits\": [\n");
    for (i, c) in run.samples.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"inputs\": {}, \"outputs\": {}, \"wall_ms\": ",
            c.name, c.inputs, c.outputs
        );
        push_f64(&mut s, c.wall_ms);
        let _ = write!(
            s,
            ", \"luts\": {}, \"depth\": {}, \"bdd_nodes\": {}, \"bdd_cache_hit_rate\": ",
            c.luts, c.depth, c.bdd_nodes
        );
        match c.bdd_cache_hit_rate {
            Some(r) => push_f64(&mut s, r),
            None => s.push_str("null"),
        }
        s.push_str(", \"bdd_unique_probes\": ");
        match c.bdd_unique_probes {
            Some(p) => {
                let _ = write!(s, "{p}");
            }
            None => s.push_str("null"),
        }
        s.push('}');
        if i + 1 < run.samples.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str("  \"totals\": {\"wall_ms\": ");
    push_f64(&mut s, run.total_wall_ms());
    let _ = write!(
        s,
        ", \"luts\": {}, \"bdd_nodes\": {}}}",
        run.total_luts(),
        run.total_bdd_nodes()
    );
    if let Some(obs) = &run.obs {
        s.push_str(",\n  \"obs\": ");
        s.push_str(obs.to_json("  ").trim_start());
    }
    if let Some(base) = baseline {
        s.push_str(",\n  \"baseline\": ");
        // Re-indent the embedded object for readability.
        let trimmed = base.trim();
        s.push_str(&trimmed.replace('\n', "\n  "));
        if let Some(base_ms) = totals_wall_ms(trimmed) {
            s.push_str(",\n  \"speedup\": ");
            push_f64(&mut s, base_ms / run.total_wall_ms());
        }
    }
    s.push_str("\n}\n");
    s
}

/// Extracts one circuit's `wall_ms` from a benchmark JSON document by
/// scanning for its `"name"` entry inside the `"circuits"` array. Used by
/// the smoke-run overhead guard to compare against the corresponding
/// circuits of a full-suite baseline.
pub fn circuit_wall_ms(json: &str, circuit: &str) -> Option<f64> {
    let arr = json.find("\"circuits\"")?;
    let needle = format!("\"name\": \"{circuit}\"");
    let at = json[arr..].find(&needle)? + arr;
    let rest = &json[at..];
    let key = rest.find("\"wall_ms\"")?;
    let after = rest[key + "\"wall_ms\"".len()..].trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e' || ch == '+'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Extracts `totals.wall_ms` from a benchmark JSON document — the one
/// number the speedup computation needs. Minimal scan, not a full JSON
/// parser: finds the `"totals"` object and reads its `"wall_ms"` value.
pub fn totals_wall_ms(json: &str) -> Option<f64> {
    let totals = json.find("\"totals\"")?;
    let rest = &json[totals..];
    let key = rest.find("\"wall_ms\"")?;
    let after = rest[key + "\"wall_ms\"".len()..].trim_start();
    let after = after.strip_prefix(':')?.trim_start();
    let end = after
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e' || ch == '+'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// Structural sanity check used by `cargo xtask bench`: the document must
/// carry the current schema tag, a circuits array with at least one entry,
/// and a parsable `totals.wall_ms`.
pub fn validate_json(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\""))
        && !json.contains(&format!("\"schema\": \"{SCHEMA_V2}\""))
        && !json.contains(&format!("\"schema\": \"{SCHEMA_V1}\""))
    {
        return Err(format!(
            "missing schema tag {SCHEMA} (or {SCHEMA_V2}/{SCHEMA_V1})"
        ));
    }
    if !json.contains("\"circuits\": [") {
        return Err("missing circuits array".into());
    }
    if !json.contains("\"wall_ms\"") {
        return Err("missing wall_ms fields".into());
    }
    match totals_wall_ms(json) {
        Some(ms) if ms >= 0.0 => Ok(()),
        Some(ms) => Err(format!("negative total wall_ms {ms}")),
        None => Err("totals.wall_ms not parsable".into()),
    }
}

/// Schema tag of chaos-drill reports (`CHAOS_<name>.json`).
pub const CHAOS_SCHEMA: &str = "hyde-chaos-v1";

/// How one circuit fared under a chaos drill.
#[derive(Debug, Clone)]
pub enum ChaosStatus {
    /// Mapped and passed the flow's CEC gate.
    Ok {
        /// LUTs in the (possibly degraded) network.
        luts: usize,
    },
    /// The flow returned a typed error.
    Failed {
        /// The error text.
        error: String,
    },
    /// The flow panicked (isolated per circuit; chaos injects these
    /// deliberately when `HYDE_CHAOS_PANIC=1`).
    Panicked {
        /// The panic message.
        message: String,
    },
}

/// Per-circuit record of a chaos drill.
#[derive(Debug, Clone)]
pub struct ChaosSample {
    /// Circuit name.
    pub name: String,
    /// Outcome.
    pub status: ChaosStatus,
    /// Degradation events the ladder recorded for this circuit.
    pub degradations: Vec<hyde_guard::DegradationEvent>,
}

/// One full chaos drill over the suite.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Run label (`CHAOS_<name>.json`).
    pub name: String,
    /// The chaos seed driving the fault schedule.
    pub seed: u64,
    /// LUT size the flow targeted.
    pub k: usize,
    /// Per-circuit samples, in suite order.
    pub samples: Vec<ChaosSample>,
}

impl ChaosRun {
    /// Total degradation events across all circuits.
    pub fn total_degradations(&self) -> usize {
        self.samples.iter().map(|s| s.degradations.len()).sum()
    }
}

/// Runs the HYDE flow over `circuits` with the chaos layer armed on
/// `seed`: budget exhaustions, simulated BDD allocation failures and (when
/// `HYDE_CHAOS_PANIC=1`) injected panics, every circuit isolated so the
/// drill always completes. `budget` adds *real* resource caps on top of
/// the injected ones (pass [`hyde_guard::Budget::unlimited`] for
/// injection-only drills). Each circuit runs as a single-attempt
/// [`Session`] job, so panic isolation and degradation capture are the
/// same supervised path `hyde-serve` uses; every `Ok` sample's network
/// already passed the flow's CEC verification gate.
pub fn run_chaos(
    name: &str,
    circuits: &[Circuit],
    k: usize,
    seed: u64,
    budget: hyde_guard::Budget,
) -> ChaosRun {
    let session = batch_session(k).with_chaos(seed);
    let spec = budget_spec(&budget);
    let mut samples = Vec::with_capacity(circuits.len());
    for c in circuits {
        let _obs = hyde_obs::span!("bench.chaos_circuit");
        let job = Job::new(&c.name, c.outputs.clone()).with_budget(spec);
        let (status, degradations) = match session.run(&job) {
            Ok(result) => (
                ChaosStatus::Ok {
                    luts: result.report.luts,
                },
                result.degradations,
            ),
            Err(e) => {
                let status = match e.kind {
                    JobErrorKind::Panicked(message) => ChaosStatus::Panicked { message },
                    JobErrorKind::Mapping(error) => ChaosStatus::Failed { error },
                    JobErrorKind::OutOfBudget(ob) => ChaosStatus::Failed {
                        error: CoreError::OutOfBudget(ob).to_string(),
                    },
                };
                (status, e.degradations)
            }
        };
        samples.push(ChaosSample {
            name: c.name.clone(),
            status,
            degradations,
        });
    }
    ChaosRun {
        name: name.to_owned(),
        seed,
        k,
        samples,
    }
}

fn json_escape(s: &str) -> String {
    let mut o = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => o.push_str("\\\""),
            '\\' => o.push_str("\\\\"),
            '\n' => o.push_str("\\n"),
            '\t' => o.push_str("\\t"),
            '\r' => o.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(o, "\\u{:04x}", c as u32);
            }
            c => o.push(c),
        }
    }
    o
}

/// Serializes a chaos drill to `CHAOS_<name>.json` (schema
/// [`CHAOS_SCHEMA`]).
pub fn chaos_to_json(run: &ChaosRun) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{CHAOS_SCHEMA}\",");
    let _ = writeln!(s, "  \"name\": \"{}\",", json_escape(&run.name));
    let _ = writeln!(s, "  \"seed\": {},", run.seed);
    let _ = writeln!(s, "  \"k\": {},", run.k);
    s.push_str("  \"circuits\": [\n");
    for (i, c) in run.samples.iter().enumerate() {
        let _ = write!(s, "    {{\"name\": \"{}\", ", json_escape(&c.name));
        match &c.status {
            ChaosStatus::Ok { luts } => {
                let _ = write!(s, "\"status\": \"ok\", \"luts\": {luts}");
            }
            ChaosStatus::Failed { error } => {
                let _ = write!(
                    s,
                    "\"status\": \"failed\", \"error\": \"{}\"",
                    json_escape(error)
                );
            }
            ChaosStatus::Panicked { message } => {
                let _ = write!(
                    s,
                    "\"status\": \"panicked\", \"error\": \"{}\"",
                    json_escape(message)
                );
            }
        }
        s.push_str(", \"degradations\": [");
        for (j, e) in c.degradations.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"stage\": \"{}\", \"from\": \"{}\", \"to\": \"{}\", \
                 \"resource\": \"{}\", \"injected\": {}}}",
                if j > 0 { ", " } else { "" },
                json_escape(&e.stage),
                e.from,
                e.to,
                e.resource,
                e.injected
            );
        }
        s.push_str("]}");
        if i + 1 < run.samples.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    let ok = run
        .samples
        .iter()
        .filter(|s| matches!(s.status, ChaosStatus::Ok { .. }))
        .count();
    let failed = run
        .samples
        .iter()
        .filter(|s| matches!(s.status, ChaosStatus::Failed { .. }))
        .count();
    let panicked = run
        .samples
        .iter()
        .filter(|s| matches!(s.status, ChaosStatus::Panicked { .. }))
        .count();
    let _ = write!(
        s,
        "  \"totals\": {{\"ok\": {ok}, \"failed\": {failed}, \"panicked\": {panicked}, \
         \"degradations\": {}}}",
        run.total_degradations()
    );
    s.push_str("\n}\n");
    s
}

/// Structural sanity check used by `cargo xtask chaos`: the document must
/// carry the chaos schema tag, a circuits array, and a totals object
/// reporting zero hard failures (a `failed` circuit means a rung of the
/// fallback ladder broke, which the drill treats as a defect).
pub fn validate_chaos_json(json: &str) -> Result<(), String> {
    if !json.contains(&format!("\"schema\": \"{CHAOS_SCHEMA}\"")) {
        return Err(format!("missing schema tag {CHAOS_SCHEMA}"));
    }
    if !json.contains("\"circuits\": [") {
        return Err("missing circuits array".into());
    }
    let Some(pos) = json.find("\"failed\":") else {
        return Err("missing totals.failed".into());
    };
    let after = json[pos + "\"failed\":".len()..].trim_start();
    let end = after
        .find(|ch: char| !ch.is_ascii_digit())
        .unwrap_or(after.len());
    match after[..end].parse::<usize>() {
        Ok(0) => Ok(()),
        Ok(n) => Err(format!("{n} circuit(s) failed with typed errors")),
        Err(_) => Err("totals.failed not parsable".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> BenchRun {
        BenchRun {
            name: "unit".into(),
            k: 5,
            threads: 1,
            obs: None,
            samples: vec![
                CircuitSample {
                    name: "a".into(),
                    inputs: 4,
                    outputs: 2,
                    wall_ms: 12.5,
                    luts: 3,
                    depth: 2,
                    bdd_nodes: 17,
                    bdd_cache_hit_rate: Some(0.5),
                    bdd_unique_probes: Some(99),
                },
                CircuitSample {
                    name: "b".into(),
                    inputs: 5,
                    outputs: 1,
                    wall_ms: 7.5,
                    luts: 2,
                    depth: 1,
                    bdd_nodes: 9,
                    bdd_cache_hit_rate: None,
                    bdd_unique_probes: None,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_totals() {
        let run = sample_run();
        let json = to_json(&run, None);
        assert!(validate_json(&json).is_ok());
        let ms = totals_wall_ms(&json).unwrap();
        assert!((ms - 20.0).abs() < 1e-6);
        assert!(json.contains("\"bdd_cache_hit_rate\": null"));
        assert!(json.contains("\"bdd_cache_hit_rate\": 0.500"));
    }

    #[test]
    fn baseline_embeds_and_computes_speedup() {
        let run = sample_run();
        let mut slow = sample_run();
        for s in &mut slow.samples {
            s.wall_ms *= 3.0;
        }
        let base_json = to_json(&slow, None);
        let json = to_json(&run, Some(&base_json));
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"baseline\":"));
        assert!(json.contains("\"speedup\": 3.000"));
        // totals_wall_ms must read the *run's* totals (which precede the
        // embedded baseline object), not the baseline's.
        assert!((totals_wall_ms(&json).unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
    }

    #[test]
    fn validate_accepts_v1_baselines() {
        let v1 = to_json(&sample_run(), None).replace(SCHEMA, SCHEMA_V1);
        assert!(validate_json(&v1).is_ok());
    }

    #[test]
    fn circuit_wall_ms_finds_per_circuit_time() {
        let json = to_json(&sample_run(), None);
        assert!((circuit_wall_ms(&json, "a").unwrap() - 12.5).abs() < 1e-6);
        assert!((circuit_wall_ms(&json, "b").unwrap() - 7.5).abs() < 1e-6);
        assert!(circuit_wall_ms(&json, "zzz").is_none());
    }

    #[test]
    fn obs_section_embeds_and_stays_valid_json() {
        let mut run = sample_run();
        run.obs = Some(hyde_obs::report());
        let json = to_json(&run, None);
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"obs\": {"));
        // The whole document, obs section included, must parse.
        hyde_obs::json::parse(&json).unwrap();
    }

    #[test]
    fn chaos_json_round_trips_and_validates() {
        let run = ChaosRun {
            name: "unit".into(),
            seed: 42,
            k: 5,
            samples: vec![
                ChaosSample {
                    name: "a".into(),
                    status: ChaosStatus::Ok { luts: 7 },
                    degradations: Vec::new(),
                },
                ChaosSample {
                    name: "b".into(),
                    status: ChaosStatus::Panicked {
                        message: "chaos: injected panic".into(),
                    },
                    degradations: Vec::new(),
                },
            ],
        };
        let json = chaos_to_json(&run);
        validate_chaos_json(&json).unwrap();
        hyde_obs::json::parse(&json).unwrap();

        let mut failed = run.clone();
        failed.samples[0].status = ChaosStatus::Failed {
            error: "rung broke".into(),
        };
        let err = validate_chaos_json(&chaos_to_json(&failed)).unwrap_err();
        assert!(err.contains("failed"), "{err}");
        assert!(validate_chaos_json("{}").is_err());
    }

    #[test]
    fn run_bench_smoke() {
        let circuits = vec![hyde_circuits::rd73()];
        let run = run_bench("smoke", &circuits, 5).unwrap();
        assert_eq!(run.samples.len(), 1);
        assert!(run.samples[0].wall_ms >= 0.0);
        assert!(run.samples[0].luts > 0);
        assert!(run.samples[0].bdd_nodes > 2);
        // The kernel's symbolic ISOP build (and, under degradation, the
        // flow's own BDD rung) drops its managers inside the telemetry
        // window, so the deltas must show real cache traffic — this is
        // the regression test for the old `bdd_cache_hit_rate: 0.000`
        // bug, where the reported stats came from a from_fn-only build
        // that never probed the op cache.
        let probes = run.samples[0].bdd_unique_probes.expect("probes recorded");
        assert!(probes > 0, "kernel did no unique-table work?");
        let rate = run.samples[0]
            .bdd_cache_hit_rate
            .expect("rd73's kernel build performs cached BDD ops");
        assert!(rate > 0.0 && rate <= 1.0, "implausible hit rate {rate}");
        let json = to_json(&run, None);
        validate_json(&json).unwrap();
    }

    #[test]
    fn forced_bdd_rung_flushes_flow_stats_into_telemetry() {
        // Candidate exhaustion degrades Exact -> BddThreshold (the same
        // forcing trick as hyde-map's ladder tests), so the flow itself
        // creates and drops BDD managers — their stats must land in the
        // sample's telemetry window alongside the kernel build's.
        let circuits = vec![hyde_circuits::rd73()];
        let dropped_before = hyde_bdd::global_managers_dropped();
        let budget = hyde_guard::Budget::unlimited().with_candidates(0);
        let run = run_bench_budgeted("forced", &circuits, 5, budget).unwrap();
        // At least the kernel's manager plus one flow-rung manager.
        assert!(
            hyde_bdd::global_managers_dropped() >= dropped_before + 2,
            "BDD rung never ran a manager"
        );
        let rate = run.samples[0]
            .bdd_cache_hit_rate
            .expect("forced BDD rung performs cached ops");
        assert!(rate > 0.0 && rate <= 1.0, "implausible hit rate {rate}");
        assert!(run.samples[0].bdd_unique_probes.unwrap() > 0);
    }

    #[test]
    fn flow_bdd_telemetry_deltas() {
        let before = hyde_bdd::BddStats {
            cache_lookups: 100,
            cache_hits: 40,
            unique_probes: 1000,
            ..Default::default()
        };
        let after = hyde_bdd::BddStats {
            cache_lookups: 300,
            cache_hits: 140,
            unique_probes: 1600,
            ..Default::default()
        };
        let (rate, probes) = flow_bdd_telemetry(&before, &after);
        assert_eq!(rate, Some(0.5));
        assert_eq!(probes, Some(600));
        // No traffic at all: rate is unknown, probes are an honest zero.
        let (rate, probes) = flow_bdd_telemetry(&before, &before);
        assert_eq!(rate, None);
        assert_eq!(probes, Some(0));
    }
}
