//! Shared harness for regenerating the HYDE paper's tables and figures.
//!
//! The binaries (`table1`, `table2`, `figures`, `ablation`) print the same
//! rows the paper reports; this library holds the flow runners, the
//! embedded paper numbers for side-by-side comparison, and the table
//! formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod perf;

use hyde_circuits::Circuit;
use hyde_core::CoreError;
use hyde_map::flow::{FlowKind, MappingFlow};
use hyde_map::MappingReport;

/// Paper numbers for Table 1 (XC3000 CLB counts): (circuit, IMODEC, FGSyn,
/// HYDE). `None` marks a dash in the paper.
pub const PAPER_TABLE1: &[(&str, Option<u32>, Option<u32>, u32)] = &[
    ("5xp1", Some(9), Some(9), 10),
    ("9sym", Some(7), Some(7), 6),
    ("alu2", Some(46), Some(55), 43),
    ("alu4", Some(168), Some(56), 140),
    ("apex6", Some(129), Some(181), 135),
    ("apex7", Some(41), Some(43), 39),
    ("clip", Some(12), Some(18), 11),
    ("count", Some(26), Some(23), 24),
    ("des", Some(489), None, 408),
    ("duke2", Some(122), Some(85), 75),
    ("e64", Some(55), Some(44), 48),
    ("f51m", Some(8), Some(8), 8),
    ("misex1", Some(9), Some(8), 9),
    ("misex2", Some(21), Some(22), 22),
    ("rd73", Some(5), Some(5), 5),
    ("rd84", Some(8), Some(8), 7),
    ("rot", Some(127), Some(136), 125),
    ("sao2", Some(17), Some(25), 17),
    ("vg2", Some(19), Some(17), 18),
    ("z4ml", Some(4), Some(4), 4),
    ("C499", Some(50), Some(54), 50),
    ("C880", Some(81), Some(87), 68),
];

/// One Table 2 row: (circuit, `[8]` w/o resub, `[8]` w/ resub, `[8]` PO,
/// HYDE). `None` marks a dash.
pub type Table2Row = (&'static str, Option<u32>, Option<u32>, Option<u32>, u32);

/// Paper numbers for Table 2 (5-input LUT counts).
pub const PAPER_TABLE2: &[Table2Row] = &[
    ("5xp1", Some(15), Some(11), Some(10), 13),
    ("9sym", Some(7), Some(7), Some(7), 6),
    ("alu2", Some(48), Some(48), Some(48), 50),
    ("alu4", Some(172), Some(90), Some(56), 206),
    ("apex4", Some(374), Some(374), Some(374), 354),
    ("apex6", Some(192), Some(161), Some(155), 186),
    ("apex7", Some(120), Some(61), Some(54), 54),
    ("b9", Some(53), Some(39), Some(37), 36),
    ("clip", Some(18), Some(11), Some(14), 14),
    ("count", Some(52), Some(31), Some(31), 31),
    ("des", None, None, None, 561),
    ("duke2", Some(175), Some(155), Some(150), 116),
    ("e64", None, None, None, 80),
    ("f51m", Some(12), Some(10), Some(8), 12),
    ("misex1", Some(12), Some(10), Some(10), 13),
    ("misex2", Some(40), Some(36), Some(36), 29),
    ("misex3", Some(195), Some(213), Some(120), 131),
    ("rd73", Some(8), Some(6), Some(6), 6),
    ("rd84", Some(12), Some(7), Some(8), 9),
    ("rot", None, None, None, 185),
    ("sao2", Some(23), Some(21), Some(21), 22),
    ("vg2", Some(44), Some(21), Some(17), 18),
    ("z4ml", Some(6), Some(5), Some(4), 5),
    ("C499", None, None, None, 70),
    ("C880", None, None, None, 81),
];

/// One measured row: circuit name plus one report per flow.
#[derive(Debug)]
pub struct Row {
    /// Circuit name.
    pub circuit: String,
    /// Reports in flow order.
    pub reports: Vec<MappingReport>,
}

/// Runs every flow on every circuit, returning one [`Row`] per circuit.
///
/// # Errors
///
/// Propagates the first mapping failure (the suite is expected to map
/// cleanly; failures indicate bugs).
pub fn run_suite(
    circuits: &[Circuit],
    flows: &[(String, MappingFlow)],
) -> Result<Vec<Row>, CoreError> {
    let mut rows = Vec::with_capacity(circuits.len());
    for c in circuits {
        let mut reports = Vec::with_capacity(flows.len());
        for (_, flow) in flows {
            reports.push(flow.map_outputs(&c.name, &c.outputs)?);
        }
        rows.push(Row {
            circuit: c.name.clone(),
            reports,
        });
    }
    Ok(rows)
}

/// Formats rows as an aligned text table; `metric` extracts the number to
/// print per report (CLBs or LUTs).
pub fn format_table(
    title: &str,
    flows: &[(String, MappingFlow)],
    rows: &[Row],
    metric: impl Fn(&MappingReport) -> usize,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    let _ = write!(s, "{:<10}", "circuit");
    for (name, _) in flows {
        let _ = write!(s, "{name:>14}");
    }
    let _ = writeln!(s, "{:>10}", "time(s)");
    let mut totals = vec![0usize; flows.len()];
    for row in rows {
        let _ = write!(s, "{:<10}", row.circuit);
        for (i, r) in row.reports.iter().enumerate() {
            let v = metric(r);
            totals[i] += v;
            let _ = write!(s, "{v:>14}");
        }
        let t: f64 = row.reports.iter().map(|r| r.elapsed.as_secs_f64()).sum();
        let _ = writeln!(s, "{t:>10.2}");
    }
    let _ = write!(s, "{:<10}", "Total");
    for t in &totals {
        let _ = write!(s, "{t:>14}");
    }
    let _ = writeln!(s);
    s
}

/// The standard flow set for Table 1: IMODEC-like, FGSyn-like, HYDE.
pub fn table1_flows(k: usize) -> Vec<(String, MappingFlow)> {
    vec![
        (
            "imodec-like".into(),
            MappingFlow::new(k, FlowKind::imodec_like()),
        ),
        (
            "fgsyn-like".into(),
            MappingFlow::new(k, FlowKind::fgsyn_like()),
        ),
        ("hyde".into(), MappingFlow::new(k, FlowKind::hyde(0xDA98))),
    ]
}

/// The flow set for Table 2: no sharing, structural sharing, HYDE.
pub fn table2_flows(k: usize) -> Vec<(String, MappingFlow)> {
    vec![
        (
            "no-share".into(),
            MappingFlow::new(
                k,
                FlowKind::PerOutput {
                    encoder: hyde_core::encoding::EncoderKind::Lexicographic,
                },
            ),
        ),
        (
            "shared".into(),
            MappingFlow::new(k, FlowKind::imodec_like()),
        ),
        ("hyde".into(), MappingFlow::new(k, FlowKind::hyde(0xDA98))),
    ]
}

/// Summarizes how often the last flow (HYDE) wins/ties/loses against the
/// best baseline, the shape comparison that must match the paper.
pub fn shape_summary(rows: &[Row], metric: impl Fn(&MappingReport) -> usize) -> String {
    let mut wins = 0;
    let mut ties = 0;
    let mut losses = 0;
    for row in rows {
        let hyde = metric(row.reports.last().expect("at least one flow"));
        let best_baseline = row.reports[..row.reports.len() - 1]
            .iter()
            .map(&metric)
            .min()
            .unwrap_or(usize::MAX);
        match hyde.cmp(&best_baseline) {
            std::cmp::Ordering::Less => wins += 1,
            std::cmp::Ordering::Equal => ties += 1,
            std::cmp::Ordering::Greater => losses += 1,
        }
    }
    format!("HYDE vs best baseline: {wins} wins, {ties} ties, {losses} losses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_consistent_with_published_totals() {
        // Table 1 subtotal over rows where every tool has a number:
        // IMODEC 964, FGSyn 895, HYDE 864 (paper's Subtotal line).
        let (mut i_sum, mut f_sum, mut h_sum) = (0u32, 0u32, 0u32);
        for &(_, i, f, h) in PAPER_TABLE1 {
            if let (Some(i), Some(f)) = (i, f) {
                i_sum += i;
                f_sum += f;
                h_sum += h;
            }
        }
        assert_eq!(i_sum, 964);
        assert_eq!(f_sum, 895);
        assert_eq!(h_sum, 864);
        // Table 1 full totals: IMODEC 1453, HYDE 1272.
        let i_total: u32 = PAPER_TABLE1.iter().filter_map(|r| r.1).sum();
        let h_total: u32 = PAPER_TABLE1.iter().map(|r| r.3).sum();
        assert_eq!(i_total, 1453);
        assert_eq!(h_total, 1272);
    }

    #[test]
    fn paper_table2_totals() {
        // HYDE total 1311 (over rows where [8] reports a number);
        // subtotal (-alu4) comparison 1110 vs 1105.
        let h_total: u32 = PAPER_TABLE2
            .iter()
            .filter(|r| r.1.is_some())
            .map(|r| r.4)
            .sum();
        assert_eq!(h_total, 1311);
        let po_sub: u32 = PAPER_TABLE2
            .iter()
            .filter(|r| r.0 != "alu4")
            .filter_map(|r| r.3)
            .sum();
        let h_sub: u32 = PAPER_TABLE2
            .iter()
            .filter(|r| r.0 != "alu4" && r.3.is_some())
            .map(|r| r.4)
            .sum();
        assert_eq!(po_sub, 1110);
        assert_eq!(h_sub, 1105);
    }

    #[test]
    fn run_suite_smoke() {
        let circuits = vec![hyde_circuits::rd73()];
        let flows = table2_flows(5);
        let rows = run_suite(&circuits, &flows).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].reports.len(), 3);
        let table = format_table("t", &flows, &rows, |r| r.luts);
        assert!(table.contains("rd73"));
        assert!(table.contains("Total"));
        let shape = shape_summary(&rows, |r| r.luts);
        assert!(shape.contains("HYDE"));
    }
}
