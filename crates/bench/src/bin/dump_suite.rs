//! Dumps the benchmark suite as PLA files for use with external tools (or
//! to inspect exactly what this reproduction maps).
//!
//! Usage: `cargo run --release -p hyde-bench --bin dump_suite -- [dir]`
//! (default directory: `./suite_pla`).

use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "suite_pla".to_string())
        .into();
    std::fs::create_dir_all(&dir)?;
    let mut total_cubes = 0usize;
    for circuit in hyde_circuits::suite() {
        let pla = circuit.to_pla();
        let path = dir.join(format!("{}.pla", circuit.name));
        std::fs::write(&path, pla.to_text())?;
        total_cubes += pla.rows.len();
        println!(
            "{:<10} {} in, {} out, {} cubes -> {}",
            circuit.name,
            circuit.inputs,
            circuit.output_count(),
            pla.rows.len(),
            path.display()
        );
    }
    println!(
        "{} circuits, {total_cubes} cubes total",
        hyde_circuits::suite().len()
    );
    Ok(())
}
