//! `hyde-bench`: end-to-end runtime benchmark with JSON trajectory output.
//!
//! Times the HYDE flow over the bundled circuit suite and writes
//! `BENCH_<name>.json` (per-circuit wall time, LUT count, BDD kernel
//! footprint, thread count). `--baseline` embeds an earlier run and
//! records the end-to-end speedup over it, so perf PRs carry their own
//! evidence. `--trace <path>` (or `HYDE_TRACE=<path>`) additionally
//! collects spans for the whole run, embeds the per-phase breakdown in
//! the JSON (`"obs"` section), and writes Chrome-trace + folded-stack
//! artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyde_bench::diff::{MAX_RATIO, SLACK_MS};
use hyde_bench::perf::{
    chaos_to_json, circuit_wall_ms, run_bench_budgeted, run_bench_observed_budgeted, run_chaos,
    to_json, totals_wall_ms, validate_json, ChaosStatus,
};
use hyde_guard::Budget;
use hyde_logic::diag::{Code, Diagnostic};
use std::process::ExitCode;

const USAGE: &str = "\
hyde-bench: time the HYDE flow over the circuit suite, write BENCH_<name>.json

Usage: hyde-bench [OPTIONS]

Options:
  --name <NAME>      run label; default output path is BENCH_<NAME>.json
                     (default: hot_path)
  --out <FILE>       explicit output path
  --smoke            3-circuit subset (rd73, misex1, z4ml) instead of all 25;
                     also gates per-circuit wall time against the committed
                     BENCH_smoke.json baseline when present (fails >1.3x + 2ms)
  --circuits <LIST>  comma-separated circuit names to run (overrides --smoke)
  --k <K>            LUT size (default 5)
  --baseline <FILE>  embed FILE (an earlier hyde-bench JSON) as the baseline
                     and record the end-to-end speedup over it; exits 2 if
                     FILE is missing or not a known benchmark schema
  --chaos <SEED>     chaos drill: arm the deterministic fault-injection
                     layer (budget exhaustions, BDD allocation failures,
                     per-circuit panics) on SEED, isolate every circuit,
                     and write CHAOS_<NAME>.json instead of a benchmark
  --budget-ms <MS>          wall-clock deadline for the whole run
  --budget-bdd-nodes <N>    cap live BDD nodes per manager
  --budget-candidates <N>   cap bound-set candidates per decomposition step
  --budget-sat-conflicts <N> cap SAT conflicts per solve
                     (exhausting any budget degrades down the hyde-map
                     fallback ladder instead of failing; the events are
                     counted via hyde-obs and, under --chaos, recorded in
                     the CHAOS JSON)
  --trace <FILE>     collect spans: embed the obs breakdown in the JSON and
                     write a Chrome trace to FILE plus a .folded flamegraph
                     next to it (HYDE_TRACE=<FILE> is equivalent)
  --serve-metrics <ADDR>  serve a Prometheus scrape endpoint (GET /metrics)
                     and a /healthz snapshot on ADDR (e.g. 127.0.0.1:9184)
                     for the duration of the run; implies span collection
  --stdout           print the JSON to stdout instead of writing a file
  -h, --help         this message";

/// Circuits in the `--smoke` subset; kept in sync with the CI smoke step.
const SMOKE_CIRCUITS: [&str; 3] = ["rd73", "misex1", "z4ml"];

struct Options {
    name: String,
    out: Option<String>,
    smoke: bool,
    circuits: Option<Vec<String>>,
    k: usize,
    baseline: Option<String>,
    chaos: Option<u64>,
    budget: Budget,
    trace: Option<String>,
    serve_metrics: Option<String>,
    stdout: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        name: "hot_path".into(),
        out: None,
        smoke: false,
        circuits: None,
        k: 5,
        baseline: None,
        chaos: None,
        budget: Budget::unlimited(),
        trace: None,
        serve_metrics: None,
        stdout: false,
    };
    fn num<T: std::str::FromStr>(
        it: &mut std::slice::Iter<String>,
        flag: &str,
    ) -> Result<T, String> {
        let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value '{v}'"))
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--name" => opts.name = it.next().ok_or("--name needs a value")?.clone(),
            "--out" => opts.out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--smoke" => opts.smoke = true,
            "--circuits" => {
                let v = it.next().ok_or("--circuits needs a value")?;
                opts.circuits = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
            }
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                opts.k = v.parse().map_err(|_| format!("bad --k value '{v}'"))?;
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--chaos" => {
                let v = it.next().ok_or("--chaos needs a seed")?;
                opts.chaos = Some(v.parse().map_err(|_| format!("bad --chaos seed '{v}'"))?);
            }
            "--budget-ms" => {
                let ms: u64 = num(&mut it, "--budget-ms")?;
                opts.budget = opts
                    .budget
                    .with_deadline(std::time::Duration::from_millis(ms));
            }
            "--budget-bdd-nodes" => {
                opts.budget = opts
                    .budget
                    .with_bdd_nodes(num(&mut it, "--budget-bdd-nodes")?);
            }
            "--budget-candidates" => {
                opts.budget = opts
                    .budget
                    .with_candidates(num(&mut it, "--budget-candidates")?);
            }
            "--budget-sat-conflicts" => {
                opts.budget = opts
                    .budget
                    .with_sat_conflicts(num(&mut it, "--budget-sat-conflicts")?);
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--serve-metrics" => {
                opts.serve_metrics =
                    Some(it.next().ok_or("--serve-metrics needs an address")?.clone());
            }
            "--stdout" => opts.stdout = true,
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(Some(opts))
}

/// Hard overhead gate for `--smoke`: every smoke circuit's wall time is
/// compared against the committed `BENCH_smoke.json`, and any circuit
/// more than 1.3× slower fails the run. Sub-millisecond circuits sit
/// below timer and scheduler jitter, so a pure ratio would flake on
/// noise alone; a 2ms absolute slack on top of the ratio keeps the gate
/// quiet there while still catching the regression class this guards
/// against: tracing or caching overhead leaking into the untraced hot
/// path.
///
/// Returns `false` — failing the run — when a circuit exceeds the
/// margin. A missing or incomplete baseline only warns: regenerating
/// `BENCH_smoke.json` must not require passing the gate it feeds.
fn smoke_overhead_check(run: &hyde_bench::perf::BenchRun) -> bool {
    let Ok(baseline) = std::fs::read_to_string("BENCH_smoke.json") else {
        eprintln!("hyde-bench: no BENCH_smoke.json baseline; skipping overhead gate");
        return true;
    };
    let mut ok = true;
    for s in &run.samples {
        match circuit_wall_ms(&baseline, &s.name) {
            Some(base) if base > 0.0 => {
                let ratio = s.wall_ms / base;
                eprintln!(
                    "hyde-bench: smoke gate: {:<8} {:>7.1}ms vs baseline {:.1}ms ({ratio:.2}x)",
                    s.name, s.wall_ms, base
                );
                if s.wall_ms > base * MAX_RATIO + SLACK_MS {
                    eprintln!(
                        "hyde-bench: FAIL: '{}' is {:.0}% slower than the committed \
                         BENCH_smoke.json (hard gate at {MAX_RATIO}x + {SLACK_MS}ms; \
                         see DESIGN.md \"Observability\" for methodology)",
                        s.name,
                        (ratio - 1.0) * 100.0
                    );
                    ok = false;
                }
            }
            _ => {
                eprintln!(
                    "hyde-bench: circuit '{}' missing from baseline; skipping it",
                    s.name
                );
            }
        }
    }
    ok
}

/// The `--chaos` drill: arm deterministic fault injection, run every
/// selected circuit with panic isolation, and write `CHAOS_<name>.json`.
/// Injected panics and degradations are expected outcomes; the drill only
/// fails on *typed* mapping errors, which mean a rung of the fallback
/// ladder broke.
fn run_chaos_mode(opts: &Options, selected: &[hyde_circuits::Circuit], seed: u64) -> ExitCode {
    // Only this batch driver opts in to injected panics; library users
    // and the lint suite never see process-level faults.
    std::env::set_var("HYDE_CHAOS_PANIC", "1");
    // Injected panics are expected and recorded in the report — silence
    // the default all-caps panic banner for the duration of the drill.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = run_chaos(&opts.name, selected, opts.k, seed, opts.budget);
    std::panic::set_hook(prev_hook);
    std::env::remove_var("HYDE_CHAOS_PANIC");
    eprintln!(
        "hyde-bench: chaos drill over {} circuit(s), seed {seed}",
        run.samples.len()
    );
    let mut failed = 0usize;
    for s in &run.samples {
        let status = match &s.status {
            ChaosStatus::Ok { luts } => format!("ok (luts={luts})"),
            ChaosStatus::Panicked { .. } => "panicked (isolated)".to_owned(),
            ChaosStatus::Failed { error } => {
                failed += 1;
                format!("FAILED: {error}")
            }
        };
        eprintln!(
            "  {:<10} degradations={:<3} {status}",
            s.name,
            s.degradations.len()
        );
    }
    let json = chaos_to_json(&run);
    if opts.stdout {
        println!("{json}");
    } else {
        let path = opts
            .out
            .clone()
            .unwrap_or_else(|| format!("CHAOS_{}.json", opts.name));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("hyde-bench: wrote {path}");
    }
    eprintln!(
        "hyde-bench: chaos totals: {} degradation(s), {failed} hard failure(s)",
        run.total_degradations()
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let trace_path = opts.trace.clone().or_else(hyde_obs::init_from_env);
    let all = hyde_circuits::suite();
    let selected: Vec<hyde_circuits::Circuit> = match (&opts.circuits, opts.smoke) {
        (Some(names), _) => {
            let mut picked = Vec::new();
            for want in names {
                match all.iter().find(|c| &c.name == want) {
                    Some(c) => picked.push(c.clone()),
                    None => {
                        eprintln!("error: unknown circuit '{want}'");
                        return ExitCode::from(2);
                    }
                }
            }
            picked
        }
        (None, true) => all
            .iter()
            .filter(|c| SMOKE_CIRCUITS.contains(&c.name.as_str()))
            .cloned()
            .collect(),
        (None, false) => all,
    };
    let baseline = match &opts.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => {
                if let Err(e) = validate_json(&s) {
                    eprintln!("error: baseline '{path}' is not a recognized benchmark JSON: {e}");
                    return ExitCode::from(2);
                }
                Some(s)
            }
            Err(e) => {
                eprintln!("error: cannot read baseline '{path}': {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    if let Some(seed) = opts.chaos {
        return run_chaos_mode(&opts, &selected, seed);
    }
    // Bind the scrape endpoint before the run so Prometheus (or curl)
    // can watch the suite live; it keeps serving the retained data until
    // the process exits.
    let metrics_server = match &opts.serve_metrics {
        Some(addr) => match hyde_obs::serve::MetricsServer::bind(addr.as_str()) {
            Ok(server) => {
                eprintln!(
                    "hyde-bench: serving /metrics and /healthz on http://{}",
                    server.local_addr()
                );
                Some(server)
            }
            Err(e) => {
                eprintln!("error: cannot bind metrics endpoint '{addr}': {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let observed = trace_path.is_some() || metrics_server.is_some();
    eprintln!(
        "hyde-bench: {} circuit(s), k={}, run '{}'{}",
        selected.len(),
        opts.k,
        opts.name,
        if observed { " [traced]" } else { "" }
    );
    let result = if observed {
        run_bench_observed_budgeted(&opts.name, &selected, opts.k, opts.budget)
    } else {
        run_bench_budgeted(&opts.name, &selected, opts.k, opts.budget)
    };
    let run = match result {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: benchmark flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &run.samples {
        eprintln!(
            "  {:<10} {:>9.1}ms  luts={:<4} bdd_nodes={}",
            s.name, s.wall_ms, s.luts, s.bdd_nodes
        );
    }
    let json = to_json(&run, baseline.as_deref());
    if let Err(e) = validate_json(&json) {
        eprintln!("error: emitted JSON failed validation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "hyde-bench: total {:.1}ms over {} circuit(s), {} thread(s)",
        run.total_wall_ms(),
        run.samples.len(),
        run.threads
    );
    if let Some(base) = baseline.as_deref() {
        if let Some(base_ms) = totals_wall_ms(base) {
            eprintln!(
                "hyde-bench: baseline {:.1}ms -> speedup {:.2}x",
                base_ms,
                base_ms / run.total_wall_ms()
            );
        }
    }
    if opts.smoke && opts.circuits.is_none() && !smoke_overhead_check(&run) {
        return ExitCode::FAILURE;
    }
    if observed {
        let dropped = hyde_obs::dropped();
        if dropped > 0 {
            eprintln!(
                "hyde-bench: {}",
                Diagnostic::new(
                    Code::ObsDroppedEvents,
                    format!(
                        "{dropped} trace event(s) dropped at the buffer cap; the exported \
                         timeline is truncated (counters and histogram percentiles are complete)"
                    )
                )
            );
        }
    }
    if let Some(path) = &trace_path {
        match hyde_obs::write_artifacts(path) {
            Ok(folded) => eprintln!("hyde-bench: trace written to {path} and {folded}"),
            Err(e) => {
                eprintln!("error: cannot write trace '{path}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.stdout {
        println!("{json}");
        return ExitCode::SUCCESS;
    }
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", opts.name));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("error: cannot write '{path}': {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("hyde-bench: wrote {path}");
    ExitCode::SUCCESS
}
