//! `hyde-bench`: end-to-end runtime benchmark with JSON trajectory output.
//!
//! Times the HYDE flow over the bundled circuit suite and writes
//! `BENCH_<name>.json` (per-circuit wall time, LUT count, BDD kernel
//! footprint, thread count). `--baseline` embeds an earlier run and
//! records the end-to-end speedup over it, so perf PRs carry their own
//! evidence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyde_bench::perf::{run_bench, to_json, totals_wall_ms, validate_json};
use std::process::ExitCode;

const USAGE: &str = "\
hyde-bench: time the HYDE flow over the circuit suite, write BENCH_<name>.json

Usage: hyde-bench [OPTIONS]

Options:
  --name <NAME>      run label; default output path is BENCH_<NAME>.json
                     (default: hot_path)
  --out <FILE>       explicit output path
  --smoke            3-circuit subset (rd73, misex1, z4ml) instead of all 25
  --circuits <LIST>  comma-separated circuit names to run (overrides --smoke)
  --k <K>            LUT size (default 5)
  --baseline <FILE>  embed FILE (an earlier hyde-bench JSON) as the baseline
                     and record the end-to-end speedup over it
  --stdout           print the JSON to stdout instead of writing a file
  -h, --help         this message";

struct Options {
    name: String,
    out: Option<String>,
    smoke: bool,
    circuits: Option<Vec<String>>,
    k: usize,
    baseline: Option<String>,
    stdout: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        name: "hot_path".into(),
        out: None,
        smoke: false,
        circuits: None,
        k: 5,
        baseline: None,
        stdout: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--name" => opts.name = it.next().ok_or("--name needs a value")?.clone(),
            "--out" => opts.out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--smoke" => opts.smoke = true,
            "--circuits" => {
                let v = it.next().ok_or("--circuits needs a value")?;
                opts.circuits = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
            }
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                opts.k = v.parse().map_err(|_| format!("bad --k value '{v}'"))?;
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--stdout" => opts.stdout = true,
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let all = hyde_circuits::suite();
    let selected: Vec<hyde_circuits::Circuit> = match (&opts.circuits, opts.smoke) {
        (Some(names), _) => {
            let mut picked = Vec::new();
            for want in names {
                match all.iter().find(|c| &c.name == want) {
                    Some(c) => picked.push(c.clone()),
                    None => {
                        eprintln!("error: unknown circuit '{want}'");
                        return ExitCode::from(2);
                    }
                }
            }
            picked
        }
        (None, true) => all
            .iter()
            .filter(|c| ["rd73", "misex1", "z4ml"].contains(&c.name.as_str()))
            .cloned()
            .collect(),
        (None, false) => all,
    };
    let baseline = match &opts.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: cannot read baseline '{path}': {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    eprintln!(
        "hyde-bench: {} circuit(s), k={}, run '{}'",
        selected.len(),
        opts.k,
        opts.name
    );
    let run = match run_bench(&opts.name, &selected, opts.k) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: benchmark flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &run.samples {
        eprintln!(
            "  {:<10} {:>9.1}ms  luts={:<4} bdd_nodes={}",
            s.name, s.wall_ms, s.luts, s.bdd_nodes
        );
    }
    let json = to_json(&run, baseline.as_deref());
    if let Err(e) = validate_json(&json) {
        eprintln!("error: emitted JSON failed validation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "hyde-bench: total {:.1}ms over {} circuit(s), {} thread(s)",
        run.total_wall_ms(),
        run.samples.len(),
        run.threads
    );
    if let Some(base) = baseline.as_deref() {
        if let Some(base_ms) = totals_wall_ms(base) {
            eprintln!(
                "hyde-bench: baseline {:.1}ms -> speedup {:.2}x",
                base_ms,
                base_ms / run.total_wall_ms()
            );
        }
    }
    if opts.stdout {
        println!("{json}");
        return ExitCode::SUCCESS;
    }
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", opts.name));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("error: cannot write '{path}': {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("hyde-bench: wrote {path}");
    ExitCode::SUCCESS
}
