//! `hyde-bench`: end-to-end runtime benchmark with JSON trajectory output.
//!
//! Times the HYDE flow over the bundled circuit suite and writes
//! `BENCH_<name>.json` (per-circuit wall time, LUT count, BDD kernel
//! footprint, thread count). `--baseline` embeds an earlier run and
//! records the end-to-end speedup over it, so perf PRs carry their own
//! evidence. `--trace <path>` (or `HYDE_TRACE=<path>`) additionally
//! collects spans for the whole run, embeds the per-phase breakdown in
//! the JSON (`"obs"` section), and writes Chrome-trace + folded-stack
//! artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyde_bench::perf::{
    circuit_wall_ms, run_bench, run_bench_observed, to_json, totals_wall_ms, validate_json,
};
use std::process::ExitCode;

const USAGE: &str = "\
hyde-bench: time the HYDE flow over the circuit suite, write BENCH_<name>.json

Usage: hyde-bench [OPTIONS]

Options:
  --name <NAME>      run label; default output path is BENCH_<NAME>.json
                     (default: hot_path)
  --out <FILE>       explicit output path
  --smoke            3-circuit subset (rd73, misex1, z4ml) instead of all 25;
                     also soft-checks per-circuit wall time against the
                     committed BENCH_hot_path.json baseline when present
  --circuits <LIST>  comma-separated circuit names to run (overrides --smoke)
  --k <K>            LUT size (default 5)
  --baseline <FILE>  embed FILE (an earlier hyde-bench JSON) as the baseline
                     and record the end-to-end speedup over it
  --trace <FILE>     collect spans: embed the obs breakdown in the JSON and
                     write a Chrome trace to FILE plus a .folded flamegraph
                     next to it (HYDE_TRACE=<FILE> is equivalent)
  --stdout           print the JSON to stdout instead of writing a file
  -h, --help         this message";

/// Circuits in the `--smoke` subset; kept in sync with the CI smoke step.
const SMOKE_CIRCUITS: [&str; 3] = ["rd73", "misex1", "z4ml"];

struct Options {
    name: String,
    out: Option<String>,
    smoke: bool,
    circuits: Option<Vec<String>>,
    k: usize,
    baseline: Option<String>,
    trace: Option<String>,
    stdout: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        name: "hot_path".into(),
        out: None,
        smoke: false,
        circuits: None,
        k: 5,
        baseline: None,
        trace: None,
        stdout: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--name" => opts.name = it.next().ok_or("--name needs a value")?.clone(),
            "--out" => opts.out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--smoke" => opts.smoke = true,
            "--circuits" => {
                let v = it.next().ok_or("--circuits needs a value")?;
                opts.circuits = Some(v.split(',').map(|s| s.trim().to_owned()).collect());
            }
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                opts.k = v.parse().map_err(|_| format!("bad --k value '{v}'"))?;
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone());
            }
            "--trace" => {
                opts.trace = Some(it.next().ok_or("--trace needs a file")?.clone());
            }
            "--stdout" => opts.stdout = true,
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    Ok(Some(opts))
}

/// Soft overhead guard for `--smoke`: compares the smoke circuits' wall
/// times against the committed full-suite baseline (PR 3's
/// `BENCH_hot_path.json`). Logs, never fails — smoke runs on shared CI
/// hardware, so this is a tripwire for gross regressions (for example
/// tracing overhead leaking into the untraced path), not a gate.
fn smoke_overhead_check(run: &hyde_bench::perf::BenchRun) {
    let Ok(baseline) = std::fs::read_to_string("BENCH_hot_path.json") else {
        eprintln!("hyde-bench: no BENCH_hot_path.json baseline; skipping overhead check");
        return;
    };
    let mut base_ms = 0.0;
    let mut now_ms = 0.0;
    for s in &run.samples {
        match circuit_wall_ms(&baseline, &s.name) {
            Some(b) => {
                base_ms += b;
                now_ms += s.wall_ms;
            }
            None => {
                eprintln!(
                    "hyde-bench: circuit '{}' missing from baseline; skipping it",
                    s.name
                );
            }
        }
    }
    if base_ms <= 0.0 || now_ms <= 0.0 {
        return;
    }
    let ratio = now_ms / base_ms;
    eprintln!(
        "hyde-bench: smoke overhead check: {now_ms:.1}ms vs baseline {base_ms:.1}ms ({ratio:.2}x)"
    );
    if ratio > 1.10 {
        eprintln!(
            "hyde-bench: WARNING: smoke subset is {:.0}% slower than the PR 3 baseline \
             (soft check only; see DESIGN.md \"Observability\" for methodology)",
            (ratio - 1.0) * 100.0
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let trace_path = opts.trace.clone().or_else(hyde_obs::init_from_env);
    let all = hyde_circuits::suite();
    let selected: Vec<hyde_circuits::Circuit> = match (&opts.circuits, opts.smoke) {
        (Some(names), _) => {
            let mut picked = Vec::new();
            for want in names {
                match all.iter().find(|c| &c.name == want) {
                    Some(c) => picked.push(c.clone()),
                    None => {
                        eprintln!("error: unknown circuit '{want}'");
                        return ExitCode::from(2);
                    }
                }
            }
            picked
        }
        (None, true) => all
            .iter()
            .filter(|c| SMOKE_CIRCUITS.contains(&c.name.as_str()))
            .cloned()
            .collect(),
        (None, false) => all,
    };
    let baseline = match &opts.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: cannot read baseline '{path}': {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    eprintln!(
        "hyde-bench: {} circuit(s), k={}, run '{}'{}",
        selected.len(),
        opts.k,
        opts.name,
        if trace_path.is_some() {
            " [traced]"
        } else {
            ""
        }
    );
    let result = if trace_path.is_some() {
        run_bench_observed(&opts.name, &selected, opts.k)
    } else {
        run_bench(&opts.name, &selected, opts.k)
    };
    let run = match result {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: benchmark flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &run.samples {
        eprintln!(
            "  {:<10} {:>9.1}ms  luts={:<4} bdd_nodes={}",
            s.name, s.wall_ms, s.luts, s.bdd_nodes
        );
    }
    let json = to_json(&run, baseline.as_deref());
    if let Err(e) = validate_json(&json) {
        eprintln!("error: emitted JSON failed validation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "hyde-bench: total {:.1}ms over {} circuit(s), {} thread(s)",
        run.total_wall_ms(),
        run.samples.len(),
        run.threads
    );
    if let Some(base) = baseline.as_deref() {
        if let Some(base_ms) = totals_wall_ms(base) {
            eprintln!(
                "hyde-bench: baseline {:.1}ms -> speedup {:.2}x",
                base_ms,
                base_ms / run.total_wall_ms()
            );
        }
    }
    if opts.smoke && opts.circuits.is_none() {
        smoke_overhead_check(&run);
    }
    if let Some(path) = &trace_path {
        match hyde_obs::write_artifacts(path) {
            Ok(folded) => eprintln!("hyde-bench: trace written to {path} and {folded}"),
            Err(e) => {
                eprintln!("error: cannot write trace '{path}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.stdout {
        println!("{json}");
        return ExitCode::SUCCESS;
    }
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", opts.name));
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("error: cannot write '{path}': {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("hyde-bench: wrote {path}");
    ExitCode::SUCCESS
}
