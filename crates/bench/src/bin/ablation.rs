//! Ablation studies for the design choices called out in `DESIGN.md`.
//!
//! * `encoding` — class-count objective (HYDE) vs cube-count (Murgai-like)
//!   vs random vs lexicographic, measured as total LUTs on the small suite.
//! * `dc` — don't-care assignment on/off: compatible class counts on
//!   incompletely specified charts.
//! * `hyper` — hyper-function flow vs per-output vs column encoding.
//!
//! Usage: `cargo run --release -p hyde-bench --bin ablation -- [encoding|dc|hyper]`

use hyde_core::chart::{class_count, IsfChart};
use hyde_core::dc_assign::assign_dont_cares;
use hyde_core::encoding::EncoderKind;
use hyde_logic::{Isf, TruthTable};
use hyde_map::flow::{FlowKind, MappingFlow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |s: &str| args.is_empty() || args.iter().any(|a| a == s);
    if want("encoding") {
        ablate_encoding();
    }
    if want("dc") {
        ablate_dc();
    }
    if want("hyper") {
        ablate_hyper();
    }
}

fn ablate_encoding() {
    println!("== Ablation A1: encoding objective (total 5-LUTs, small suite) ==");
    let circuits = hyde_circuits::suite_small();
    let encoders: Vec<(&str, EncoderKind)> = vec![
        ("lexicographic", EncoderKind::Lexicographic),
        ("random", EncoderKind::Random { seed: 77 }),
        (
            "cube-min [3]",
            EncoderKind::CubeMin {
                seed: 77,
                iters: 30,
            },
        ),
        ("hyde (class-count)", EncoderKind::Hyde { seed: 77 }),
    ];
    println!("{:<22}{:>10}", "encoder", "luts");
    for (name, enc) in encoders {
        let flow = MappingFlow::new(
            5,
            FlowKind::SharedAlpha {
                encoder: enc.clone(),
            },
        );
        let total: usize = circuits
            .iter()
            .map(|c| {
                flow.map_outputs(&c.name, &c.outputs)
                    .expect("suite maps cleanly")
                    .luts
            })
            .sum();
        println!("{name:<22}{total:>10}");
    }
    println!();
}

fn ablate_dc() {
    println!("== Ablation A2: don't-care assignment (Section 3.1) ==");
    let mut rng = StdRng::seed_from_u64(3);
    let mut with_dc = 0usize;
    let mut without_dc = 0usize;
    let trials = 40;
    for _ in 0..trials {
        let on = TruthTable::random(8, &mut rng);
        let dc_mask = TruthTable::from_fn(8, |_| rng.gen_bool(0.3));
        let dc = &dc_mask & &!&on;
        let f = Isf::new(on.clone(), dc).expect("arities agree");
        let bound = [0usize, 1, 2, 3];
        // Without assignment: treat dc as 0.
        without_dc += class_count(&on, &bound).expect("valid bound");
        // With clique-partitioning assignment.
        let a = assign_dont_cares(&f, &bound).expect("valid bound");
        with_dc += a.classes.len();
        // The chart view agrees.
        let chart = IsfChart::new(&f, &bound).expect("valid bound");
        assert_eq!(chart.columns().len(), 16);
    }
    println!("{trials} random 8-var ISFs (30% dc), bound size 4:");
    println!("  total classes without dc assignment: {without_dc}");
    println!("  total classes with clique partitioning: {with_dc}");
    println!(
        "  reduction: {:.1}%\n",
        100.0 * (without_dc - with_dc) as f64 / without_dc as f64
    );
}

fn ablate_hyper() {
    println!("== Ablation A3: multi-output strategy (total 5-LUTs, small suite) ==");
    let circuits = hyde_circuits::suite_small();
    let flows: Vec<(&str, FlowKind)> = vec![
        (
            "per-output",
            FlowKind::PerOutput {
                encoder: EncoderKind::Hyde { seed: 5 },
            },
        ),
        (
            "shared-alpha",
            FlowKind::SharedAlpha {
                encoder: EncoderKind::Hyde { seed: 5 },
            },
        ),
        ("column-enc [4]", FlowKind::fgsyn_like()),
        ("hyper (HYDE)", FlowKind::hyde(5)),
    ];
    println!("{:<18}{:>10}", "flow", "luts");
    for (name, kind) in flows {
        let flow = MappingFlow::new(5, kind);
        let total: usize = circuits
            .iter()
            .map(|c| {
                flow.map_outputs(&c.name, &c.outputs)
                    .expect("suite maps cleanly")
                    .luts
            })
            .sum();
        println!("{name:<18}{total:>10}");
    }
    println!();
}
