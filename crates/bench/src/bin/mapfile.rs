//! Map a PLA or BLIF file to a k-LUT network and write the result as BLIF.
//!
//! This is the downstream-user entry point: the same flows the paper's
//! evaluation uses, driven from files instead of the built-in suite.
//!
//! Usage:
//!   cargo run --release -p hyde-bench --bin mapfile -- <input.{pla,blif}> \
//!       [--flow hyde|imodec|fgsyn|per-output] [--k 5] [--out mapped.blif] \
//!       [--seed N]
//!
//! Without `--out` the mapped BLIF goes to stdout; statistics go to stderr.

use hyde_core::encoding::EncoderKind;
use hyde_logic::{blif, pla::Pla, TruthTable};
use hyde_map::flow::{FlowKind, MappingFlow};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut input: Option<String> = None;
    let mut flow_name = "hyde".to_string();
    let mut k = 5usize;
    let mut out: Option<String> = None;
    let mut seed = 0xDA98u64;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--flow" => flow_name = args.next().ok_or("--flow needs a value")?,
            "--k" => {
                k = args
                    .next()
                    .ok_or("--k needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --k: {e}"))?
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let input = input.ok_or("usage: mapfile <input.{pla,blif}> [--flow ...] [--k N]")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("read {input}: {e}"))?;

    // Load outputs as truth tables over the shared input space.
    let (name, outputs): (String, Vec<TruthTable>) = if input.ends_with(".blif") {
        let net = blif::parse(&text).map_err(|e| e.to_string())?;
        if net.inputs().len() > 20 {
            return Err(format!(
                "{} primary inputs exceed the exact-mapping limit of 20",
                net.inputs().len()
            ));
        }
        let tables = net.global_tables();
        let outs = net
            .outputs()
            .iter()
            .map(|(_, id)| tables[id].clone())
            .collect();
        (net.name().to_owned(), outs)
    } else {
        let pla = Pla::parse(&text).map_err(|e| e.to_string())?;
        if pla.inputs > 20 {
            return Err(format!(
                "{} inputs exceed the exact-mapping limit of 20",
                pla.inputs
            ));
        }
        (
            input.trim_end_matches(".pla").to_owned(),
            pla.output_tables(),
        )
    };

    let kind = match flow_name.as_str() {
        "hyde" => FlowKind::hyde(seed),
        "imodec" => FlowKind::imodec_like(),
        "fgsyn" => FlowKind::fgsyn_like(),
        "per-output" => FlowKind::PerOutput {
            encoder: EncoderKind::Lexicographic,
        },
        other => {
            return Err(format!(
                "unknown flow {other:?} (hyde|imodec|fgsyn|per-output)"
            ))
        }
    };
    let flow = MappingFlow::new(k, kind);
    let report = flow
        .map_outputs(&name, &outputs)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "{}: {} ({} LUTs{}, depth {}, {:.2}s)",
        name,
        report.network.stats(),
        report.luts,
        report
            .clbs
            .map_or(String::new(), |c| format!(", {c} XC3000 CLBs")),
        report.depth,
        report.elapsed.as_secs_f64()
    );
    let text = blif::write(&report.network);
    match out {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("write {path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(())
}
