//! Regenerates Table 1 of the HYDE paper: XC3000 CLB counts for the
//! IMODEC-like, FGSyn-like and HYDE flows over the benchmark suite.
//!
//! Usage: `cargo run --release -p hyde-bench --bin table1 [--small]`

use hyde_bench::{format_table, run_suite, shape_summary, table1_flows, PAPER_TABLE1};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let circuits = if small {
        hyde_circuits::suite_small()
    } else {
        hyde_circuits::suite()
    };
    let flows = table1_flows(5);
    eprintln!(
        "mapping {} circuits with {} flows (XC3000, k=5)...",
        circuits.len(),
        flows.len()
    );
    let rows = run_suite(&circuits, &flows).expect("suite must map cleanly");
    let table = format_table(
        "Table 1: XC3000 CLB counts (measured on this reproduction's suite)",
        &flows,
        &rows,
        |r| r.clbs.expect("k=5 flows always pack CLBs"),
    );
    println!("{table}");
    println!("{}", shape_summary(&rows, |r| r.clbs.unwrap_or(usize::MAX)));
    println!();
    println!("== Paper's Table 1 (original MCNC circuits, for shape reference) ==");
    println!(
        "{:<10}{:>14}{:>14}{:>14}",
        "circuit", "IMODEC[5]", "FGSyn[4]", "HYDE"
    );
    for &(name, imodec, fgsyn, hyde) in PAPER_TABLE1 {
        let fmt = |v: Option<u32>| v.map_or("-".to_string(), |x| x.to_string());
        println!("{name:<10}{:>14}{:>14}{hyde:>14}", fmt(imodec), fmt(fgsyn));
    }
}
