//! Regenerates Table 2 of the HYDE paper: 5-input 1-output LUT counts for
//! the no-sharing baseline, the structural-sharing baseline, and HYDE.
//!
//! Usage: `cargo run --release -p hyde-bench --bin table2 [--small]`

use hyde_bench::{format_table, run_suite, shape_summary, table2_flows, PAPER_TABLE2};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let circuits = if small {
        hyde_circuits::suite_small()
    } else {
        hyde_circuits::suite()
    };
    let flows = table2_flows(5);
    eprintln!(
        "mapping {} circuits with {} flows (5-LUTs)...",
        circuits.len(),
        flows.len()
    );
    let rows = run_suite(&circuits, &flows).expect("suite must map cleanly");
    let table = format_table(
        "Table 2: 5-input LUT counts (measured on this reproduction's suite)",
        &flows,
        &rows,
        |r| r.luts,
    );
    println!("{table}");
    println!("{}", shape_summary(&rows, |r| r.luts));
    println!();
    println!("== Paper's Table 2 (original MCNC circuits, for shape reference) ==");
    println!(
        "{:<10}{:>14}{:>14}{:>14}{:>10}",
        "circuit", "[8] no-rs", "[8] resub", "[8] PO", "HYDE"
    );
    for &(name, a, b, c, hyde) in PAPER_TABLE2 {
        let fmt = |v: Option<u32>| v.map_or("-".to_string(), |x| x.to_string());
        println!(
            "{name:<10}{:>14}{:>14}{:>14}{hyde:>10}",
            fmt(a),
            fmt(b),
            fmt(c)
        );
    }
}
