//! Regenerates the worked examples behind the paper's figures.
//!
//! The HYDE paper's figures are illustrative (charts, graphs, example
//! networks) rather than measured plots; this binary re-runs each worked
//! example on the reproduction and prints the artifacts the figures show.
//!
//! Usage: `cargo run -p hyde-bench --bin figures [-- fig1 fig4 ...]`
//! (no arguments = all figures).

use hyde_core::chart::DecompositionChart;
use hyde_core::encoding::{
    build_image, ceil_log2, combine_column_sets, combine_row_sets, CodeAssignment, EncoderKind,
};
use hyde_core::hyper::HyperFunction;
use hyde_core::partition::{example_3_2_partitions, shared_psc_sets};
use hyde_core::Decomposer;
use hyde_logic::TruthTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |f: &str| args.is_empty() || args.iter().any(|a| a == f);
    if want("fig1") || want("fig2") {
        figures_1_and_2();
    }
    if want("fig4") || want("fig5") {
        figures_4_and_5();
    }
    if want("fig6") || want("fig7") {
        figures_6_and_7();
    }
    if want("fig8") || want("fig9") {
        figures_8_and_9();
    }
    if want("fig10") {
        figure_10();
    }
}

/// Builds a 6-variable function with exactly three compatible classes under
/// bound {a,b,c}, mirroring the function of Figure 1: three distinct column
/// patterns are distributed over the eight bound-set columns.
fn example_3_1_function() -> TruthTable {
    let mut rng = StdRng::seed_from_u64(0x316);
    loop {
        // Three random, distinct column patterns over the free vars (x,y,z).
        let pats: Vec<TruthTable> = (0..3).map(|_| TruthTable::random(3, &mut rng)).collect();
        if pats[0] == pats[1] || pats[1] == pats[2] || pats[0] == pats[2] {
            continue;
        }
        let class_of = [0usize, 1, 2, 0, 1, 2, 0, 1];
        let f = TruthTable::from_fn(6, |m| {
            let col = (m & 0b111) as usize;
            pats[class_of[col]].eval(m >> 3)
        });
        return f;
    }
}

fn figures_1_and_2() {
    println!("== Figures 1-2 / Example 3.1: encoding changes the class count of g ==");
    let f = example_3_1_function();
    let chart = DecompositionChart::new(&f, &[0, 1, 2]).expect("valid bound set");
    let classes = chart.classes().clone();
    println!(
        "f(a,b,c,x,y,z) with lambda = {{a,b,c}}: {} compatible classes",
        classes.len()
    );
    // Enumerate every strict 2-bit encoding of the 3 classes and measure
    // the class count of g under lambda' = {alpha0, x, y} (g vars: a0 a1 x y z).
    let mut best = usize::MAX;
    let mut worst = 0usize;
    let codes_pool: Vec<[u32; 3]> = {
        let mut v = Vec::new();
        for a in 0u32..4 {
            for b in 0u32..4 {
                for c in 0u32..4 {
                    if a != b && b != c && a != c {
                        v.push([a, b, c]);
                    }
                }
            }
        }
        v
    };
    for codes in &codes_pool {
        let ca = CodeAssignment::new(codes.to_vec(), 2).expect("codes fit");
        let (g, _) = build_image(&classes, &ca);
        let cc = hyde_core::chart::class_count(&g, &[0, 2, 3]).expect("valid bound");
        best = best.min(cc);
        worst = worst.max(cc);
    }
    println!(
        "over all {} strict encodings, classes of g under {{a0,x,y}}: best {best}, worst {worst}",
        codes_pool.len()
    );
    println!("(the paper's Figure 2 shows exactly this: case 1 vs case 2 differ)\n");
}

fn figures_4_and_5() {
    println!("== Figures 4-5 / Example 3.2 Step 5: Psc analysis and column b-matching ==");
    let parts = example_3_2_partitions();
    for (i, p) in parts.iter().enumerate() {
        println!("  Pi_{i} = {p}");
    }
    println!("-- shared Psc sets (Figure 4b) --");
    for s in shared_psc_sets(&parts) {
        let pos: Vec<String> = s.positions.iter().map(|p| format!("p{p}")).collect();
        let who: Vec<String> = s.partitions.iter().map(|p| format!("Pi_{p}")).collect();
        println!("  {} shared by {{{}}}", pos.join(""), who.join(","));
    }
    println!("-- column sets from max-weight b-matching (Figure 5, #R=4) --");
    for set in combine_column_sets(&parts, 4) {
        let names: Vec<String> = set.iter().map(|p| format!("Pi_{p}")).collect();
        println!("  {{{}}}", names.join(","));
    }
    println!();
}

fn figures_6_and_7() {
    println!("== Figures 6-7 / Example 3.2 Step 7: row merging and the final chart ==");
    let parts = example_3_2_partitions();
    let col_sets = combine_column_sets(&parts, 4);
    let row_sets = combine_row_sets(&parts, &col_sets, 4, 4);
    println!("-- row sets after benefit matching (<= #R = 4) --");
    for set in &row_sets {
        let names: Vec<String> = set.iter().map(|p| format!("Pi_{p}")).collect();
        println!("  {{{}}}", names.join(","));
    }
    println!("(paper reaches {{Pi1,Pi3,Pi0,Pi9}}, {{Pi2,Pi4}}, {{Pi5,Pi6}}, {{Pi7,Pi8}})");
    println!();
}

fn figures_8_and_9() {
    println!("== Figures 8-9 / Example 4.1: hyper-function duplication cone ==");
    // Four ingredients over 9 real inputs with the paper's support shapes.
    let mut rng = StdRng::seed_from_u64(0x41);
    let mut mask = |vars: &[usize]| {
        let f = TruthTable::random(9, &mut rng);
        // Restrict support: quantify away the excluded variables.
        let mut g = f;
        for v in 0..9 {
            if !vars.contains(&v) {
                g = g.cofactor(v, false);
            }
        }
        g
    };
    let f0 = mask(&[0, 1, 2, 3, 4, 5, 7, 8]);
    let f1 = mask(&[0, 1, 2, 3, 4, 5, 6]);
    let f2 = mask(&[0, 1, 2, 3, 4, 5]);
    let f3 = {
        // distinct from f2
        let mut g = mask(&[0, 1, 2, 3, 4, 5]);
        if g == f2 {
            g = !&g;
        }
        g
    };
    let h = HyperFunction::new(vec![f0, f1, f2, f3], &EncoderKind::Hyde { seed: 0x41 }, 5)
        .expect("valid ingredients");
    println!(
        "hyper-function F: B^{} -> B with {} pseudo primary inputs",
        h.num_inputs() + h.pseudo_bits(),
        h.pseudo_bits()
    );
    let dec = Decomposer::new(5, EncoderKind::Hyde { seed: 0x41 });
    let hn = h.decompose(&dec).expect("decomposition succeeds");
    println!("decomposed network: {} LUTs", hn.network.internal_count());
    println!(
        "duplication source DS: {} nodes",
        hn.duplication_source().len()
    );
    println!("duplication cone DC: {} nodes", hn.duplication_cone().len());
    for m in 1..=h.pseudo_bits() {
        println!("  DSet_{m}: {} nodes", hn.dset(m).len());
    }
    println!(
        "paper's duplication bound: {} LUTs; after constant collapse + sharing: {} LUTs",
        hn.predicted_lut_bound(),
        hn.implemented_lut_count().expect("implementation succeeds")
    );
    hn.verify_ingredients().expect("all ingredients recovered");
    println!(
        "all {} ingredients verified after recovery\n",
        h.ingredients().len()
    );
}

fn figure_10() {
    println!("== Figure 10 / Example 4.2: pliable vs rigid encoding ==");
    // Construct f0 contained by f1's partition (as in the paper: Pi0
    // contained by Pic12), then compare LUT counts when f0 reuses the
    // shared alphas (pliable) vs encoding its own classes rigidly.
    let mut rng = StdRng::seed_from_u64(0x42);
    let bound = [0usize, 1, 2, 3];
    loop {
        let f1 = TruthTable::random(6, &mut rng);
        let p1 = hyde_core::containment::function_partition(&f1, &bound).expect("valid");
        if p1.multiplicity() < 5 || ceil_log2(p1.multiplicity()) >= 4 {
            continue;
        }
        // f0's columns group by p1's symbol mod 4, so its partition is a
        // coarsening of p1 (contained by it) with up to 4 classes.
        let f0 = TruthTable::from_fn(6, |m| {
            let c = (m & 0b1111) as usize;
            (m >> 4) == (p1.symbol(c) % 4)
        });
        let p0 = hyde_core::containment::function_partition(&f0, &bound).expect("valid");
        if p0.multiplicity() < 3 || !p0.is_contained_by(&p1) {
            continue;
        }
        let shared = hyde_core::containment::share_alphas(&f0, &f1, &bound)
            .expect("valid")
            .expect("containment holds");
        assert!(hyde_core::containment::verify_shared(&f0, &bound, &shared));
        let own_bits = ceil_log2(p0.multiplicity());
        println!(
            "Pi0 multiplicity {} (needs {own_bits} bits alone); shared alphas: {} (pliable)",
            p0.multiplicity(),
            shared.alphas.len()
        );
        println!(
            "rigid encoding would add {} extra alpha LUT(s) for f0's own decomposition \
             functions; pliable sharing adds 0 (Figure 10's two-LUT saving)",
            own_bits
        );
        break;
    }
    println!();
}
