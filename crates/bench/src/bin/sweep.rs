//! LUT-size sensitivity sweep: map the small suite for k ∈ {4, 5, 6} under
//! every flow and print the LUT-count series. The paper evaluates k = 4/5
//! devices (XC3000 CLBs and 5-LUTs); this sweep shows where the flows'
//! orderings hold across the LUT-size axis.
//!
//! Usage: `cargo run --release -p hyde-bench --bin sweep`

use hyde_core::encoding::EncoderKind;
use hyde_map::flow::{FlowKind, MappingFlow};

type FlowFactory = fn() -> FlowKind;

fn main() {
    let circuits = hyde_circuits::suite_small();
    let flows: Vec<(&str, FlowFactory)> = vec![
        ("per-output", || FlowKind::PerOutput {
            encoder: EncoderKind::Lexicographic,
        }),
        ("shared", FlowKind::imodec_like),
        ("fgsyn", FlowKind::fgsyn_like),
        ("hyde", || FlowKind::hyde(0xDA98)),
    ];
    println!("{:<12}{:>10}{:>10}{:>10}", "flow", "k=4", "k=5", "k=6");
    for (label, mk) in &flows {
        let mut row = format!("{label:<12}");
        for k in [4usize, 5, 6] {
            let flow = MappingFlow::new(k, mk());
            let total: usize = circuits
                .iter()
                .map(|c| {
                    flow.map_outputs(&c.name, &c.outputs)
                        .expect("suite maps cleanly")
                        .luts
                })
                .sum();
            row.push_str(&format!("{total:>10}"));
        }
        println!("{row}");
    }
    println!("\n(total 5-LUT-equivalent node counts over the small suite; lower is better)");
}
