//! Performance regression detection between two recorded runs
//! (`cargo xtask perf-diff`) and the append-only benchmark trajectory
//! (`BENCH_TRAJECTORY.jsonl`, written by `cargo xtask bench --record`).
//!
//! [`diff`] accepts any pair of `BENCH_*.json` documents (schema v1/v2/
//! v3) or Chrome `TRACE_*.json` exports and compares them on two axes:
//!
//! * **per-circuit wall clock** — the gating axis. A circuit regresses
//!   when `new > old * MAX_RATIO + SLACK_MS`, the same threshold the
//!   smoke-run overhead guard applies, so one number governs both gates.
//! * **per-phase self time** — the attribution axis. For every span name
//!   present in both runs' obs sections (or replayed from the trace
//!   events), the self-time ratio is computed; when a circuit regresses,
//!   the phases that grew the most are named next to it ("apex6 1.46x;
//!   suspect phases: varpart.floor ..."), turning "it got slower" into
//!   "this phase got slower".
//!
//! Trajectory lines are one JSON object per line (schema
//! `hyde-traj-v1`): label, optional unix timestamp, thread count, and
//! the suite totals — enough to plot wall clock and LUT quality over the
//! PR sequence without re-running anything.

use hyde_obs::json::{self, Json};
use std::fmt::Write as _;

/// Regression threshold shared with the smoke-run overhead guard: a
/// circuit may not get more than 30% slower...
pub const MAX_RATIO: f64 = 1.3;
/// ...plus a small absolute slack so micro-circuits (sub-millisecond
/// walls) do not trip the gate on scheduler noise.
pub const SLACK_MS: f64 = 2.0;

/// Self-time growth ratio above which a phase is named as a suspect.
const PHASE_SUSPECT_RATIO: f64 = 1.25;
/// Minimum self-time growth (µs) for a phase to be named — filters
/// phases too small to explain a wall-clock regression.
const PHASE_SUSPECT_FLOOR_US: u64 = 500;
/// At most this many suspect phases are named per regression.
const MAX_SUSPECTS: usize = 3;

/// Wall-clock comparison of one circuit present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitDelta {
    /// Circuit name.
    pub name: String,
    /// Old wall clock, milliseconds.
    pub old_ms: f64,
    /// New wall clock, milliseconds.
    pub new_ms: f64,
}

/// Self-time comparison of one span name present in both runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Span name.
    pub name: String,
    /// Old self time, microseconds.
    pub old_self_us: u64,
    /// New self time, microseconds.
    pub new_self_us: u64,
}

impl PhaseDelta {
    /// Self-time growth ratio (∞-safe: 0 old self counts as ratio 1 when
    /// new is also 0).
    pub fn ratio(&self) -> f64 {
        if self.old_self_us == 0 {
            if self.new_self_us == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new_self_us as f64 / self.old_self_us as f64
        }
    }

    fn is_suspect(&self) -> bool {
        self.new_self_us.saturating_sub(self.old_self_us) >= PHASE_SUSPECT_FLOOR_US
            && self.ratio() >= PHASE_SUSPECT_RATIO
    }
}

/// Result of comparing two runs.
#[derive(Debug, Clone, Default)]
pub struct PerfDiff {
    /// Circuits present in both runs, suite order of the new run.
    pub circuits: Vec<CircuitDelta>,
    /// Span names present in both runs, sorted by new self time desc.
    pub phases: Vec<PhaseDelta>,
    /// Human-readable regression messages (per-circuit gate failures,
    /// each with its suspect phases). Empty means the gate passes.
    pub regressions: Vec<String>,
}

impl PerfDiff {
    /// Whether the wall-clock gate failed.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the comparison as an aligned text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.circuits.is_empty() {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10} {:>7}",
                "circuit", "old_ms", "new_ms", "ratio"
            );
            for c in &self.circuits {
                let ratio = if c.old_ms > 0.0 {
                    c.new_ms / c.old_ms
                } else {
                    f64::NAN
                };
                let _ = writeln!(
                    out,
                    "{:<12} {:>10.3} {:>10.3} {:>6.2}x",
                    c.name, c.old_ms, c.new_ms, ratio
                );
            }
        }
        let moved: Vec<&PhaseDelta> = self.phases.iter().filter(|p| p.is_suspect()).collect();
        if !moved.is_empty() {
            let _ = writeln!(out, "phases with self-time growth:");
            for p in &moved {
                let _ = writeln!(
                    out,
                    "  {:<24} self {:>8}us -> {:>8}us ({:.2}x)",
                    p.name,
                    p.old_self_us,
                    p.new_self_us,
                    p.ratio()
                );
            }
        }
        for r in &self.regressions {
            let _ = writeln!(out, "REGRESSION: {r}");
        }
        if self.regressions.is_empty() {
            let _ = writeln!(out, "gate: ok (max {MAX_RATIO}x + {SLACK_MS}ms slack)");
        }
        out
    }
}

/// Per-phase `(name, self_us)` extracted from one parsed document.
fn phase_self_times(doc: &Json) -> Vec<(String, u64)> {
    if let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) {
        return replay_trace_self_times(events);
    }
    let mut out = Vec::new();
    if let Some(phases) = doc
        .get("obs")
        .and_then(|o| o.get("phases"))
        .and_then(Json::as_arr)
    {
        for p in phases {
            if let (Some(name), Some(self_us)) = (
                p.get("name").and_then(Json::as_str),
                p.get("self_us").and_then(Json::as_num),
            ) {
                out.push((name.to_owned(), self_us as u64));
            }
        }
    }
    out
}

/// Replays a Chrome trace's begin/end events into per-name self time
/// (µs), the same per-track stack walk the obs report uses.
fn replay_trace_self_times(events: &[Json]) -> Vec<(String, u64)> {
    use std::collections::BTreeMap;
    // Per-track stack of (name, begin_ts_us, child_us).
    let mut stacks: BTreeMap<i64, Vec<(String, f64, f64)>> = BTreeMap::new();
    let mut self_us: BTreeMap<String, f64> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "B" && ph != "E" {
            continue;
        }
        let tid = ev.get("tid").and_then(Json::as_num).unwrap_or(0.0) as i64;
        let ts = ev.get("ts").and_then(Json::as_num).unwrap_or(0.0);
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        let stack = stacks.entry(tid).or_default();
        if ph == "B" {
            stack.push((name.to_owned(), ts, 0.0));
        } else if let Some((open, begin, child)) = stack.pop() {
            let total = (ts - begin).max(0.0);
            *self_us.entry(open).or_default() += (total - child).max(0.0);
            if let Some(parent) = stack.last_mut() {
                parent.2 += total;
            }
        }
    }
    self_us
        .into_iter()
        .map(|(name, us)| (name, us as u64))
        .collect()
}

/// Per-circuit `(name, wall_ms)` in document order.
fn circuit_walls(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(circuits) = doc.get("circuits").and_then(Json::as_arr) {
        for c in circuits {
            if let (Some(name), Some(wall)) = (
                c.get("name").and_then(Json::as_str),
                c.get("wall_ms").and_then(Json::as_num),
            ) {
                out.push((name.to_owned(), wall));
            }
        }
    }
    out
}

/// Compares two benchmark/trace JSON documents.
///
/// # Errors
///
/// Returns a description when either input fails to parse or contains
/// neither a `circuits` array nor a `traceEvents` array.
pub fn diff(old_json: &str, new_json: &str) -> Result<PerfDiff, String> {
    let old = json::parse(old_json).map_err(|e| format!("old input: {e}"))?;
    let new = json::parse(new_json).map_err(|e| format!("new input: {e}"))?;
    for (label, doc) in [("old", &old), ("new", &new)] {
        if doc.get("circuits").is_none() && doc.get("traceEvents").is_none() {
            return Err(format!(
                "{label} input has neither a \"circuits\" nor a \"traceEvents\" array"
            ));
        }
    }

    let old_walls = circuit_walls(&old);
    let new_walls = circuit_walls(&new);
    let mut circuits = Vec::new();
    for (name, new_ms) in &new_walls {
        if let Some((_, old_ms)) = old_walls.iter().find(|(n, _)| n == name) {
            circuits.push(CircuitDelta {
                name: name.clone(),
                old_ms: *old_ms,
                new_ms: *new_ms,
            });
        }
    }

    let old_phases = phase_self_times(&old);
    let new_phases = phase_self_times(&new);
    let mut phases = Vec::new();
    for (name, new_self_us) in &new_phases {
        if let Some((_, old_self_us)) = old_phases.iter().find(|(n, _)| n == name) {
            phases.push(PhaseDelta {
                name: name.clone(),
                old_self_us: *old_self_us,
                new_self_us: *new_self_us,
            });
        }
    }
    phases.sort_by(|a, b| b.new_self_us.cmp(&a.new_self_us).then(a.name.cmp(&b.name)));

    // The gate: per-circuit wall clock against the smoke threshold, with
    // the fastest-growing phases named as suspects.
    let mut suspects: Vec<&PhaseDelta> = phases.iter().filter(|p| p.is_suspect()).collect();
    suspects.sort_by(|a, b| {
        let ga = a.new_self_us.saturating_sub(a.old_self_us);
        let gb = b.new_self_us.saturating_sub(b.old_self_us);
        gb.cmp(&ga).then(a.name.cmp(&b.name))
    });
    let mut regressions = Vec::new();
    for c in &circuits {
        if c.new_ms > c.old_ms * MAX_RATIO + SLACK_MS {
            let mut msg = format!(
                "{}: {:.3}ms -> {:.3}ms ({:.2}x, gate {:.1}x + {:.0}ms)",
                c.name,
                c.old_ms,
                c.new_ms,
                c.new_ms / c.old_ms.max(f64::MIN_POSITIVE),
                MAX_RATIO,
                SLACK_MS
            );
            if !suspects.is_empty() {
                let named: Vec<String> = suspects
                    .iter()
                    .take(MAX_SUSPECTS)
                    .map(|p| {
                        format!(
                            "{} self {}us -> {}us ({:.2}x)",
                            p.name,
                            p.old_self_us,
                            p.new_self_us,
                            p.ratio()
                        )
                    })
                    .collect();
                let _ = write!(msg, "; suspect phases: {}", named.join(", "));
            }
            regressions.push(msg);
        }
    }

    Ok(PerfDiff {
        circuits,
        phases,
        regressions,
    })
}

// ---------------------------------------------------------------------
// Benchmark trajectory (BENCH_TRAJECTORY.jsonl).
// ---------------------------------------------------------------------

/// Schema tag of one trajectory line.
pub const TRAJ_SCHEMA: &str = "hyde-traj-v1";

/// Builds one `BENCH_TRAJECTORY.jsonl` line from a benchmark JSON
/// document. `label` identifies the data point (typically the run name or
/// PR); `recorded_at` is unix seconds, or `None` for back-filled seeds.
///
/// # Errors
///
/// Returns a description when the document is missing the fields a
/// trajectory point needs.
pub fn trajectory_line(
    label: &str,
    bench_json: &str,
    recorded_at: Option<u64>,
) -> Result<String, String> {
    let doc = json::parse(bench_json).map_err(|e| e.to_string())?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing run name")?;
    let threads = doc
        .get("threads")
        .and_then(Json::as_num)
        .ok_or("missing threads")? as u64;
    let k = doc.get("k").and_then(Json::as_num).ok_or("missing k")? as u64;
    let circuits = doc
        .get("circuits")
        .and_then(Json::as_arr)
        .ok_or("missing circuits array")?
        .len();
    let totals = doc.get("totals").ok_or("missing totals")?;
    let wall_ms = totals
        .get("wall_ms")
        .and_then(Json::as_num)
        .ok_or("missing totals.wall_ms")?;
    let luts = totals
        .get("luts")
        .and_then(Json::as_num)
        .ok_or("missing totals.luts")? as u64;
    let recorded = recorded_at.map_or("null".to_owned(), |t| t.to_string());
    Ok(format!(
        "{{\"schema\": \"{TRAJ_SCHEMA}\", \"label\": \"{}\", \"recorded_at\": {recorded}, \
         \"run\": \"{}\", \"k\": {k}, \"threads\": {threads}, \"circuits\": {circuits}, \
         \"total_wall_ms\": {wall_ms:.3}, \"total_luts\": {luts}}}",
        json::escape(label),
        json::escape(name)
    ))
}

/// Validates an entire trajectory file: every non-empty line must be a
/// JSON object carrying the [`TRAJ_SCHEMA`] tag, a label, and totals.
///
/// # Errors
///
/// Returns `line number: problem` for the first bad line.
pub fn validate_trajectory(text: &str) -> Result<usize, String> {
    let mut points = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != TRAJ_SCHEMA {
            return Err(format!(
                "line {}: schema \"{schema}\" != {TRAJ_SCHEMA}",
                i + 1
            ));
        }
        for key in ["label", "total_wall_ms", "total_luts", "threads"] {
            if doc.get(key).is_none() {
                return Err(format!("line {}: missing {key}", i + 1));
            }
        }
        points += 1;
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal v3-shaped bench document with one circuit and one phase.
    fn bench_doc(wall_ms: f64, phase_self_us: u64) -> String {
        format!(
            "{{\n  \"schema\": \"hyde-bench-v3\",\n  \"name\": \"fixture\",\n  \"k\": 5,\n  \
             \"threads\": 1,\n  \"circuits\": [\n    {{\"name\": \"apex6\", \"inputs\": 135, \
             \"outputs\": 99, \"wall_ms\": {wall_ms}, \"luts\": 186, \"depth\": 4, \
             \"bdd_nodes\": 100}}\n  ],\n  \"totals\": {{\"wall_ms\": {wall_ms}, \"luts\": 186, \
             \"bdd_nodes\": 100}},\n  \"obs\": {{\"wall_us\": 1000, \"threads_observed\": 1, \
             \"dropped_events\": 0, \"unclosed_spans\": 0, \"phases\": [\n    {{\"name\": \
             \"varpart.floor\", \"count\": 3, \"total_us\": {t}, \"self_us\": {phase_self_us}}}\n  ], \
             \"counters\": [], \"hists\": []}}\n}}\n",
            t = phase_self_us + 10
        )
    }

    #[test]
    fn seeded_2x_phase_slowdown_is_detected_and_attributed() {
        let old = bench_doc(10.0, 40_000);
        let new = bench_doc(25.0, 80_000); // 2.5x wall, 2x phase self time
        let d = diff(&old, &new).expect("diff runs");
        assert!(d.regressed(), "gate must fire:\n{}", d.render());
        let msg = &d.regressions[0];
        assert!(msg.contains("apex6"), "{msg}");
        assert!(msg.contains("varpart.floor"), "names the phase: {msg}");
        assert!(msg.contains("2.00x"), "phase ratio shown: {msg}");
    }

    #[test]
    fn within_threshold_passes() {
        let old = bench_doc(10.0, 40_000);
        let new = bench_doc(11.5, 42_000); // 1.15x — inside 1.3x
        let d = diff(&old, &new).expect("diff runs");
        assert!(!d.regressed(), "{}", d.render());
        assert!(d.render().contains("gate: ok"));
        assert_eq!(d.circuits.len(), 1);
        assert_eq!(d.phases.len(), 1);
    }

    #[test]
    fn slack_protects_micro_circuits() {
        let old = bench_doc(0.1, 100);
        let new = bench_doc(1.5, 100); // 15x but only +1.4ms
        let d = diff(&old, &new).expect("diff runs");
        assert!(!d.regressed(), "slack must absorb micro noise");
    }

    #[test]
    fn trace_inputs_replay_self_times() {
        let trace = r#"{"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "outer"},
            {"ph": "B", "pid": 1, "tid": 0, "ts": 100.0, "name": "inner"},
            {"ph": "E", "pid": 1, "tid": 0, "ts": 400.0, "name": "inner"},
            {"ph": "E", "pid": 1, "tid": 0, "ts": 1000.0, "name": "outer"}
        ]}"#;
        let d = diff(trace, trace).expect("trace diff runs");
        assert!(!d.regressed());
        let outer = d.phases.iter().find(|p| p.name == "outer").unwrap();
        assert_eq!(outer.old_self_us, 700);
        let inner = d.phases.iter().find(|p| p.name == "inner").unwrap();
        assert_eq!(inner.new_self_us, 300);
    }

    #[test]
    fn rejects_inputs_without_circuits_or_events() {
        assert!(diff("{}", "{}").is_err());
        assert!(diff("not json", "{}").is_err());
    }

    #[test]
    fn trajectory_line_round_trips_through_validation() {
        let line = trajectory_line("pr-9", &bench_doc(10.0, 100), Some(1_754_000_000))
            .expect("line builds");
        assert!(line.contains("\"schema\": \"hyde-traj-v1\""));
        assert!(line.contains("\"total_wall_ms\": 10.000"));
        let seeded = format!(
            "{line}\n{}\n",
            trajectory_line("seed", &bench_doc(5.0, 50), None).unwrap()
        );
        assert_eq!(validate_trajectory(&seeded), Ok(2));
        assert!(validate_trajectory("{\"schema\": \"wrong\"}").is_err());
        assert!(validate_trajectory("garbage").is_err());
    }
}
