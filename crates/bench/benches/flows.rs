//! Benchmarks for the end-to-end flows behind Tables 1 and 2
//! (experiments T1/T2, timed on representative circuits).
//!
//! Criterion is unavailable in the offline build environment, so this is a
//! plain `harness = false` timing loop reporting mean wall-clock time per
//! mapped circuit.

use hyde_map::flow::{FlowKind, MappingFlow};
use std::time::Instant;

fn time_flow(group: &str, label: &str, circuit: &hyde_circuits::Circuit, kind: FlowKind) {
    let flow = MappingFlow::new(5, kind);
    let warm = flow
        .map_outputs(&circuit.name, &circuit.outputs)
        .expect("suite maps cleanly");
    let iters = 3u32;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(
            flow.map_outputs(&circuit.name, &circuit.outputs)
                .expect("suite maps cleanly")
                .clbs,
        );
    }
    let per = start.elapsed() / iters;
    let clbs = warm.clbs.map_or_else(|| "-".to_string(), |c| c.to_string());
    println!(
        "{group}/{label}/{name:<8} {per:>12.2?}/map  ({luts} LUTs, {clbs} CLBs)",
        name = circuit.name,
        luts = warm.luts,
    );
}

fn bench_table1_flows() {
    let circuits = [
        hyde_circuits::rd73(),
        hyde_circuits::sym9(),
        hyde_circuits::z4ml(),
    ];
    for circuit in &circuits {
        for (label, kind) in [
            ("imodec", FlowKind::imodec_like()),
            ("fgsyn", FlowKind::fgsyn_like()),
            ("hyde", FlowKind::hyde(0xDA98)),
        ] {
            time_flow("table1_xc3000", label, circuit, kind);
        }
    }
}

fn bench_table2_flows() {
    let circuit = hyde_circuits::rd84();
    for (label, kind) in [
        (
            "no_share",
            FlowKind::PerOutput {
                encoder: hyde_core::encoding::EncoderKind::Lexicographic,
            },
        ),
        ("shared", FlowKind::imodec_like()),
        ("hyde", FlowKind::hyde(0xDA98)),
    ] {
        time_flow("table2_luts", label, &circuit, kind);
    }
}

fn main() {
    println!("end-to-end flow benchmarks (manual harness)");
    bench_table1_flows();
    bench_table2_flows();
}
