//! Criterion benchmarks for the end-to-end flows behind Tables 1 and 2
//! (experiments T1/T2, timed on representative circuits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyde_map::flow::{FlowKind, MappingFlow};

fn bench_table1_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_xc3000");
    group.sample_size(10);
    let circuits = [hyde_circuits::rd73(), hyde_circuits::sym9(), hyde_circuits::z4ml()];
    for circuit in &circuits {
        for (label, kind) in [
            ("imodec", FlowKind::imodec_like()),
            ("fgsyn", FlowKind::fgsyn_like()),
            ("hyde", FlowKind::hyde(0xDA98)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, &circuit.name),
                circuit,
                |b, c| {
                    let flow = MappingFlow::new(5, kind.clone());
                    b.iter(|| {
                        flow.map_outputs(&c.name, &c.outputs)
                            .expect("suite maps cleanly")
                            .clbs
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_table2_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_luts");
    group.sample_size(10);
    let circuit = hyde_circuits::rd84();
    for (label, kind) in [
        (
            "no_share",
            FlowKind::PerOutput {
                encoder: hyde_core::encoding::EncoderKind::Lexicographic,
            },
        ),
        ("shared", FlowKind::imodec_like()),
        ("hyde", FlowKind::hyde(0xDA98)),
    ] {
        group.bench_with_input(BenchmarkId::new(label, &circuit.name), &circuit, |b, c| {
            let flow = MappingFlow::new(5, kind.clone());
            b.iter(|| {
                flow.map_outputs(&c.name, &c.outputs)
                    .expect("suite maps cleanly")
                    .luts
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_flows, bench_table2_flows);
criterion_main!(benches);
