//! Criterion micro-benchmarks for the algorithmic kernels (experiment P1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyde_core::chart::class_count;
use hyde_core::encoding::{combine_column_sets, combine_row_sets};
use hyde_core::partition::example_3_2_partitions;
use hyde_core::varpart::VariablePartitioner;
use hyde_logic::{SopCover, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bdd_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd");
    for vars in [10usize, 14] {
        group.bench_with_input(BenchmarkId::new("build_parity", vars), &vars, |b, &v| {
            b.iter(|| {
                let mut bdd = hyde_bdd::Bdd::new(v);
                let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
                bdd.node_count(f)
            })
        });
    }
    group.bench_function("cut_classes_parity16", |b| {
        let mut bdd = hyde_bdd::Bdd::new(16);
        let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
        b.iter(|| bdd.compatible_class_count(f, &[0, 3, 5, 7, 9]))
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [50usize, 150] {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.08) {
                    edges.push((u, v));
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("blossom", n), &n, |b, &n| {
            b.iter(|| hyde_graph::maximum_matching(n, &edges))
        });
    }
    group.bench_function("b_matching_column_graph", |b| {
        let left_cap = vec![1i64; 40];
        let right_cap = vec![4i64; 10];
        let mut rng = StdRng::seed_from_u64(2);
        let mut edges = Vec::new();
        for l in 0..40 {
            for r in 0..10 {
                if rng.gen_bool(0.3) {
                    edges.push((l, r, rng.gen_range(1..12i64)));
                }
            }
        }
        b.iter(|| hyde_graph::max_weight_b_matching(&left_cap, &right_cap, &edges))
    });
    group.finish();
}

fn bench_clique_partition(c: &mut Criterion) {
    c.bench_function("clique_partition_32", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 32;
        let mut adj = vec![vec![false; n]; n];
        for u in 0..n {
            for v in (u + 1)..n {
                let e = rng.gen_bool(0.5);
                adj[u][v] = e;
                adj[v][u] = e;
            }
        }
        b.iter(|| hyde_graph::partition_into_cliques(n, |u, v| adj[u][v]))
    });
}

fn bench_encoding_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    let parts = example_3_2_partitions();
    group.bench_function("column_sets_example_3_2", |b| {
        b.iter(|| combine_column_sets(&parts, 4))
    });
    group.bench_function("row_sets_example_3_2", |b| {
        let col_sets = combine_column_sets(&parts, 4);
        b.iter(|| combine_row_sets(&parts, &col_sets, 4, 4))
    });
    group.finish();
}

fn bench_chart_and_varpart(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomp");
    let mut rng = StdRng::seed_from_u64(4);
    let f10 = TruthTable::random(10, &mut rng);
    group.bench_function("class_count_10v_bound5", |b| {
        b.iter(|| class_count(&f10, &[0, 2, 4, 6, 8]).expect("valid"))
    });
    group.bench_function("varpart_10v_k5", |b| {
        let vp = VariablePartitioner::default();
        b.iter(|| vp.best_bound_set(&f10, 5).expect("valid"))
    });
    let f8 = TruthTable::random(8, &mut rng);
    group.bench_function("isop_8v", |b| b.iter(|| SopCover::isop(&f8).cube_count()));
    group.finish();
}

criterion_group!(
    benches,
    bench_bdd_ops,
    bench_matching,
    bench_clique_partition,
    bench_encoding_steps,
    bench_chart_and_varpart
);
criterion_main!(benches);
