//! Micro-benchmarks for the algorithmic kernels (experiment P1).
//!
//! Criterion is unavailable in the offline build environment, so this is a
//! plain `harness = false` timing loop: each kernel runs a warm-up pass and
//! then a fixed iteration count, reporting mean wall-clock time per
//! iteration.

use hyde_core::chart::class_count;
use hyde_core::encoding::{combine_column_sets, combine_row_sets};
use hyde_core::partition::example_3_2_partitions;
use hyde_core::varpart::VariablePartitioner;
use hyde_logic::{SopCover, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn bench<F: FnMut() -> R, R>(name: &str, iters: u32, mut f: F) {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = start.elapsed() / iters;
    println!("{name:<36} {per:>12.2?}/iter  ({iters} iters)");
}

fn bench_bdd_ops() {
    for vars in [10usize, 14] {
        bench(&format!("bdd/build_parity/{vars}"), 20, || {
            let mut bdd = hyde_bdd::Bdd::new(vars);
            let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
            bdd.node_count(f)
        });
    }
    let mut bdd = hyde_bdd::Bdd::new(16);
    let f = bdd.from_fn(|m| m.count_ones() % 2 == 1);
    bench("bdd/cut_classes_parity16", 20, || {
        bdd.compatible_class_count(f, &[0, 3, 5, 7, 9])
    });
}

fn bench_matching() {
    let mut rng = StdRng::seed_from_u64(1);
    for n in [50usize, 150] {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.08) {
                    edges.push((u, v));
                }
            }
        }
        bench(&format!("matching/blossom/{n}"), 10, || {
            hyde_graph::maximum_matching(n, &edges)
        });
    }
    let left_cap = vec![1i64; 40];
    let right_cap = vec![4i64; 10];
    let mut rng = StdRng::seed_from_u64(2);
    let mut edges = Vec::new();
    for l in 0..40 {
        for r in 0..10 {
            if rng.gen_bool(0.3) {
                edges.push((l, r, rng.gen_range(1..12i64)));
            }
        }
    }
    bench("matching/b_matching_column_graph", 20, || {
        hyde_graph::max_weight_b_matching(&left_cap, &right_cap, &edges)
    });
}

fn bench_clique_partition() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 32;
    let mut adj = vec![vec![false; n]; n];
    for (u, v) in (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v))) {
        let e = rng.gen_bool(0.5);
        adj[u][v] = e;
        adj[v][u] = e;
    }
    bench("clique_partition_32", 50, || {
        hyde_graph::partition_into_cliques(n, |u, v| adj[u][v])
    });
}

fn bench_encoding_steps() {
    let parts = example_3_2_partitions();
    bench("encoding/column_sets_example_3_2", 100, || {
        combine_column_sets(&parts, 4)
    });
    let col_sets = combine_column_sets(&parts, 4);
    bench("encoding/row_sets_example_3_2", 100, || {
        combine_row_sets(&parts, &col_sets, 4, 4)
    });
}

fn bench_chart_and_varpart() {
    let mut rng = StdRng::seed_from_u64(4);
    let f10 = TruthTable::random(10, &mut rng);
    bench("decomp/class_count_10v_bound5", 50, || {
        class_count(&f10, &[0, 2, 4, 6, 8]).expect("valid")
    });
    let vp = VariablePartitioner::default();
    bench("decomp/varpart_10v_k5", 5, || {
        vp.best_bound_set(&f10, 5).expect("valid")
    });
    let f8 = TruthTable::random(8, &mut rng);
    bench("decomp/isop_8v", 50, || SopCover::isop(&f8).cube_count());
}

fn main() {
    println!("kernel micro-benchmarks (manual harness)");
    bench_bdd_ops();
    bench_matching();
    bench_clique_partition();
    bench_encoding_steps();
    bench_chart_and_varpart();
}
