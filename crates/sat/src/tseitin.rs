//! Tseitin encoding of networks, truth tables and BDDs into CNF.
//!
//! The encoder hash-conses the gate frontier: two calls that encode the
//! same function over the same fanin literals return the *same* output
//! literal, so structurally shared logic (two copies of a network, a
//! spec re-encoded per output, repeated BDD subgraphs) costs nothing
//! extra. LUT-style nodes are encoded from ISOP covers of `f` and `!f`
//! (one clause per cube); BDD nodes are encoded as ITE gates (four
//! clauses per node).

use crate::cnf::Lit;
use crate::solver::Solver;
use hyde_bdd::{Bdd, Ref};
use hyde_logic::network::project_to_support;
use hyde_logic::{Literal, Network, NodeId, SopCover, TruthTable};
use std::collections::HashMap;

#[derive(PartialEq, Eq, Hash)]
enum GateKey {
    /// `(vars, table words, fanin literals)` of a LUT gate.
    Table(usize, Vec<u64>, Vec<Lit>),
    /// `(selector, low, high)` of a BDD ITE gate.
    Ite(Lit, Lit, Lit),
    /// Symmetric XOR gate key (literals sorted).
    Xor(Lit, Lit),
}

/// CNF builder with structural hashing on top of a [`Solver`].
///
/// # Example
///
/// ```
/// use hyde_sat::{Encoder, Outcome};
/// use hyde_logic::TruthTable;
///
/// let mut enc = Encoder::new();
/// let ins = enc.fresh_inputs(2);
/// let and = enc.encode_table(&TruthTable::from_fn(2, |m| m == 0b11), &ins);
/// let m = enc.xor(and, ins[0]); // AND(a,b) != a  <=>  a & !b
/// assert_eq!(enc.solver_mut().solve(&[m]), Outcome::Sat);
/// ```
pub struct Encoder {
    solver: Solver,
    truth: Lit,
    cache: HashMap<GateKey, Lit>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an encoder with an embedded fresh solver.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let truth = Lit::pos(solver.new_var());
        solver.add_clause(&[truth]);
        Encoder {
            solver,
            truth,
            cache: HashMap::new(),
        }
    }

    /// The literal that is constant true.
    pub fn lit_true(&self) -> Lit {
        self.truth
    }

    /// The literal that is constant false.
    pub fn lit_false(&self) -> Lit {
        !self.truth
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn fresh_lit(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Allocates `n` fresh input literals.
    pub fn fresh_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.fresh_lit()).collect()
    }

    /// Access to the underlying solver (for solving and stats).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Read-only access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Asserts a literal as a unit clause.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause(&[l]);
    }

    /// Asserts `a <-> b`.
    pub fn assert_equiv(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause(&[!a, b]);
        self.solver.add_clause(&[a, !b]);
    }

    /// Returns a literal equal to `a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return self.lit_false();
        }
        if a == !b {
            return self.lit_true();
        }
        if a == self.lit_false() {
            return b;
        }
        if a == self.lit_true() {
            return !b;
        }
        if b == self.lit_false() {
            return a;
        }
        if b == self.lit_true() {
            return !a;
        }
        let key = GateKey::Xor(a.min(b), a.max(b));
        if let Some(&y) = self.cache.get(&key) {
            return y;
        }
        let y = self.fresh_lit();
        self.solver.add_clause(&[!y, a, b]);
        self.solver.add_clause(&[!y, !a, !b]);
        self.solver.add_clause(&[y, !a, b]);
        self.solver.add_clause(&[y, a, !b]);
        self.cache.insert(key, y);
        y
    }

    /// Returns a literal equal to `f(inputs)`, encoding the truth table
    /// as CNF clauses over the ISOP covers of `f` and `!f`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != f.vars()`.
    pub fn encode_table(&mut self, f: &TruthTable, inputs: &[Lit]) -> Lit {
        assert_eq!(inputs.len(), f.vars(), "fanin/arity mismatch");
        // Project away vacuous variables so structurally different
        // fanin lists hash to the same gate when the function agrees.
        let support = f.support();
        if support.is_empty() {
            return if f.is_const() == Some(true) {
                self.lit_true()
            } else {
                self.lit_false()
            };
        }
        let rf = if support.len() == f.vars() {
            f.clone()
        } else {
            project_to_support(f, &support)
        };
        let lits: Vec<Lit> = support.iter().map(|&v| inputs[v]).collect();
        if rf.vars() == 1 {
            // Only non-constant single-variable functions: buffer / not.
            return if rf.eval(1) { lits[0] } else { !lits[0] };
        }
        let key = GateKey::Table(rf.vars(), rf.as_words().to_vec(), lits.clone());
        if let Some(&y) = self.cache.get(&key) {
            return y;
        }
        let y = self.fresh_lit();
        let (on, off) = SopCover::cnf_covers(&rf);
        let mut clause = Vec::with_capacity(rf.vars() + 1);
        for (cover, out) in [(&on, y), (&off, !y)] {
            for cube in cover.cubes() {
                clause.clear();
                clause.push(out);
                for (v, &l) in lits.iter().enumerate() {
                    match cube.literal(v) {
                        Literal::DontCare => {}
                        Literal::Positive => clause.push(!l),
                        Literal::Negative => clause.push(l),
                    }
                }
                self.solver.add_clause(&clause);
            }
        }
        // The complement costs nothing extra: reuse the same gate.
        let nf = !&rf;
        let nkey = GateKey::Table(nf.vars(), nf.as_words().to_vec(), lits);
        self.cache.insert(key, y);
        self.cache.insert(nkey, !y);
        y
    }

    /// Encodes every node of an acyclic network, returning the literal
    /// of each node. `pi_lits` supplies the literals of the primary
    /// inputs in `net.inputs()` order.
    ///
    /// # Panics
    ///
    /// Panics if the network is cyclic or `pi_lits` has the wrong length.
    pub fn encode_network(&mut self, net: &Network, pi_lits: &[Lit]) -> HashMap<NodeId, Lit> {
        assert_eq!(pi_lits.len(), net.inputs().len(), "PI literal mismatch");
        let mut map: HashMap<NodeId, Lit> = HashMap::new();
        for (&id, &l) in net.inputs().iter().zip(pi_lits) {
            map.insert(id, l);
        }
        let order = net.topo_order().expect("cyclic network cannot be encoded");
        for id in order {
            if map.contains_key(&id) {
                continue;
            }
            let fanin_lits: Vec<Lit> = net.fanins(id).iter().map(|f| map[f]).collect();
            let y = self.encode_table(net.function(id), &fanin_lits);
            map.insert(id, y);
        }
        map
    }

    /// Encodes a BDD function as CNF, returning its output literal.
    /// `var_lits[i]` is the literal standing for BDD variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if a BDD variable has no literal in `var_lits`.
    pub fn encode_bdd(&mut self, bdd: &Bdd, f: Ref, var_lits: &[Lit]) -> Lit {
        let mut memo: HashMap<Ref, Lit> = HashMap::new();
        self.encode_bdd_rec(bdd, f, var_lits, &mut memo)
    }

    fn encode_bdd_rec(
        &mut self,
        bdd: &Bdd,
        f: Ref,
        var_lits: &[Lit],
        memo: &mut HashMap<Ref, Lit>,
    ) -> Lit {
        if f == Ref::TRUE {
            return self.lit_true();
        }
        if f == Ref::FALSE {
            return self.lit_false();
        }
        if let Some(&y) = memo.get(&f) {
            return y;
        }
        let (v, lo, hi) = bdd.node_parts(f);
        let l = self.encode_bdd_rec(bdd, lo, var_lits, memo);
        let h = self.encode_bdd_rec(bdd, hi, var_lits, memo);
        let x = var_lits[v];
        let y = self.ite(x, h, l);
        memo.insert(f, y);
        y
    }

    /// Returns a literal equal to `if s then t else e`.
    pub fn ite(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        if t == self.lit_true() && e == self.lit_false() {
            return s;
        }
        if t == self.lit_false() && e == self.lit_true() {
            return !s;
        }
        if t == !e {
            // s ? t : !t  ==  !(s xor t) ... == xnor(s, t)
            return !self.xor(s, t);
        }
        let key = GateKey::Ite(s, t, e);
        if let Some(&y) = self.cache.get(&key) {
            return y;
        }
        let y = self.fresh_lit();
        self.solver.add_clause(&[!s, !t, y]);
        self.solver.add_clause(&[!s, t, !y]);
        self.solver.add_clause(&[s, !e, y]);
        self.solver.add_clause(&[s, e, !y]);
        self.cache.insert(key, y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Outcome;

    /// Checks `lit == f(inputs)` for every minterm by assumption solving.
    fn assert_encodes(enc: &mut Encoder, lit: Lit, f: &TruthTable, inputs: &[Lit]) {
        for m in 0..f.num_minterms() as u32 {
            let mut assumps: Vec<Lit> = inputs
                .iter()
                .enumerate()
                .map(|(i, &l)| if m >> i & 1 == 1 { l } else { !l })
                .collect();
            assumps.push(if f.eval(m) { !lit } else { lit });
            assert_eq!(
                enc.solver_mut().solve(&assumps),
                Outcome::Unsat,
                "minterm {m} disagrees"
            );
        }
    }

    #[test]
    fn table_encoding_matches_truth_table() {
        let mut enc = Encoder::new();
        let ins = enc.fresh_inputs(3);
        for pattern in [0b1110_1000u32, 0b1001_0110, 0b0111_1110, 0b0000_0001] {
            let f = TruthTable::from_fn(3, |m| pattern >> m & 1 == 1);
            let y = enc.encode_table(&f, &ins);
            assert_encodes(&mut enc, y, &f, &ins);
        }
    }

    #[test]
    fn structural_hashing_reuses_gates() {
        let mut enc = Encoder::new();
        let ins = enc.fresh_inputs(2);
        let f = TruthTable::from_fn(2, |m| m == 0b11);
        let a = enc.encode_table(&f, &ins);
        let b = enc.encode_table(&f, &ins);
        assert_eq!(a, b);
        let c = enc.encode_table(&!&f, &ins);
        assert_eq!(c, !a);
    }

    #[test]
    fn vacuous_variables_hash_to_same_gate() {
        let mut enc = Encoder::new();
        let ins = enc.fresh_inputs(3);
        // x0 & x2, once with a vacuous middle variable and once densely.
        let sparse = TruthTable::from_fn(3, |m| m & 0b101 == 0b101);
        let dense = TruthTable::from_fn(2, |m| m == 0b11);
        let a = enc.encode_table(&sparse, &ins);
        let b = enc.encode_table(&dense, &[ins[0], ins[2]]);
        assert_eq!(a, b);
    }

    #[test]
    fn constants_and_buffers_use_no_new_vars() {
        let mut enc = Encoder::new();
        let ins = enc.fresh_inputs(1);
        let before = enc.solver().num_vars();
        let t = enc.encode_table(&TruthTable::one(1), &ins);
        let f = enc.encode_table(&TruthTable::zero(1), &ins);
        let buf = enc.encode_table(&TruthTable::var(1, 0), &ins);
        let inv = enc.encode_table(&!&TruthTable::var(1, 0), &ins);
        assert_eq!(t, enc.lit_true());
        assert_eq!(f, enc.lit_false());
        assert_eq!(buf, ins[0]);
        assert_eq!(inv, !ins[0]);
        assert_eq!(enc.solver().num_vars(), before);
    }

    #[test]
    fn bdd_encoding_matches_function() {
        let mut enc = Encoder::new();
        let ins = enc.fresh_inputs(4);
        let f = TruthTable::from_fn(4, |m| (m.count_ones() % 3) == 1);
        let mut bdd = Bdd::new(4);
        let r = bdd.from_fn(|m| f.eval(m));
        let y = enc.encode_bdd(&bdd, r, &ins);
        assert_encodes(&mut enc, y, &f, &ins);
    }

    #[test]
    fn network_encoding_matches_simulation() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let and = net
            .add_node("and", vec![a, b], TruthTable::from_fn(2, |m| m == 3))
            .unwrap();
        let f = net
            .add_node(
                "f",
                vec![and, c],
                TruthTable::from_fn(2, |m| m == 1 || m == 2),
            )
            .unwrap();
        net.mark_output("f", f);
        let mut enc = Encoder::new();
        let ins = enc.fresh_inputs(3);
        let map = enc.encode_network(&net, &ins);
        let (spec, support) = net.output_function(0);
        assert_eq!(support, vec![0, 1, 2]);
        assert_encodes(&mut enc, map[&f], &spec, &ins);
    }
}
