//! Conflict-driven clause-learning SAT solver.
//!
//! A compact MiniSat-style core: two-watched-literal propagation,
//! first-UIP learning, VSIDS-lite activities, Luby restarts, and
//! assumption-based solving with failed-assumption extraction. There is
//! no clause deletion — the proofs HYDE runs are small enough that the
//! learned database stays modest, and keeping every learned clause makes
//! incremental re-solving under different assumptions cheaper.

use crate::cnf::Lit;
use std::time::{Duration, Instant};

/// Result of a (budgeted) solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The clauses (under the given assumptions) are unsatisfiable; the
    /// failed assumptions are available via [`Solver::unsat_core`].
    Unsat,
    /// The conflict or time budget ran out before an answer was proved.
    Unknown,
}

/// Search-effort counters, cumulative over the solver's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Number of variables allocated.
    pub vars: usize,
    /// Number of problem clauses added (after root-level simplification).
    pub clauses: usize,
    /// Number of learned clauses currently kept.
    pub learned: usize,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// Effort bound for one solve call.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum number of conflicts before giving up with
    /// [`Outcome::Unknown`].
    pub max_conflicts: u64,
    /// Wall-clock limit for the call.
    pub max_time: Duration,
}

impl Budget {
    /// A practically unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            max_conflicts: u64::MAX,
            max_time: Duration::from_secs(u64::MAX / 4),
        }
    }

    /// A budget with the given conflict cap and a generous time cap.
    pub fn conflicts(max_conflicts: u64) -> Self {
        Budget {
            max_conflicts,
            max_time: Duration::from_secs(3600),
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_conflicts: 200_000,
            max_time: Duration::from_secs(10),
        }
    }
}

impl From<&hyde_guard::Budget> for Budget {
    /// Projects the pipeline-wide [`hyde_guard::Budget`] onto the
    /// solver's per-call budget: `sat_conflicts` becomes the conflict
    /// cap and the remaining time until `deadline` (if any) becomes the
    /// time cap. Unset fields stay unlimited.
    fn from(b: &hyde_guard::Budget) -> Self {
        let unlimited = Budget::unlimited();
        Budget {
            max_conflicts: b.sat_conflicts.unwrap_or(unlimited.max_conflicts),
            max_time: b
                .deadline
                // sa:allow(SA002): converting a caller deadline into the
                // sanctioned time budget; affects only when we give up
                // (Outcome::Unknown), never which model is found.
                .map(|d| d.saturating_duration_since(Instant::now()))
                .unwrap_or(unlimited.max_time),
        }
    }
}

const UNASSIGNED: i8 = 0;
const NO_REASON: i32 = -1;
const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 256;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use hyde_sat::{Lit, Outcome, Solver};
///
/// let mut s = Solver::new();
/// let a = Lit::pos(s.new_var());
/// let b = Lit::pos(s.new_var());
/// s.add_clause(&[a, b]);
/// s.add_clause(&[!a, b]);
/// assert_eq!(s.solve(&[]), Outcome::Sat);
/// assert!(s.model_value(b.var()));
/// assert_eq!(s.solve(&[!b]), Outcome::Unsat);
/// assert_eq!(s.unsat_core(), &[!b]);
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.index()]` lists clauses to inspect when `lit`
    /// becomes true (they watch `!lit`).
    watches: Vec<Vec<u32>>,
    /// Per-variable truth value: `1` true, `-1` false, `0` unassigned.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<i32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    polarity: Vec<bool>,
    seen: Vec<bool>,
    core: Vec<Lit>,
    /// Snapshot of `assign` at the last [`Outcome::Sat`] answer; the
    /// search itself backtracks to the root so the solver stays
    /// incremental (more clauses/solves may follow).
    model: Vec<i8>,
    ok: bool,
    stats: Stats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            polarity: Vec::new(),
            seen: Vec::new(),
            core: Vec::new(),
            model: Vec::new(),
            ok: true,
            stats: Stats::default(),
        }
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.assign.len();
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.stats.vars = self.assign.len();
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Whether the clause set is still possibly satisfiable (false once
    /// a root-level contradiction has been derived).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var()];
        if l.is_neg() {
            -a
        } else {
            a
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. Must be called at decision level 0 (i.e. outside
    /// of `solve`). Returns `false` if the clause set became trivially
    /// unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if any literal's variable has not been allocated.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause during search");
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        for l in &c {
            assert!(l.var() < self.assign.len(), "literal {l} out of range");
        }
        c.sort_unstable();
        c.dedup();
        // Tautology or already-satisfied at root level.
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        if c.iter().any(|&l| self.value(l) == 1) {
            return true;
        }
        c.retain(|&l| self.value(l) != -1);
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(c, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learned: bool) -> usize {
        let ci = self.clauses.len();
        self.watches[(!lits[0]).index()].push(ci as u32);
        self.watches[(!lits[1]).index()].push(ci as u32);
        self.clauses.push(Clause { lits });
        if learned {
            self.stats.learned += 1;
        } else {
            self.stats.clauses += 1;
        }
        ci
    }

    fn enqueue(&mut self, l: Lit, reason: i32) {
        debug_assert_eq!(self.value(l), UNASSIGNED);
        self.assign[l.var()] = if l.is_neg() { -1 } else { 1 };
        self.level[l.var()] = self.decision_level() as u32;
        self.reason[l.var()] = reason;
        self.trail.push(l);
    }

    /// Runs unit propagation to fixpoint; returns a conflicting clause
    /// index if one is found.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let widx = p.index();
            let mut i = 0;
            while i < self.watches[widx].len() {
                let ci = self.watches[widx][i] as usize;
                // Normalize so the falsified watched literal sits at 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == 1 {
                    i += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value(self.clauses[ci].lits[k]) != -1 {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = (!self.clauses[ci].lits[1]).index();
                        self.watches[widx].swap_remove(i);
                        self.watches[new_watch].push(ci as u32);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if self.value(first) == -1 {
                    // Conflict: flush the queue so the caller restarts
                    // propagation cleanly after backtracking.
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, ci as i32);
                i += 1;
            }
        }
        None
    }

    fn bump(&mut self, var: usize) {
        self.activity[var] += self.var_inc;
        if self.activity[var] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a /= RESCALE_LIMIT;
            }
            self.var_inc /= RESCALE_LIMIT;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learned clause (with the
    /// asserting literal at index 0 and a highest-level literal at index
    /// 1) and the backjump level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut idx = self.trail.len();
        let mut ci = conflict;
        let mut skip_head = false;
        loop {
            let start = usize::from(skip_head);
            for k in start..self.clauses[ci].lits.len() {
                let q = self.clauses[ci].lits[k];
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] as usize == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the next marked literal on the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var()] {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen[p.var()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p;
                break;
            }
            ci = self.reason[p.var()] as usize;
            skip_head = true; // reason clause holds p at index 0
        }
        for l in &learnt[1..] {
            self.seen[l.var()] = false;
        }
        let mut back = 0usize;
        if learnt.len() > 1 {
            let mut max_at = 1;
            for k in 2..learnt.len() {
                if self.level[learnt[k].var()] > self.level[learnt[max_at].var()] {
                    max_at = k;
                }
            }
            learnt.swap(1, max_at);
            back = self.level[learnt[1].var()] as usize;
        }
        (learnt, back)
    }

    /// Computes the subset of assumptions responsible for forcing
    /// `failed` false (the failed-assumption / UNSAT-core set).
    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[failed.var()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            let r = self.reason[v];
            if r == NO_REASON {
                // Decisions below the first conflict are assumptions.
                core.push(l);
            } else {
                for &q in &self.clauses[r as usize].lits[1..] {
                    if self.level[q.var()] > 0 {
                        self.seen[q.var()] = true;
                    }
                }
            }
        }
        self.seen[failed.var()] = false;
        core
    }

    fn backtrack(&mut self, to_level: usize) {
        if self.decision_level() <= to_level {
            return;
        }
        let bound = self.trail_lim[to_level];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail bounded below by lim");
            self.polarity[l.var()] = !l.is_neg();
            self.assign[l.var()] = UNASSIGNED;
            self.reason[l.var()] = NO_REASON;
        }
        self.trail_lim.truncate(to_level);
        self.qhead = self.qhead.min(self.trail.len());
    }

    fn pick_branch_var(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (v, &a) in self.assign.iter().enumerate() {
            if a != UNASSIGNED {
                continue;
            }
            match best {
                Some(b) if self.activity[b] >= self.activity[v] => {}
                _ => best = Some(v),
            }
        }
        best
    }

    /// Solves under the given assumptions with an unlimited budget.
    pub fn solve(&mut self, assumptions: &[Lit]) -> Outcome {
        self.solve_budgeted(assumptions, &Budget::unlimited())
    }

    /// Solves under the given assumptions, giving up with
    /// [`Outcome::Unknown`] once the budget is exhausted.
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], budget: &Budget) -> Outcome {
        let _obs = hyde_obs::span!("sat.solve");
        let before = self.stats;
        let out = self.solve_budgeted_inner(assumptions, budget);
        if hyde_obs::enabled() {
            hyde_obs::counter("sat.solves", 1);
            hyde_obs::counter("sat.vars", self.stats.vars as u64);
            hyde_obs::counter("sat.clauses", self.stats.clauses as u64);
            hyde_obs::counter("sat.conflicts", self.stats.conflicts - before.conflicts);
            hyde_obs::counter("sat.decisions", self.stats.decisions - before.decisions);
            hyde_obs::counter(
                "sat.propagations",
                self.stats.propagations - before.propagations,
            );
            hyde_obs::counter("sat.restarts", self.stats.restarts - before.restarts);
        }
        out
    }

    /// Solves under the pipeline-wide [`hyde_guard::Budget`], mapping a
    /// budget-exhausted [`Outcome::Unknown`] to a typed
    /// [`hyde_guard::OutOfBudget`] so callers on the fallback ladder can
    /// step down a rung instead of interpreting `Unknown` themselves.
    pub fn solve_guarded(
        &mut self,
        assumptions: &[Lit],
        budget: &hyde_guard::Budget,
    ) -> Result<Outcome, hyde_guard::OutOfBudget> {
        match self.solve_budgeted(assumptions, &Budget::from(budget)) {
            Outcome::Unknown => Err(hyde_guard::OutOfBudget::new(
                hyde_guard::Resource::SatConflicts,
                budget.sat_conflicts.unwrap_or(0),
            )),
            out => Ok(out),
        }
    }

    fn solve_budgeted_inner(&mut self, assumptions: &[Lit], budget: &Budget) -> Outcome {
        self.core.clear();
        if !self.ok {
            return Outcome::Unsat;
        }
        // sa:allow(SA002): the time budget decides only whether we stop
        // with Outcome::Unknown; it cannot alter a Sat/Unsat answer.
        let start = Instant::now();
        let start_conflicts = self.stats.conflicts;
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return Outcome::Unsat;
        }
        let mut restart_seq = 1u64;
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(ci) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Outcome::Unsat;
                }
                let (learnt, back) = self.analyze(ci);
                self.backtrack(back);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let asserting = learnt[0];
                    let ci = self.attach(learnt, true);
                    self.enqueue(asserting, ci as i32);
                }
                self.decay();
                if self.stats.conflicts - start_conflicts >= budget.max_conflicts
                    || start.elapsed() >= budget.max_time
                {
                    self.backtrack(0);
                    return Outcome::Unknown;
                }
                if conflicts_since_restart >= luby(restart_seq) * RESTART_BASE {
                    restart_seq += 1;
                    conflicts_since_restart = 0;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                }
            } else if self.decision_level() < assumptions.len() {
                let a = assumptions[self.decision_level()];
                assert!(a.var() < self.assign.len(), "assumption {a} out of range");
                match self.value(a) {
                    1 => self.trail_lim.push(self.trail.len()),
                    -1 => {
                        self.core = self.analyze_final(a);
                        self.backtrack(0);
                        return Outcome::Unsat;
                    }
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, NO_REASON);
                    }
                }
            } else if let Some(v) = self.pick_branch_var() {
                if start.elapsed() >= budget.max_time {
                    self.backtrack(0);
                    return Outcome::Unknown;
                }
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(Lit::new(v, !self.polarity[v]), NO_REASON);
            } else {
                self.model.clone_from(&self.assign);
                self.backtrack(0);
                return Outcome::Sat;
            }
        }
    }

    /// The truth value of `var` in the model found by the last
    /// [`Outcome::Sat`] answer.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range; the value is only meaningful
    /// directly after a `Sat` outcome (before further clauses/solves).
    pub fn model_value(&self, var: usize) -> bool {
        self.model[var] == 1
    }

    /// After an [`Outcome::Unsat`] answer under assumptions: the subset
    /// of assumption literals that together are contradictory. Empty if
    /// the clause set is unsatisfiable regardless of assumptions.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }
}

/// The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut i: u64) -> u64 {
    // 1-based: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... If i+1 is a power of
    // two then i = 2^k - 1 ends a block and the value is 2^(k-1);
    // otherwise strip the largest complete block below i and recurse.
    loop {
        if (i + 1).is_power_of_two() {
            return (i + 1) >> 1;
        }
        let k = 63 - (i + 1).leading_zeros();
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, neg: bool) -> Lit {
        Lit::new(v, neg)
    }

    fn fresh(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn luby_prefix_matches_reference() {
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn unit_propagation_chains_to_fixpoint() {
        // a, a->b, b->c forces c without any decision.
        let mut s = Solver::new();
        let v = fresh(&mut s, 3);
        s.add_clause(&[v[0]]);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        assert_eq!(s.solve(&[]), Outcome::Sat);
        assert_eq!(s.stats().decisions, 0);
        assert!(s.model_value(v[2].var()));
    }

    #[test]
    fn root_contradiction_is_unsat() {
        let mut s = Solver::new();
        let v = fresh(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve(&[]), Outcome::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn conflict_analysis_learns_and_solves_xor_chain() {
        // x1 xor x2 xor x3 = 1 as CNF; satisfiable, needs real search.
        let mut s = Solver::new();
        let v = fresh(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.add_clause(&[v[0], !v[1], !v[2]]);
        s.add_clause(&[!v[0], v[1], !v[2]]);
        s.add_clause(&[!v[0], !v[1], v[2]]);
        assert_eq!(s.solve(&[]), Outcome::Sat);
        let parity = s.model_value(0) ^ s.model_value(1) ^ s.model_value(2);
        assert!(parity);
    }

    #[test]
    fn conflict_analysis_proves_pigeonhole_3_into_2() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes: UNSAT, and the
        // proof requires learning (no root-level contradiction exists).
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3).map(|_| fresh(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row);
        }
        for i in 0..3 {
            for k in (i + 1)..3 {
                for (a, b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[!*a, !*b]);
                }
            }
        }
        assert_eq!(s.solve(&[]), Outcome::Unsat);
        assert!(s.stats().conflicts > 0, "PHP needs conflict analysis");
    }

    #[test]
    fn assumptions_yield_minimal_failed_set() {
        // a & b -> bot, c free. Core must mention a and b only.
        let mut s = Solver::new();
        let v = fresh(&mut s, 3);
        s.add_clause(&[!v[0], !v[1]]);
        assert_eq!(s.solve(&[v[0], v[2], v[1]]), Outcome::Unsat);
        let mut core = s.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![v[0], v[1]]);
        // Still satisfiable under the remaining assumption alone.
        assert_eq!(s.solve(&[v[2]]), Outcome::Sat);
    }

    #[test]
    fn unsat_core_traces_through_propagation() {
        // Assumptions a, d; a -> b, b -> c, c & d -> bot. The core must
        // pull in `a` through the implication chain, not just `d`.
        let mut s = Solver::new();
        let v = fresh(&mut s, 4);
        s.add_clause(&[!v[0], v[1]]);
        s.add_clause(&[!v[1], v[2]]);
        s.add_clause(&[!v[2], !v[3]]);
        assert_eq!(s.solve(&[v[0], v[3]]), Outcome::Unsat);
        let mut core = s.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![v[0], v[3]]);
    }

    #[test]
    fn guarded_budget_maps_unknown_to_out_of_budget() {
        let mut s = Solver::new();
        let v = fresh(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        // A deadline in the past exhausts the projected time budget.
        let spent = hyde_guard::Budget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..hyde_guard::Budget::unlimited()
        };
        let err = s.solve_guarded(&[], &spent).unwrap_err();
        assert_eq!(err.resource, hyde_guard::Resource::SatConflicts);
        // An open budget answers normally.
        let open = hyde_guard::Budget::unlimited().with_sat_conflicts(100_000);
        assert_eq!(s.solve_guarded(&[], &open), Ok(Outcome::Sat));
    }

    #[test]
    fn budget_zero_time_reports_unknown() {
        let mut s = Solver::new();
        let v = fresh(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        let b = Budget {
            max_conflicts: u64::MAX,
            max_time: Duration::from_secs(0),
        };
        assert_eq!(s.solve_budgeted(&[], &b), Outcome::Unknown);
        // The solver stays usable after an Unknown answer.
        assert_eq!(s.solve(&[]), Outcome::Sat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let nvars = 6 + (round % 4);
            let nclauses = 2 * nvars + (round % 7);
            let mut s = Solver::new();
            let v = fresh(&mut s, nvars);
            let mut cls: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let r = next() as usize;
                    c.push(lit(r % nvars, (r >> 8) & 1 == 1));
                }
                cls.push(c);
            }
            for c in &cls {
                s.add_clause(c);
            }
            let brute = (0u32..1 << nvars).any(|m| {
                cls.iter()
                    .all(|c| c.iter().any(|l| (m >> l.var() & 1 == 1) != l.is_neg()))
            });
            let got = s.solve(&[]);
            assert_eq!(
                got,
                if brute { Outcome::Sat } else { Outcome::Unsat },
                "round {round} disagrees with brute force"
            );
            if got == Outcome::Sat {
                for c in &cls {
                    assert!(
                        c.iter().any(|l| s.model_value(l.var()) != l.is_neg()),
                        "model does not satisfy clause"
                    );
                }
            }
            let _ = &v;
        }
    }
}
