//! Equivalence miters with per-proof statistics.
//!
//! A miter asserts `a XOR b` and asks the solver for a model: UNSAT
//! proves `a == b` everywhere, a model is a concrete input minterm where
//! the two sides disagree. All outputs of one network share a single
//! incremental solver — the network is encoded once and each output is
//! proved under an assumption, so learned clauses carry over.

use crate::cnf::Lit;
use crate::solver::{Budget, Outcome, Solver, Stats};
use crate::tseitin::Encoder;
use hyde_bdd::Bdd;
use hyde_logic::{Network, TruthTable};
use std::time::{Duration, Instant};

/// Verdict of one equivalence proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CecOutcome {
    /// The two sides are equal for every input assignment.
    Equivalent,
    /// The sides disagree on this input minterm.
    Differ(u32),
    /// The proof budget ran out first.
    Unknown,
}

/// One equivalence proof with its search effort.
#[derive(Debug, Clone)]
pub struct CecProof {
    /// Index of the output proved (position in the spec list).
    pub output: usize,
    /// The verdict.
    pub outcome: CecOutcome,
    /// Solver variables live when the proof finished.
    pub vars: usize,
    /// Problem plus learned clauses when the proof finished.
    pub clauses: usize,
    /// Conflicts spent on this proof alone.
    pub conflicts: u64,
    /// Decisions spent on this proof alone.
    pub decisions: u64,
    /// Propagations spent on this proof alone.
    pub propagations: u64,
    /// Wall-clock time of this proof alone.
    pub elapsed: Duration,
}

fn delta(before: &Stats, after: &Stats) -> (u64, u64, u64) {
    (
        after.conflicts - before.conflicts,
        after.decisions - before.decisions,
        after.propagations - before.propagations,
    )
}

fn model_minterm(solver: &Solver, pi_lits: &[Lit]) -> u32 {
    let mut m = 0u32;
    for (i, l) in pi_lits.iter().enumerate() {
        if solver.model_value(l.var()) != l.is_neg() {
            m |= 1 << i;
        }
    }
    m
}

/// Proves one miter literal under the shared solver, recording effort.
fn prove(
    enc: &mut Encoder,
    miter: Lit,
    pi_lits: &[Lit],
    output: usize,
    budget: &Budget,
) -> CecProof {
    let before = enc.solver().stats();
    // sa:allow(SA002): elapsed time only annotates the proof record; the
    // outcome is decided by the budgeted solver.
    let start = Instant::now();
    let outcome = match enc.solver_mut().solve_budgeted(&[miter], budget) {
        Outcome::Unsat => CecOutcome::Equivalent,
        Outcome::Sat => CecOutcome::Differ(model_minterm(enc.solver(), pi_lits)),
        Outcome::Unknown => CecOutcome::Unknown,
    };
    let after = enc.solver().stats();
    let (conflicts, decisions, propagations) = delta(&before, &after);
    CecProof {
        output,
        outcome,
        vars: after.vars,
        clauses: after.clauses + after.learned,
        conflicts,
        decisions,
        propagations,
        elapsed: start.elapsed(),
    }
}

/// Proves each network output equivalent to its specification table.
///
/// The network is Tseitin-encoded once; each spec table is turned into a
/// BDD (shared manager, so common subfunctions merge) and encoded over
/// the same input literals; each output then gets one budgeted miter
/// proof. Spec variable `i` must correspond to primary input `i` in
/// `net.inputs()` order.
///
/// # Panics
///
/// Panics if the network is cyclic, if `specs.len()` differs from the
/// output count, if the input count differs from the spec arity, or if
/// the spec arity exceeds 28 (BDD construction guard).
pub fn cec_network_vs_tables(
    net: &Network,
    specs: &[TruthTable],
    budget: &Budget,
) -> Vec<CecProof> {
    assert_eq!(
        net.outputs().len(),
        specs.len(),
        "output/spec count mismatch"
    );
    let n = specs.first().map_or(0, TruthTable::vars);
    assert_eq!(net.inputs().len(), n, "input/spec arity mismatch");
    let mut enc = Encoder::new();
    let pi = enc.fresh_inputs(n);
    let node_lits = enc.encode_network(net, &pi);
    let mut bdd = Bdd::new(n);
    let mut proofs = Vec::with_capacity(specs.len());
    for (o, spec) in specs.iter().enumerate() {
        let spec_ref = bdd.from_fn(|m| spec.eval(m));
        let spec_lit = enc.encode_bdd(&bdd, spec_ref, &pi);
        let out_lit = node_lits[&net.outputs()[o].1];
        let m = enc.xor(out_lit, spec_lit);
        proofs.push(prove(&mut enc, m, &pi, o, budget));
    }
    proofs
}

/// Proves two truth tables equal through the SAT path (both sides are
/// encoded as BDD gates over shared inputs, then a miter is solved).
/// Mostly useful for cross-checking the engine against simulation.
///
/// # Panics
///
/// Panics if arities differ or exceed 28.
pub fn cec_tables(a: &TruthTable, b: &TruthTable, budget: &Budget) -> CecProof {
    assert_eq!(a.vars(), b.vars(), "arity mismatch");
    let mut enc = Encoder::new();
    let pi = enc.fresh_inputs(a.vars());
    let mut bdd = Bdd::new(a.vars());
    let ra = bdd.from_fn(|m| a.eval(m));
    let rb = bdd.from_fn(|m| b.eval(m));
    let la = enc.encode_bdd(&bdd, ra, &pi);
    let lb = enc.encode_bdd(&bdd, rb, &pi);
    let m = enc.xor(la, lb);
    prove(&mut enc, m, &pi, 0, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyde_logic::Network;

    fn adder_bit_net() -> (Network, Vec<TruthTable>) {
        // sum and carry of a full adder, built from 2-LUTs.
        let mut net = Network::new("fa");
        let a = net.add_input("x0");
        let b = net.add_input("x1");
        let c = net.add_input("x2");
        let xor2 = TruthTable::from_fn(2, |m| m == 1 || m == 2);
        let and2 = TruthTable::from_fn(2, |m| m == 3);
        let or2 = TruthTable::from_fn(2, |m| m != 0);
        let ab = net.add_node("ab", vec![a, b], xor2.clone()).unwrap();
        let sum = net.add_node("sum", vec![ab, c], xor2).unwrap();
        let g1 = net.add_node("g1", vec![a, b], and2.clone()).unwrap();
        let g2 = net.add_node("g2", vec![ab, c], and2).unwrap();
        let carry = net.add_node("carry", vec![g1, g2], or2).unwrap();
        net.mark_output("sum", sum);
        net.mark_output("carry", carry);
        let specs = vec![
            TruthTable::from_fn(3, |m| m.count_ones() % 2 == 1),
            TruthTable::from_fn(3, |m| m.count_ones() >= 2),
        ];
        (net, specs)
    }

    #[test]
    fn full_adder_outputs_are_proved_equivalent() {
        let (net, specs) = adder_bit_net();
        let proofs = cec_network_vs_tables(&net, &specs, &Budget::default());
        assert_eq!(proofs.len(), 2);
        for p in &proofs {
            assert_eq!(p.outcome, CecOutcome::Equivalent, "output {}", p.output);
        }
    }

    #[test]
    fn wrong_spec_yields_counterexample() {
        let (net, mut specs) = adder_bit_net();
        let mut t = specs[1].clone();
        t.set(5, !t.eval(5));
        specs[1] = t;
        let proofs = cec_network_vs_tables(&net, &specs, &Budget::default());
        assert_eq!(proofs[0].outcome, CecOutcome::Equivalent);
        assert_eq!(proofs[1].outcome, CecOutcome::Differ(5));
    }

    #[test]
    fn table_cec_finds_the_single_difference() {
        let a = TruthTable::from_fn(6, |m| m % 3 == 0);
        let mut b = a.clone();
        b.set(44, !b.eval(44));
        match cec_tables(&a, &b, &Budget::default()).outcome {
            CecOutcome::Differ(m) => assert_eq!(m, 44),
            other => panic!("expected a counterexample, got {other:?}"),
        }
        assert_eq!(
            cec_tables(&a, &a, &Budget::default()).outcome,
            CecOutcome::Equivalent
        );
    }
}
