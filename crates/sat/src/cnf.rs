//! Literals for CNF formulas.
//!
//! A literal packs a variable index and a sign into one `u32` the way
//! MiniSat does: `var << 1 | negated`. This gives a dense index space
//! (`Lit::index`) used for watch lists.

use std::fmt;
use std::ops::Not;

/// A propositional literal: a variable with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var` with the given polarity.
    pub fn new(var: usize, negated: bool) -> Self {
        Lit(((var as u32) << 1) | u32::from(negated))
    }

    /// The positive literal of `var`.
    pub fn pos(var: usize) -> Self {
        Lit::new(var, false)
    }

    /// The negative literal of `var`.
    pub fn neg(var: usize) -> Self {
        Lit::new(var, true)
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index (`2 * var + negated`), used for watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The truth value this literal assigns to its variable when the
    /// literal itself is made true.
    pub fn phase(self) -> bool {
        !self.is_neg()
    }
}

impl Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "-" } else { "" }, self.var())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrips() {
        let a = Lit::pos(7);
        assert_eq!(a.var(), 7);
        assert!(!a.is_neg());
        assert_eq!((!a).var(), 7);
        assert!((!a).is_neg());
        assert_eq!(!!a, a);
        assert_eq!(a.index(), 14);
        assert_eq!((!a).index(), 15);
        assert_eq!(Lit::neg(3), !Lit::pos(3));
        assert_eq!(format!("{}", Lit::neg(3)), "-3");
    }
}
