//! `hyde-sat`: a small, self-contained CDCL SAT solver plus Tseitin
//! encoders for HYDE networks and BDDs.
//!
//! The crate exists so that the verification layer (`hyde-verify`) has an
//! oracle *independent* of the BDD package that built the decompositions:
//! combinational equivalence and encoding-injectivity proofs go through
//! CNF and conflict-driven search instead of canonical-form comparison.
//!
//! The solver is deliberately classic and compact:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with clause learning,
//! * VSIDS-style variable activities (bump + exponential decay),
//! * Luby-sequence restarts,
//! * assumption-based incremental solving with failed-assumption
//!   (UNSAT core) extraction,
//! * conflict/time budgets so every proof is bounded.
//!
//! [`tseitin::Encoder`] turns [`hyde_logic::Network`] nodes (via ISOP
//! covers of `f` and `!f`) and [`hyde_bdd::Bdd`] functions (via per-node
//! ITE clauses) into CNF, hash-consing the gate frontier so repeated
//! subfunctions share literals. [`miter`] builds equivalence miters on
//! top and reports per-proof statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod miter;
pub mod solver;
pub mod tseitin;

pub use cnf::Lit;
pub use miter::{cec_network_vs_tables, cec_tables, CecOutcome, CecProof};
pub use solver::{Budget, Outcome, Solver, Stats};
pub use tseitin::Encoder;
